//! Causal (dot-store) CRDTs — removals without tombstone *values*.
//!
//! The paper's running examples are grow-only; its conclusion notes the
//! techniques "can be extended to more complex ones". This module carries
//! the extension out for the causal CRDTs of the delta-state literature
//! (Almeida, Shoker, Baquero — the paper's \[13\]/\[14\]): state is a **dot
//! store** (unique event identifiers mapped to payload) paired with a
//! **causal context** (the set of all event identifiers ever observed).
//! The join keeps an entry iff the peer also has it or has *not yet heard
//! of it* — so a dot present in a context but absent from a store acts as
//! a removal, with no per-element tombstone data.
//!
//! The decomposition theory extends cleanly:
//!
//! * join-irreducibles are **live parts** `({d ↦ v}, {d})` and **dead
//!   parts** `(∅, {d})`;
//! * `⇓x` = one live part per store entry + one dead part per
//!   context-only dot — unique and irredundant;
//! * a live part `⊑ y` iff `d ∈ ctx(y)`; a dead part `⊑ y` iff
//!   `d ∈ ctx(y) ∧ d ∉ store(y)` — so the *generic* optimal delta
//!   `Δ(a,b) = ⊔{ p ∈ ⇓a | p ⋢ b }` automatically ships exactly the new
//!   events plus the removals the peer hasn't applied yet.
//!
//! Built on this: [`AWSet`] (add-wins set), [`EWFlag`] (enable-wins
//! flag) and [`CCounter`] (a resettable causal counter). All three run
//! unchanged under every synchronization protocol in `crdt-sync`,
//! including BP+RR.

use std::collections::{BTreeMap, BTreeSet};

use crdt_lattice::{
    Bottom, Decompose, Dot, Lattice, ReplicaId, SizeModel, Sizeable, StateSize, VClock,
};

use crate::Crdt;

// ---------------------------------------------------------------------------
// Causal context
// ---------------------------------------------------------------------------

/// The set of all dots a replica has ever observed, stored compactly as a
/// contiguous vector-clock prefix plus a "cloud" of out-of-band dots
/// (deltas carry non-contiguous dots; compaction folds the cloud into the
/// clock as gaps fill).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CausalContext {
    clock: VClock,
    cloud: BTreeSet<Dot>,
}

impl CausalContext {
    /// The empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context holding exactly one dot.
    pub fn singleton(dot: Dot) -> Self {
        let mut c = Self::new();
        c.insert(dot);
        c
    }

    /// Has this dot been observed?
    pub fn contains(&self, dot: &Dot) -> bool {
        self.clock.contains(dot) || self.cloud.contains(dot)
    }

    /// Observe a dot (compacting the cloud opportunistically).
    pub fn insert(&mut self, dot: Dot) -> bool {
        if self.contains(&dot) {
            return false;
        }
        if dot.seq == self.clock.get(dot.replica) + 1 {
            self.clock.observe(dot);
            self.compact(dot.replica);
        } else {
            self.cloud.insert(dot);
        }
        true
    }

    /// Fold contiguous cloud dots of `replica` into the clock.
    fn compact(&mut self, replica: ReplicaId) {
        let mut next = self.clock.get(replica) + 1;
        while self.cloud.remove(&Dot::new(replica, next)) {
            self.clock.observe(Dot::new(replica, next));
            next += 1;
        }
    }

    /// The next fresh dot for `replica` (used by mutators at the owning
    /// replica, whose own history is always contiguous).
    pub fn next_dot(&mut self, replica: ReplicaId) -> Dot {
        let dot = Dot::new(replica, self.clock.get(replica) + 1);
        self.insert(dot);
        dot
    }

    /// Number of observed dots.
    pub fn len(&self) -> u64 {
        self.clock.iter().map(|(_, s)| s).sum::<u64>() + self.cloud.len() as u64
    }

    /// Is the context empty?
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty() && self.cloud.is_empty()
    }

    /// Iterate every observed dot (clock ranges then cloud).
    pub fn iter(&self) -> impl Iterator<Item = Dot> + '_ {
        self.clock
            .iter()
            .flat_map(|(r, s)| (1..=s).map(move |q| Dot::new(r, q)))
            .chain(self.cloud.iter().copied())
    }

    /// Set inclusion.
    pub fn subset_of(&self, other: &CausalContext) -> bool {
        self.clock.iter().all(|(r, s)| {
            let covered = other.clock.get(r);
            covered >= s || ((covered + 1)..=s).all(|q| other.cloud.contains(&Dot::new(r, q)))
        }) && self.cloud.iter().all(|d| other.contains(d))
    }

    /// Union with `other`; returns `true` if this context grew.
    pub fn union(&mut self, other: &CausalContext) -> bool {
        let mut grew = false;
        for (r, s) in other.clock.iter() {
            for q in (self.clock.get(r) + 1)..=s {
                grew |= self.insert(Dot::new(r, q));
            }
        }
        for d in &other.cloud {
            grew |= self.insert(*d);
        }
        grew
    }

    /// Wire size: clock entries + cloud dots.
    pub fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.clock.size_bytes(model) + self.cloud.len() as u64 * model.vector_entry_bytes()
    }
}

// ---------------------------------------------------------------------------
// The causal lattice
// ---------------------------------------------------------------------------

/// A dot store paired with a causal context: the state shape of every
/// causal CRDT here. `V` is plain payload data (a dot uniquely determines
/// its value for the lifetime of the system).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DotStore<V: Ord> {
    store: BTreeMap<Dot, V>,
    ctx: CausalContext,
}

impl<V: Ord> Default for DotStore<V> {
    fn default() -> Self {
        DotStore {
            store: BTreeMap::new(),
            ctx: CausalContext::default(),
        }
    }
}

impl<V: Ord + Clone + core::fmt::Debug> DotStore<V> {
    /// An empty causal state.
    pub fn new() -> Self {
        DotStore {
            store: BTreeMap::new(),
            ctx: CausalContext::new(),
        }
    }

    /// Live entries, in dot order.
    pub fn entries(&self) -> impl Iterator<Item = (&Dot, &V)> {
        self.store.iter()
    }

    /// Number of live entries.
    pub fn live_len(&self) -> usize {
        self.store.len()
    }

    /// The causal context.
    pub fn context(&self) -> &CausalContext {
        &self.ctx
    }

    /// Mutation primitive: add a fresh dot carrying `value` at `replica`,
    /// simultaneously *superseding* the live dots selected by `kill`.
    /// Returns the optimal delta.
    fn mutate(
        &mut self,
        replica: ReplicaId,
        value: Option<V>,
        kill: impl Fn(&Dot, &V) -> bool,
    ) -> Self {
        let mut delta = Self::new();
        // Cover superseded dots in the delta context (removal news).
        let dead: Vec<Dot> = self
            .store
            .iter()
            .filter(|(d, v)| kill(d, v))
            .map(|(d, _)| *d)
            .collect();
        for d in dead {
            self.store.remove(&d);
            delta.ctx.insert(d);
        }
        if let Some(v) = value {
            let dot = self.ctx.next_dot(replica);
            self.store.insert(dot, v.clone());
            delta.store.insert(dot, v);
            delta.ctx.insert(dot);
        }
        delta
    }
}

impl<V: Ord + Clone + core::fmt::Debug> Lattice for DotStore<V> {
    fn join_assign(&mut self, other: Self) -> bool {
        let mut changed = false;
        // Drop my live dots the peer has already seen die.
        let ours: Vec<Dot> = self.store.keys().copied().collect();
        for d in ours {
            if !other.store.contains_key(&d) && other.ctx.contains(&d) {
                self.store.remove(&d);
                changed = true;
            }
        }
        // Adopt peer dots I have not yet heard of.
        for (d, v) in other.store {
            if !self.store.contains_key(&d) && !self.ctx.contains(&d) {
                self.store.insert(d, v);
                changed = true;
            }
        }
        changed |= self.ctx.union(&other.ctx);
        changed
    }

    fn leq(&self, other: &Self) -> bool {
        // a ⊑ b ⇔ a ⊔ b = b: my context is covered, and every dot b holds
        // live is not one I have already removed.
        self.ctx.subset_of(&other.ctx)
            && other
                .store
                .keys()
                .all(|d| self.store.contains_key(d) || !self.ctx.contains(d))
    }
}

impl<V: Ord + Clone + core::fmt::Debug> Bottom for DotStore<V> {
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.store.is_empty() && self.ctx.is_empty()
    }
}

impl<V: Ord + Clone + core::fmt::Debug> Decompose for DotStore<V> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        // Live parts: ({d ↦ v}, {d}).
        for (d, v) in &self.store {
            let mut part = Self::new();
            part.store.insert(*d, v.clone());
            part.ctx.insert(*d);
            f(part);
        }
        // Dead parts: (∅, {d}) for context-only dots.
        for d in self.ctx.iter() {
            if !self.store.contains_key(&d) {
                let mut part = Self::new();
                part.ctx.insert(d);
                f(part);
            }
        }
    }

    fn irreducible_count(&self) -> u64 {
        // Every observed dot is exactly one part (live or dead).
        self.ctx.len()
    }

    /// Optimal delta, specialized (equivalent to the generic
    /// decomposition fold, without materializing every part):
    /// live parts the peer hasn't heard of, plus dead parts the peer
    /// either hasn't heard of or still believes live.
    fn delta(&self, other: &Self) -> Self {
        let mut d = Self::new();
        for (dot, v) in &self.store {
            if !other.ctx.contains(dot) {
                d.store.insert(*dot, v.clone());
                d.ctx.insert(*dot);
            }
        }
        for dot in self.ctx.iter() {
            if !self.store.contains_key(&dot)
                && (!other.ctx.contains(&dot) || other.store.contains_key(&dot))
            {
                d.ctx.insert(dot);
            }
        }
        d
    }

    fn is_irreducible(&self) -> bool {
        self.ctx.len() == 1
    }
}

impl crdt_lattice::WireEncode for CausalContext {
    fn encode(&self, out: &mut Vec<u8>) {
        self.clock.encode(out);
        self.cloud.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crdt_lattice::CodecError> {
        Ok(CausalContext {
            clock: crdt_lattice::VClock::decode(input)?,
            cloud: std::collections::BTreeSet::<Dot>::decode(input)?,
        })
    }
}

impl<V> crdt_lattice::WireEncode for DotStore<V>
where
    V: Ord + crdt_lattice::WireEncode,
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.store.encode(out);
        self.ctx.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crdt_lattice::CodecError> {
        Ok(DotStore {
            store: BTreeMap::<Dot, V>::decode(input)?,
            ctx: CausalContext::decode(input)?,
        })
    }
}

impl<V: Ord + Clone + core::fmt::Debug + Sizeable> StateSize for DotStore<V> {
    fn count_elements(&self) -> u64 {
        self.ctx.len()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.store
            .iter()
            .map(|(d, v)| d.size_bytes(model) + v.payload_bytes(model))
            .sum::<u64>()
            + self.ctx.size_bytes(model)
    }
}

// ---------------------------------------------------------------------------
// AWSet
// ---------------------------------------------------------------------------

/// Operations on an [`AWSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AWSetOp<E> {
    /// Add an element at a replica (add-wins over concurrent removes).
    Add(ReplicaId, E),
    /// Remove every visible copy of an element.
    Remove(E),
    /// Remove everything currently visible.
    Clear,
}

/// An add-wins observed-remove set: elements can be added and removed any
/// number of times; concurrent add/remove resolves to *add*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AWSet<E: Ord>(DotStore<E>);

impl<E: Ord> Default for AWSet<E> {
    fn default() -> Self {
        AWSet(DotStore::default())
    }
}

crate::macros::delegate_join!(AWSet<E> where [E: Ord + Clone + core::fmt::Debug]);
crate::macros::delegate_decompose!(AWSet<E> where [E: Ord + Clone + core::fmt::Debug]);
crate::macros::delegate_size!(AWSet<E> where [E: Ord + Clone + core::fmt::Debug + Sizeable]);
crate::macros::delegate_wire!(AWSet<E> where
    [E: Ord + Clone + core::fmt::Debug + crdt_lattice::WireEncode]);

impl<E: Ord + Clone + core::fmt::Debug> AWSet<E> {
    /// A fresh, empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `e` at `replica`, superseding existing copies (so a later
    /// remove of an *older* copy cannot erase this add). Returns the
    /// optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, e: E) -> Self {
        AWSet(self.0.mutate(replica, Some(e.clone()), |_, v| *v == e))
    }

    /// Remove all visible copies of `e`. Returns the optimal delta (pure
    /// context — no tombstone values).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove(&mut self, e: &E) -> Self {
        AWSet(self.0.mutate(ReplicaId(0), None, |_, v| v == e))
    }

    /// Remove everything visible. Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn clear(&mut self) -> Self {
        AWSet(self.0.mutate(ReplicaId(0), None, |_, _| true))
    }

    /// Membership test.
    pub fn contains(&self, e: &E) -> bool {
        self.0.store.values().any(|v| v == e)
    }

    /// Distinct visible elements, in order.
    pub fn elements(&self) -> BTreeSet<&E> {
        self.0.store.values().collect()
    }

    /// Number of distinct visible elements.
    pub fn len(&self) -> usize {
        self.elements().len()
    }

    /// Is the set observably empty?
    pub fn is_empty(&self) -> bool {
        self.0.store.is_empty()
    }
}

impl<E: Ord + Clone + core::fmt::Debug + Sizeable> Crdt for AWSet<E> {
    type Op = AWSetOp<E>;
    type Value = BTreeSet<E>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            AWSetOp::Add(r, e) => self.add(*r, e.clone()),
            AWSetOp::Remove(e) => self.remove(e),
            AWSetOp::Clear => self.clear(),
        }
    }

    fn value(&self) -> BTreeSet<E> {
        self.0.store.values().cloned().collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            AWSetOp::Add(_, e) => model.id_bytes + e.payload_bytes(model),
            AWSetOp::Remove(e) => e.payload_bytes(model),
            AWSetOp::Clear => 1,
        }
    }
}

// ---------------------------------------------------------------------------
// EWFlag
// ---------------------------------------------------------------------------

/// Operations on an [`EWFlag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EWFlagOp {
    /// Set the flag (wins over concurrent disables).
    Enable(ReplicaId),
    /// Clear the flag.
    Disable,
}

/// An enable-wins flag: concurrent enable/disable resolves to *enabled*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EWFlag(DotStore<()>);

crate::macros::delegate_wire!(EWFlag where []);
crate::macros::delegate_join!(EWFlag where []);
crate::macros::delegate_decompose!(EWFlag where []);
crate::macros::delegate_size!(EWFlag where []);

impl EWFlag {
    /// A fresh, disabled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable at `replica`, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn enable(&mut self, replica: ReplicaId) -> Self {
        EWFlag(self.0.mutate(replica, Some(()), |_, _| true))
    }

    /// Disable, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn disable(&mut self) -> Self {
        EWFlag(self.0.mutate(ReplicaId(0), None, |_, _| true))
    }

    /// Is the flag set?
    pub fn is_enabled(&self) -> bool {
        !self.0.store.is_empty()
    }
}

impl Crdt for EWFlag {
    type Op = EWFlagOp;
    type Value = bool;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            EWFlagOp::Enable(r) => self.enable(*r),
            EWFlagOp::Disable => self.disable(),
        }
    }

    fn value(&self) -> bool {
        self.is_enabled()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            EWFlagOp::Enable(_) => model.id_bytes,
            EWFlagOp::Disable => 1,
        }
    }
}

// ---------------------------------------------------------------------------
// CCounter
// ---------------------------------------------------------------------------

/// Operations on a [`CCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CCounterOp {
    /// Add `i64` (possibly negative) to the replica's contribution.
    Add(ReplicaId, i64),
    /// Reset the counter to zero (removes all visible contributions;
    /// concurrent `Add`s win).
    Reset,
}

/// A resettable causal counter: per-replica contributions live in dots,
/// so `Reset` is a pure-context removal and concurrent increments
/// survive it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CCounter(DotStore<i64>);

crate::macros::delegate_wire!(CCounter where []);
crate::macros::delegate_join!(CCounter where []);
crate::macros::delegate_decompose!(CCounter where []);
crate::macros::delegate_size!(CCounter where []);

impl CCounter {
    /// A fresh, zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to `replica`'s contribution (superseding that replica's
    /// previous dot). Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, by: i64) -> Self {
        let current: i64 = self
            .0
            .store
            .iter()
            .filter(|(d, _)| d.replica == replica)
            .map(|(_, v)| *v)
            .sum();
        CCounter(
            self.0
                .mutate(replica, Some(current + by), |d, _| d.replica == replica),
        )
    }

    /// Reset to zero, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn reset(&mut self) -> Self {
        CCounter(self.0.mutate(ReplicaId(0), None, |_, _| true))
    }

    /// The counter value: the sum of visible contributions.
    pub fn total(&self) -> i64 {
        self.0.store.values().sum()
    }
}

impl Crdt for CCounter {
    type Op = CCounterOp;
    type Value = i64;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            CCounterOp::Add(r, by) => self.add(*r, *by),
            CCounterOp::Reset => self.reset(),
        }
    }

    fn value(&self) -> i64 {
        self.total()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            CCounterOp::Add(_, _) => model.id_bytes + 8,
            CCounterOp::Reset => 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::check_crdt_op;
    use crdt_lattice::testing::check_all_laws;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    // -- causal context ----------------------------------------------------

    #[test]
    fn context_compacts_contiguous_dots() {
        let mut c = CausalContext::new();
        c.insert(Dot::new(A, 2)); // gap: goes to the cloud
        c.insert(Dot::new(A, 1)); // fills the gap: both compact
        assert!(c.contains(&Dot::new(A, 1)));
        assert!(c.contains(&Dot::new(A, 2)));
        assert_eq!(c.len(), 2);
        assert!(c.cloud.is_empty(), "cloud folded into the clock");
    }

    #[test]
    fn context_union_and_subset() {
        let mut a = CausalContext::new();
        a.insert(Dot::new(A, 1));
        let mut b = a.clone();
        b.insert(Dot::new(B, 3)); // non-contiguous
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.union(&b));
        assert!(b.subset_of(&a) && a.subset_of(&b));
        assert!(!a.union(&b), "idempotent");
    }

    #[test]
    fn context_iter_covers_everything() {
        let mut c = CausalContext::new();
        c.insert(Dot::new(A, 1));
        c.insert(Dot::new(A, 2));
        c.insert(Dot::new(B, 5));
        let dots: BTreeSet<Dot> = c.iter().collect();
        assert_eq!(dots.len(), 3);
        assert!(dots.contains(&Dot::new(B, 5)));
    }

    // -- AWSet semantics ----------------------------------------------------

    #[test]
    fn add_remove_add_again() {
        let mut s = AWSet::new();
        let _ = s.add(A, "x");
        assert!(s.contains(&"x"));
        let _ = s.remove(&"x");
        assert!(!s.contains(&"x"));
        // Unlike 2P-sets, re-adding works.
        let _ = s.add(A, "x");
        assert!(s.contains(&"x"));
    }

    #[test]
    fn concurrent_add_wins_over_remove() {
        let mut a = AWSet::new();
        let mut b = AWSet::new();
        // Shared history: both know "x" added by A.
        let d = a.add(A, "x");
        b.join_assign(d);
        // Concurrently: A removes x, B re-adds x.
        let da = a.remove(&"x");
        let db = b.add(B, "x");
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert!(a.contains(&"x"), "add wins");
    }

    #[test]
    fn remove_needs_no_tombstone_values() {
        use crdt_lattice::StateSize;
        let model = SizeModel::compact();
        let mut s: AWSet<String> = AWSet::new();
        let _ = s.add(A, "a-large-element-payload".repeat(10));
        let d = s.remove(&"a-large-element-payload".repeat(10));
        // The removal delta carries only context (dots), no element data.
        assert_eq!(d.0.store.len(), 0);
        assert!(d.size_bytes(&model) <= 2 * model.vector_entry_bytes());
    }

    #[test]
    fn clear_then_concurrent_add_survives() {
        let mut a = AWSet::new();
        let mut b = AWSet::new();
        let d = a.add(A, 1u32);
        b.join_assign(d);
        let d_clear = a.clear();
        let d_add = b.add(B, 2u32);
        a.join_assign(d_add);
        b.join_assign(d_clear);
        assert_eq!(a, b);
        assert_eq!(a.value(), BTreeSet::from([2]));
    }

    #[test]
    fn duplicated_reordered_deltas_converge() {
        let mut a = AWSet::new();
        let d1 = a.add(A, 1u32);
        let d2 = a.remove(&1);
        let d3 = a.add(A, 2u32);
        for order in [[0, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let deltas = [d1.clone(), d2.clone(), d3.clone()];
            let mut obs = AWSet::new();
            for &i in &order {
                obs.join_assign(deltas[i].clone());
                obs.join_assign(deltas[i].clone()); // duplicate
            }
            assert_eq!(obs, a, "order {order:?}");
        }
    }

    #[test]
    fn awset_op_contract() {
        let mut s = AWSet::new();
        let _ = s.add(A, 1u32);
        let _ = s.add(B, 2u32);
        check_crdt_op(&s, &AWSetOp::Add(A, 3));
        check_crdt_op(&s, &AWSetOp::Add(A, 1)); // re-add superseding
        check_crdt_op(&s, &AWSetOp::Remove(2));
        check_crdt_op(&s, &AWSetOp::Clear);
    }

    #[test]
    fn awset_laws() {
        let mut s1 = AWSet::new();
        let _ = s1.add(A, 1u8);
        let mut s2 = s1.clone();
        let _ = s2.remove(&1);
        let mut s3 = AWSet::new();
        let _ = s3.add(B, 2u8);
        let _ = s3.add(B, 1u8);
        let merged = s2.clone().join(s3.clone());
        let samples = vec![AWSet::bottom(), s1, s2, s3, merged];
        check_all_laws(&samples);
    }

    #[test]
    fn awset_delta_ships_removals_to_stale_peers() {
        use crdt_lattice::Decompose;
        let mut fresh = AWSet::new();
        let d = fresh.add(A, 7u32);
        let mut stale = AWSet::new();
        stale.join_assign(d);
        let _ = fresh.remove(&7);
        // Δ must inform the stale peer of the removal even though the dot
        // is inside fresh's context (dead-part case d ∈ b.store).
        let delta = fresh.delta(&stale);
        assert!(!delta.is_bottom());
        stale.join_assign(delta);
        assert_eq!(stale, fresh);
        assert!(!stale.contains(&7));
    }

    // -- EWFlag --------------------------------------------------------------

    #[test]
    fn flag_enable_wins() {
        let mut a = EWFlag::new();
        let mut b = EWFlag::new();
        let d = a.enable(A);
        b.join_assign(d);
        let da = a.disable();
        let db = b.enable(B);
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert!(a.is_enabled(), "enable wins concurrent disable");
    }

    #[test]
    fn flag_op_contract_and_laws() {
        let mut f = EWFlag::new();
        let _ = f.enable(A);
        check_crdt_op(&f, &EWFlagOp::Enable(B));
        check_crdt_op(&f, &EWFlagOp::Disable);
        let mut off = f.clone();
        let _ = off.disable();
        check_all_laws(&[EWFlag::bottom(), f, off]);
    }

    // -- CCounter -------------------------------------------------------------

    #[test]
    fn ccounter_adds_and_resets() {
        let mut c = CCounter::new();
        let _ = c.add(A, 5);
        let _ = c.add(B, 3);
        let _ = c.add(A, -2);
        assert_eq!(c.total(), 6);
        let _ = c.reset();
        assert_eq!(c.total(), 0);
        let _ = c.add(A, 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn concurrent_add_survives_reset() {
        let mut a = CCounter::new();
        let mut b = CCounter::new();
        let d = a.add(A, 10);
        b.join_assign(d);
        let d_reset = a.reset();
        let d_add = b.add(B, 4);
        a.join_assign(d_add);
        b.join_assign(d_reset);
        assert_eq!(a, b);
        assert_eq!(a.total(), 4, "the reset only covers observed dots");
    }

    #[test]
    fn ccounter_compresses_own_contribution() {
        // Repeated adds at one replica keep a single live dot — the
        // compression GCounter gets from `max`, recovered causally.
        let mut c = CCounter::new();
        for _ in 0..10 {
            let _ = c.add(A, 1);
        }
        assert_eq!(c.0.store.len(), 1);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn ccounter_op_contract_and_laws() {
        let mut c = CCounter::new();
        let _ = c.add(A, 2);
        check_crdt_op(&c, &CCounterOp::Add(B, -7));
        check_crdt_op(&c, &CCounterOp::Add(A, 3));
        check_crdt_op(&c, &CCounterOp::Reset);
        let mut c2 = c.clone();
        let _ = c2.reset();
        check_all_laws(&[CCounter::bottom(), c, c2]);
    }

    // -- decomposition ---------------------------------------------------------

    #[test]
    fn decomposition_has_live_and_dead_parts() {
        use crdt_lattice::Decompose;
        let mut s = AWSet::new();
        let _ = s.add(A, 1u8);
        let _ = s.add(A, 2u8);
        let _ = s.remove(&1);
        // Dots: A1 (dead, superseded? add(1) → A1; add(2) → A2; remove(1)
        // kills A1). Parts: live A2, dead A1.
        let parts = s.decompose();
        assert_eq!(parts.len(), 2);
        assert_eq!(s.irreducible_count(), 2);
        let live = parts.iter().filter(|p| p.0.store.len() == 1).count();
        let dead = parts.iter().filter(|p| p.0.store.is_empty()).count();
        assert_eq!((live, dead), (1, 1));
        assert!(parts.iter().all(Decompose::is_irreducible));
    }
}
