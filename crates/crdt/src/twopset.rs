//! Two-phase set: a set supporting removal, at the cost of no re-addition.
//!
//! `2PSet⟨E⟩ = P(E) × P(E)` — a product (Appendix B) of an *added* and a
//! *removed* grow-only set. An element is present when added and not
//! removed; removal is permanent ("tombstone"). Both sides decompose by
//! the product rule, so optimal deltas fall out of the composition with no
//! extra code.

use core::fmt::Debug;

use crdt_lattice::{Pair, SetLattice, SizeModel, Sizeable};

use crate::macros::{delegate_decompose, delegate_join, delegate_size};
use crate::Crdt;

/// Operations on a [`TwoPSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoPSetOp<E> {
    /// Insert an element (no effect if already removed).
    Add(E),
    /// Remove an element permanently.
    Remove(E),
}

/// A two-phase (add/remove-once) set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TwoPSet<E: Ord>(Pair<SetLattice<E>, SetLattice<E>>);

delegate_join!(TwoPSet<E> where [E: Ord + Clone + Debug]);
delegate_decompose!(TwoPSet<E> where [E: Ord + Clone + Debug]);
delegate_size!(TwoPSet<E> where [E: Ord + Clone + Debug + Sizeable]);
crate::macros::delegate_wire!(TwoPSet<E> where
    [E: Ord + Clone + Debug + crdt_lattice::WireEncode]);

impl<E: Ord + Clone + Debug> TwoPSet<E> {
    /// A fresh, empty set (`⊥`).
    pub fn new() -> Self {
        TwoPSet(Pair(SetLattice::new(), SetLattice::new()))
    }

    /// Add an element, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, e: E) -> Self {
        TwoPSet(Pair(self.0 .0.add_delta(e), SetLattice::new()))
    }

    /// Remove an element (tombstone), returning the optimal delta.
    ///
    /// Removing a never-added element is allowed and pre-blocks a future
    /// add — the classic 2P-set semantics.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove(&mut self, e: E) -> Self {
        TwoPSet(Pair(SetLattice::new(), self.0 .1.add_delta(e)))
    }

    /// Is `e` currently a member (added and not removed)?
    pub fn contains(&self, e: &E) -> bool {
        self.0 .0.contains(e) && !self.0 .1.contains(e)
    }

    /// Live elements, in order.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.0 .0.iter().filter(|e| !self.0 .1.contains(e))
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Are there no live elements?
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

impl<E: Ord + Clone + Debug + Sizeable> Crdt for TwoPSet<E> {
    type Op = TwoPSetOp<E>;
    type Value = Vec<E>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            TwoPSetOp::Add(e) => self.add(e.clone()),
            TwoPSetOp::Remove(e) => self.remove(e.clone()),
        }
    }

    fn value(&self) -> Vec<E> {
        self.iter().cloned().collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            TwoPSetOp::Add(e) | TwoPSetOp::Remove(e) => 1 + e.payload_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::{Bottom, Lattice};

    #[test]
    fn add_then_remove() {
        let mut s = TwoPSet::new();
        let _ = s.add("x");
        assert!(s.contains(&"x"));
        let _ = s.remove("x");
        assert!(!s.contains(&"x"));
        // Re-add is futile: the tombstone wins.
        let _ = s.add("x");
        assert!(!s.contains(&"x"));
    }

    #[test]
    fn remove_wins_across_replicas() {
        let mut a = TwoPSet::new();
        let mut b = TwoPSet::new();
        let da = a.add(1u32);
        b.join_assign(da);
        let db = b.remove(1u32);
        a.join_assign(db);
        assert!(!a.contains(&1));
        assert_eq!(a, b);
    }

    #[test]
    fn op_contract() {
        let mut s = TwoPSet::new();
        let _ = s.add(1u32);
        check_crdt_op(&s, &TwoPSetOp::Add(2));
        check_crdt_op(&s, &TwoPSetOp::Remove(1));
        check_crdt_op(&s, &TwoPSetOp::Remove(9));
        // Redundant add of an existing element: delta must be ⊥.
        check_crdt_op(&s, &TwoPSetOp::Add(1));
    }

    #[test]
    fn convergence() {
        check_two_replica_convergence::<TwoPSet<u32>>(
            &[TwoPSetOp::Add(1), TwoPSetOp::Remove(2)],
            &[TwoPSetOp::Add(2), TwoPSetOp::Add(3)],
            TwoPSet::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let mut with_tombstone = TwoPSet::new();
        let _ = with_tombstone.add(1u8);
        let _ = with_tombstone.remove(1u8);
        let mut live = TwoPSet::new();
        let _ = live.add(2u8);
        let samples = vec![TwoPSet::bottom(), with_tombstone, live];
        check_all_laws(&samples);
    }

    #[test]
    fn value_lists_live_elements() {
        let mut s = TwoPSet::new();
        let _ = s.add(3u32);
        let _ = s.add(1u32);
        let _ = s.add(2u32);
        let _ = s.remove(2u32);
        assert_eq!(s.value(), vec![1, 3]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
