//! Grow-only counter (paper, Fig. 2a).
//!
//! `GCounter = I ↪ ℕ`: per-replica increment tallies joined by pointwise
//! max. `value` is the sum of all entries. The δ-mutator
//! `incδᵢ(p) = {i ↦ p(i)+1}` returns only the updated entry — already
//! optimal, as `Δ(incᵢ(p), p)` is exactly that singleton.

use crdt_lattice::{Lattice, MapLattice, Max, ReplicaId, SizeModel};

use crate::macros::delegate_lattice;
use crate::Crdt;

/// Operations on a [`GCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GCounterOp {
    /// `incᵢ`: add one to replica `0`'s tally.
    Inc(ReplicaId),
    /// Add `by` to the replica's tally in one mutation.
    IncBy(ReplicaId, u64),
}

/// A grow-only counter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GCounter(MapLattice<ReplicaId, Max<u64>>);

delegate_lattice!(GCounter where []);

crate::macros::delegate_wire!(GCounter where []);

impl GCounter {
    /// A fresh counter (`⊥`).
    pub fn new() -> Self {
        GCounter(MapLattice::new())
    }

    /// The full mutator `incᵢ`; returns the optimal delta `incδᵢ`.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn inc(&mut self, replica: ReplicaId) -> Self {
        self.inc_by(replica, 1)
    }

    /// Increment by `by`, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn inc_by(&mut self, replica: ReplicaId, by: u64) -> Self {
        GCounter(self.0.mutate_entry(replica, |v| {
            let next = v.plus(by);
            v.join_assign(next);
            next
        }))
    }

    /// This replica's own tally.
    pub fn local(&self, replica: ReplicaId) -> u64 {
        self.0.get(&replica).map_or(0, |m| m.value())
    }

    /// Number of map entries (the paper's measurement unit, Table I).
    pub fn entries(&self) -> usize {
        self.0.len()
    }
}

impl Crdt for GCounter {
    type Op = GCounterOp;
    type Value = u64;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match *op {
            GCounterOp::Inc(r) => self.inc(r),
            GCounterOp::IncBy(r, by) => self.inc_by(r, by),
        }
    }

    /// `value(p) = Σ { v | k ↦ v ∈ p }`.
    fn value(&self) -> u64 {
        self.0.values().map(Max::value).sum()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            GCounterOp::Inc(_) => model.id_bytes,
            GCounterOp::IncBy(_, _) => model.id_bytes + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::StateSize;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn increments_accumulate() {
        let mut c = GCounter::new();
        let d1 = c.inc(A);
        let d2 = c.inc(A);
        let d3 = c.inc(B);
        assert_eq!(c.value(), 3);
        assert_eq!(c.local(A), 2);
        assert_eq!(c.local(B), 1);
        // Deltas are single entries.
        assert_eq!(d1.entries(), 1);
        assert_eq!(d2.entries(), 1);
        assert_eq!(d3.entries(), 1);
    }

    #[test]
    fn delta_mutator_is_optimal() {
        let mut c = GCounter::new();
        let _ = c.inc_by(A, 4);
        check_crdt_op(&c, &GCounterOp::Inc(A));
        check_crdt_op(&c, &GCounterOp::Inc(B));
        check_crdt_op(&c, &GCounterOp::IncBy(B, 10));
    }

    #[test]
    fn hasse_diagram_example() {
        // Fig. 3a: {A1,B1} reachable by inc from {A1}, from {B1}, or as a
        // join of the two.
        let mut a1 = GCounter::new();
        let _ = a1.inc(A);
        let mut b1 = GCounter::new();
        let _ = b1.inc(B);

        let mut via_mut_a = a1.clone();
        let _ = via_mut_a.inc(B);
        let mut via_mut_b = b1.clone();
        let _ = via_mut_b.inc(A);
        let via_join = a1.join(b1);

        assert_eq!(via_mut_a, via_join);
        assert_eq!(via_mut_b, via_join);
        assert_eq!(via_join.value(), 2);
    }

    #[test]
    fn join_takes_pointwise_max_not_sum() {
        let mut a = GCounter::new();
        let _ = a.inc_by(A, 5);
        let b = a.clone();
        // Joining duplicated state must not double-count (idempotence —
        // this is why state-based CRDTs tolerate duplicated messages).
        let j = a.join(b);
        assert_eq!(j.value(), 5);
    }

    #[test]
    fn two_replica_convergence() {
        check_two_replica_convergence::<GCounter>(
            &[GCounterOp::Inc(A), GCounterOp::IncBy(A, 3)],
            &[GCounterOp::Inc(B)],
            GCounter::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let mut samples = vec![GCounter::new()];
        let mut c = GCounter::new();
        let _ = c.inc(A);
        samples.push(c.clone());
        let _ = c.inc(B);
        samples.push(c.clone());
        let _ = c.inc_by(A, 7);
        samples.push(c);
        check_all_laws(&samples);
    }

    #[test]
    fn size_metrics() {
        let model = SizeModel::compact();
        let mut c = GCounter::new();
        let _ = c.inc(A);
        let _ = c.inc(B);
        assert_eq!(c.count_elements(), 2);
        assert_eq!(c.size_bytes(&model), 2 * 16);
        assert_eq!(GCounter::op_size_bytes(&GCounterOp::Inc(A), &model), 8);
    }
}
