//! Multi-value register: concurrent writes are all kept.
//!
//! `MVRegister⟨V⟩ = M(VClock × V)` — the maximal-elements composition
//! (Appendix B) over versioned values, ordered by causal domination of
//! their clocks. A write supersedes everything it causally saw; writes
//! with concurrent clocks coexist on the frontier, and readers observe the
//! full set of siblings (the "shopping-cart" semantics).
//!
//! Decomposition is by singletons (the `M(P)` rule of Appendix C), so the
//! optimal delta for a write is exactly the one new versioned value.

use core::fmt::Debug;

use crdt_lattice::{Antichain, Lattice, Poset, ReplicaId, SizeModel, Sizeable, StateSize, VClock};

use crate::macros::{delegate_decompose, delegate_join, delegate_size};
use crate::Crdt;

/// A value tagged with the vector clock of its write.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Versioned<V> {
    /// Causal context of the write.
    pub clock: VClock,
    /// The written value.
    pub value: V,
}

impl<V: Eq> Poset for Versioned<V> {
    /// Causal domination: an older write is below a newer one iff the
    /// newer clock dominates. Equal clocks with different values are
    /// incomparable only in theory — writes always bump the writer's own
    /// entry, so distinct writes have distinct clocks.
    fn poset_le(&self, other: &Self) -> bool {
        self.clock.leq(&other.clock) && (self.clock != other.clock || self.value == other.value)
    }
}

/// Operations on an [`MVRegister`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MVOp<V> {
    /// Write `value` with the (pre-computed) causal clock of the writer.
    ///
    /// The clock is part of the op so it can be replayed deterministically
    /// by the op-based middleware; interactive callers use
    /// [`MVRegister::write`], which computes it.
    Write {
        /// The write's causal context (already bumped at the writer).
        clock: VClock,
        /// The written value.
        value: V,
    },
}

/// A multi-value register.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MVRegister<V: Ord>(Antichain<Versioned<V>>);

impl<V: Ord + Clone + core::fmt::Debug> Default for MVRegister<V> {
    fn default() -> Self {
        MVRegister(Antichain::new())
    }
}

delegate_join!(MVRegister<V> where [V: Ord + Clone + Debug]);
delegate_decompose!(MVRegister<V> where [V: Ord + Clone + Debug]);
delegate_size!(MVRegister<V> where [V: Ord + Clone + Debug + Sizeable]);

impl<V: Ord + Clone + Debug> MVRegister<V> {
    /// A fresh register with no writes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `value` at `replica`, superseding all currently visible
    /// siblings. Returns the optimal delta (the singleton new version).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn write(&mut self, replica: ReplicaId, value: V) -> Self {
        // The new clock dominates every sibling: join of all visible
        // clocks, bumped at the writer.
        let mut clock = VClock::new();
        for v in self.0.iter() {
            clock.join_assign(v.clock.clone());
        }
        clock.bump(replica);
        let versioned = Versioned { clock, value };
        let mut delta = Antichain::new();
        delta.insert(versioned.clone());
        self.0.insert(versioned);
        MVRegister(delta)
    }

    /// The current siblings (concurrent values), in storage order.
    pub fn read(&self) -> Vec<&V> {
        self.0.iter().map(|v| &v.value).collect()
    }

    /// Number of concurrent siblings.
    pub fn sibling_count(&self) -> usize {
        self.0.len()
    }
}

impl<V: Sizeable> Sizeable for Versioned<V> {
    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.clock.size_bytes(model) + self.value.payload_bytes(model)
    }
}

impl<V: Ord + Clone + Debug + Sizeable> Crdt for MVRegister<V> {
    type Op = MVOp<V>;
    type Value = Vec<V>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            MVOp::Write { clock, value } => {
                let versioned = Versioned {
                    clock: clock.clone(),
                    value: value.clone(),
                };
                let mut delta = Antichain::new();
                if self.0.insert(versioned.clone()) {
                    delta.insert(versioned);
                }
                MVRegister(delta)
            }
        }
    }

    fn value(&self) -> Vec<V> {
        self.0.iter().map(|v| v.value.clone()).collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            MVOp::Write { clock, value } => clock.size_bytes(model) + value.payload_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::check_crdt_op;
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::Bottom;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn sequential_writes_supersede() {
        let mut r = MVRegister::new();
        let _ = r.write(A, 1u32);
        let _ = r.write(A, 2u32);
        assert_eq!(r.read(), vec![&2]);
        assert_eq!(r.sibling_count(), 1);
    }

    #[test]
    fn concurrent_writes_coexist() {
        let mut x = MVRegister::new();
        let mut y = MVRegister::new();
        let dx = x.write(A, "from-a");
        let dy = y.write(B, "from-b");
        x.join_assign(dy);
        y.join_assign(dx);
        assert_eq!(x, y);
        assert_eq!(x.sibling_count(), 2);
        // A later write having seen both collapses the siblings.
        let _ = x.write(A, "merged");
        assert_eq!(x.read(), vec![&"merged"]);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut x = MVRegister::new();
        let d = x.write(A, 7u64);
        let mut y = MVRegister::new();
        y.join_assign(d.clone());
        y.join_assign(d);
        assert_eq!(y.sibling_count(), 1);
    }

    #[test]
    fn op_contract() {
        let mut base = MVRegister::new();
        let _ = base.write(A, 5u64);
        let mut clock = VClock::new();
        clock.bump(B);
        check_crdt_op(&base, &MVOp::Write { clock, value: 9u64 });
    }

    #[test]
    fn laws_hold_on_samples() {
        let mut r1 = MVRegister::new();
        let _ = r1.write(A, 1u8);
        let mut r2 = MVRegister::new();
        let _ = r2.write(B, 2u8);
        let merged = r1.clone().join(r2.clone());
        let samples = vec![MVRegister::bottom(), r1, r2, merged];
        check_all_laws(&samples);
    }

    #[test]
    fn write_delta_is_singleton() {
        use crdt_lattice::Decompose;
        let mut r = MVRegister::new();
        let d = r.write(A, 42u32);
        assert_eq!(d.irreducible_count(), 1);
        assert!(d.is_irreducible());
    }
}
