//! Wire encodings for operation types.
//!
//! The type-erased engine layer (`crdt_sync::engine`) moves operations
//! across its boundary as encoded bytes, and the op-based baseline ships
//! them inside its causal middleware messages — both require `C::Op:
//! WireEncode`. Encodings follow the codec conventions of
//! [`crdt_lattice::codec`]: one discriminant byte per enum, then the
//! fields by structural recursion.

use crdt_lattice::{CodecError, ReplicaId, WireEncode};

use crate::causal::{AWSetOp, CCounterOp, EWFlagOp};
use crate::gcounter::GCounterOp;
use crate::gmap::GMapOp;
use crate::gset::GSetOp;
use crate::pncounter::PNCounterOp;
use crate::twopset::TwoPSetOp;

impl<E: WireEncode> WireEncode for GSetOp<E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GSetOp::Add(e) => e.encode(out),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(GSetOp::Add(E::decode(input)?))
    }
}

impl WireEncode for GCounterOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GCounterOp::Inc(r) => {
                out.push(0);
                r.encode(out);
            }
            GCounterOp::IncBy(r, n) => {
                out.push(1);
                r.encode(out);
                n.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(GCounterOp::Inc(ReplicaId::decode(input)?)),
            1 => Ok(GCounterOp::IncBy(
                ReplicaId::decode(input)?,
                u64::decode(input)?,
            )),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl WireEncode for PNCounterOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PNCounterOp::Inc(r) => {
                out.push(0);
                r.encode(out);
            }
            PNCounterOp::Dec(r) => {
                out.push(1);
                r.encode(out);
            }
            PNCounterOp::IncBy(r, n) => {
                out.push(2);
                r.encode(out);
                n.encode(out);
            }
            PNCounterOp::DecBy(r, n) => {
                out.push(3);
                r.encode(out);
                n.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(PNCounterOp::Inc(ReplicaId::decode(input)?)),
            1 => Ok(PNCounterOp::Dec(ReplicaId::decode(input)?)),
            2 => Ok(PNCounterOp::IncBy(
                ReplicaId::decode(input)?,
                u64::decode(input)?,
            )),
            3 => Ok(PNCounterOp::DecBy(
                ReplicaId::decode(input)?,
                u64::decode(input)?,
            )),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<E: WireEncode> WireEncode for TwoPSetOp<E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TwoPSetOp::Add(e) => {
                out.push(0);
                e.encode(out);
            }
            TwoPSetOp::Remove(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(TwoPSetOp::Add(E::decode(input)?)),
            1 => Ok(TwoPSetOp::Remove(E::decode(input)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<K: WireEncode, V: WireEncode> WireEncode for GMapOp<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GMapOp::Apply { key, value } => {
                key.encode(out);
                value.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(GMapOp::Apply {
            key: K::decode(input)?,
            value: V::decode(input)?,
        })
    }
}

impl<E: WireEncode> WireEncode for AWSetOp<E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AWSetOp::Add(r, e) => {
                out.push(0);
                r.encode(out);
                e.encode(out);
            }
            AWSetOp::Remove(e) => {
                out.push(1);
                e.encode(out);
            }
            AWSetOp::Clear => out.push(2),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(AWSetOp::Add(ReplicaId::decode(input)?, E::decode(input)?)),
            1 => Ok(AWSetOp::Remove(E::decode(input)?)),
            2 => Ok(AWSetOp::Clear),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl WireEncode for EWFlagOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EWFlagOp::Enable(r) => {
                out.push(0);
                r.encode(out);
            }
            EWFlagOp::Disable => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(EWFlagOp::Enable(ReplicaId::decode(input)?)),
            1 => Ok(EWFlagOp::Disable),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl WireEncode for CCounterOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CCounterOp::Add(r, n) => {
                out.push(0);
                r.encode(out);
                n.encode(out);
            }
            CCounterOp::Reset => out.push(1),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(CCounterOp::Add(
                ReplicaId::decode(input)?,
                i64::decode(input)?,
            )),
            1 => Ok(CCounterOp::Reset),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + PartialEq + core::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).expect("decode"), v);
    }

    #[test]
    fn ops_roundtrip() {
        let r = ReplicaId(3);
        roundtrip(GSetOp::Add(42u64));
        roundtrip(GSetOp::Add("elem".to_string()));
        roundtrip(GCounterOp::Inc(r));
        roundtrip(GCounterOp::IncBy(r, 9));
        roundtrip(PNCounterOp::Inc(r));
        roundtrip(PNCounterOp::Dec(r));
        roundtrip(PNCounterOp::IncBy(r, 4));
        roundtrip(PNCounterOp::DecBy(r, 2));
        roundtrip(TwoPSetOp::Add(7u32));
        roundtrip(TwoPSetOp::Remove(7u32));
        roundtrip(GMapOp::Apply {
            key: 5u16,
            value: crdt_lattice::Max::new(10u64),
        });
        roundtrip(AWSetOp::Add(r, "x".to_string()));
        roundtrip(AWSetOp::Remove("x".to_string()));
        roundtrip(AWSetOp::<String>::Clear);
        roundtrip(EWFlagOp::Enable(r));
        roundtrip(EWFlagOp::Disable);
        roundtrip(CCounterOp::Add(r, -5));
        roundtrip(CCounterOp::Reset);
    }

    #[test]
    fn bad_discriminants_error() {
        assert!(GCounterOp::from_bytes(&[9]).is_err());
        assert!(AWSetOp::<u64>::from_bytes(&[9]).is_err());
    }
}
