//! The generic dot-store framework of the delta-state literature.
//!
//! [`crate::causal`] implements three causal CRDTs over one flat store
//! shape (`Dot ↪ V`). The delta-state papers the paper builds on
//! (\[13\]/\[14\], Almeida–Shoker–Baquero) define causal CRDTs over a small
//! *algebra* of dot stores instead, closed under nesting:
//!
//! * [`DotSet`] — `P(Dot)`: bare event identifiers (flags, per-element
//!   presence);
//! * [`DotFun`]`<V>` — `Dot ↪ V`: events carrying a payload value
//!   (registers, counters);
//! * [`DotMap`]`<K, S>` — `K ↪ S` for a nested store `S`: *keyed* causal
//!   state (observed-remove maps, maps of sets, maps of maps, …).
//!
//! A causal CRDT is then [`Causal`]`<S>` — a store `S` paired with a
//! [`CausalContext`] — and the framework join is defined once, by
//! recursion on the store shape: a dot survives the join iff it is live
//! on both sides, or live on one side and *unseen* by the other.
//!
//! ## Flat representation
//!
//! Every store in the algebra is flat: [`DotSet`] is sorted, coalesced
//! dot runs in one buffer ([`crate::flat::DotRuns`]), [`DotFun`] a
//! dot-sorted `Vec<(Dot, V)>`, [`DotMap`] a key-sorted `Vec<(K, S)>`.
//! Joins are linear two-pointer merges preceded by a no-allocation
//! change-detection scan ([`DotStore::join_would_change`]) — joining an
//! already-covered delta touches no heap memory. [`Causal`] carries a
//! mutation epoch + cached wire frame ([`crate::flat::StateTag`]): any
//! data-changing mutation invalidates the frame, and encoding an
//! unmutated state reuses it. Wire bytes are unchanged from the nested
//! `BTreeMap`/`BTreeSet` representation this replaced.
//!
//! ## Join decompositions (this paper's contribution, extended)
//!
//! The decomposition theory of §III extends to every store shape:
//!
//! * join-irreducibles are **live parts** — the minimal causal state
//!   holding one store dot (for a `DotMap` that is the full key path down
//!   to one dot) — and **dead parts** `(∅, {d})` for context-only dots;
//! * `⇓x` is one live part per store dot plus one dead part per
//!   context-only dot — unique and irredundant (the causal lattice is
//!   distributive and satisfies DCC, Appendix A);
//! * the optimal delta `Δ(a,b)` follows from the generic fold, and is
//!   specialized here without materializing parts.
//!
//! Every type in this module therefore runs unchanged under every
//! synchronization protocol in `crdt-sync`, including delta-based BP+RR.
//!
//! Built on the framework: [`ORMap`] (observed-remove map with
//! multi-value-register leaves), [`ORSetMap`] (observed-remove map of
//! add-wins sets — one level of nesting), [`RWSet`] (remove-wins set) and
//! [`DWFlag`] (disable-wins flag), complementing the add-wins/enable-wins
//! types of [`crate::causal`].

use core::fmt::Debug;
use std::collections::{BTreeMap, BTreeSet};

use crdt_lattice::{
    Bottom, Bytes, CodecError, Decompose, Dot, Lattice, ReplicaId, SizeModel, Sizeable, StateSize,
    WireEncode,
};

use crate::causal::CausalContext;
use crate::flat::{DotRuns, StateTag};
use crate::Crdt;

// ---------------------------------------------------------------------------
// The store algebra
// ---------------------------------------------------------------------------

/// A dot store: the payload half of a causal CRDT state.
///
/// Implementations must maintain the framework invariant that a dot in the
/// store uniquely identifies its payload for the lifetime of the system
/// (dots are never reused with different data).
pub trait DotStore: Clone + Debug + Eq + Default {
    /// Visit every dot in the store (for a [`DotMap`], every dot of every
    /// nested store).
    fn for_each_dot(&self, f: &mut dyn FnMut(Dot));

    /// Is `d` live in this store?
    fn contains_dot(&self, d: &Dot) -> bool;

    /// Does the store hold no dots?
    fn is_empty(&self) -> bool;

    /// Would [`DotStore::join`] with the same arguments change `self`?
    /// A read-only, allocation-free linear scan, *precise* (never
    /// conservative): implementations use it as the fast path that makes
    /// joining an already-covered delta free, and [`DotMap`] recurses
    /// through it to detect change under nesting.
    fn join_would_change(
        &self,
        self_ctx: &CausalContext,
        other: &Self,
        other_ctx: &CausalContext,
    ) -> bool;

    /// The framework join `(self, self_ctx) ⊔ (other, other_ctx)`,
    /// mutating `self` in place. Returns `true` if `self` changed.
    ///
    /// A dot survives iff it is live on both sides, or live on one side
    /// and absent from the other's *context* (unseen news beats observed
    /// death; observed death beats liveness). When nothing would change,
    /// the join returns `false` without allocating.
    fn join(&mut self, self_ctx: &CausalContext, other: &Self, other_ctx: &CausalContext) -> bool;

    /// Visit `(dot, minimal sub-store holding exactly that dot)` for every
    /// live dot — the store half of the live parts of `⇓(self, ctx)`.
    fn for_each_part(&self, f: &mut dyn FnMut(Dot, Self));

    /// Number of live dots.
    fn dot_count(&self) -> u64 {
        let mut n = 0;
        self.for_each_dot(&mut |_| n += 1);
        n
    }

    /// Wire size of the store under `model`.
    fn size_bytes(&self, model: &SizeModel) -> u64;
}

/// `P(Dot)` — bare event identifiers, as sorted coalesced runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DotSet(DotRuns);

impl DotSet {
    /// The empty dot set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding exactly `d`.
    pub fn singleton(d: Dot) -> Self {
        let mut s = Self::new();
        s.insert(d);
        s
    }

    /// Insert a dot.
    pub fn insert(&mut self, d: Dot) -> bool {
        self.0.insert(d)
    }

    /// Iterate the dots in order.
    pub fn iter(&self) -> impl Iterator<Item = Dot> + '_ {
        self.0.dots()
    }

    /// Number of dots.
    pub fn len(&self) -> usize {
        self.0.len() as usize
    }

    /// Does the set hold no dots?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl DotStore for DotSet {
    fn for_each_dot(&self, f: &mut dyn FnMut(Dot)) {
        for d in self.0.dots() {
            f(d);
        }
    }

    fn contains_dot(&self, d: &Dot) -> bool {
        self.0.contains(d)
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn join_would_change(
        &self,
        self_ctx: &CausalContext,
        other: &Self,
        other_ctx: &CausalContext,
    ) -> bool {
        // A drop: one of my dots the peer has seen die. An add: a peer
        // dot I have not heard of.
        self.0
            .dots()
            .any(|d| !other.contains_dot(&d) && other_ctx.contains(&d))
            || other
                .0
                .dots()
                .any(|d| !self.contains_dot(&d) && !self_ctx.contains(&d))
    }

    fn join(&mut self, self_ctx: &CausalContext, other: &Self, other_ctx: &CausalContext) -> bool {
        if !self.join_would_change(self_ctx, other, other_ctx) {
            return false;
        }
        // Linear two-pointer merge over both sorted dot streams.
        let old = std::mem::take(&mut self.0);
        let mut merged = DotRuns::new();
        let mut mine = old.dots().peekable();
        let mut theirs = other.0.dots().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(m), Some(t)) => match m.cmp(t) {
                    core::cmp::Ordering::Less => {
                        let d = mine.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                        if !other_ctx.contains(&d) {
                            merged.push_dot_sorted(d);
                        }
                    }
                    core::cmp::Ordering::Greater => {
                        let d = theirs.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                        if !self_ctx.contains(&d) {
                            merged.push_dot_sorted(d);
                        }
                    }
                    core::cmp::Ordering::Equal => {
                        merged.push_dot_sorted(mine.next().expect("peeked")); // lint: allow(panic) — peek() just returned Some
                        theirs.next();
                    }
                },
                (Some(_), None) => {
                    let d = mine.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    if !other_ctx.contains(&d) {
                        merged.push_dot_sorted(d);
                    }
                }
                (None, Some(_)) => {
                    let d = theirs.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    if !self_ctx.contains(&d) {
                        merged.push_dot_sorted(d);
                    }
                }
                (None, None) => break,
            }
        }
        self.0 = merged;
        true
    }

    fn for_each_part(&self, f: &mut dyn FnMut(Dot, Self)) {
        for d in self.0.dots() {
            f(d, DotSet::singleton(d));
        }
    }

    fn dot_count(&self) -> u64 {
        self.0.len()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.len() * model.vector_entry_bytes()
    }
}

/// `Dot ↪ V` — events carrying a payload value, as a dot-sorted vector.
///
/// `V` is plain (not a lattice): a dot uniquely determines its value, so
/// two stores never hold the same dot with different payloads and the
/// join never needs to merge values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DotFun<V>(Vec<(Dot, V)>);

impl<V> Default for DotFun<V> {
    fn default() -> Self {
        DotFun(Vec::new())
    }
}

impl<V> DotFun<V> {
    /// Dot-sorted membership test.
    fn has_dot(&self, d: &Dot) -> bool {
        self.0.binary_search_by(|(sd, _)| sd.cmp(d)).is_ok()
    }

    /// Insert preserving dot order (replacing a duplicate — only hostile
    /// decoded input produces one).
    fn insert_sorted(&mut self, d: Dot, v: V) {
        match self.0.binary_search_by(|(sd, _)| sd.cmp(&d)) {
            Ok(i) => self.0[i].1 = v,
            Err(i) => self.0.insert(i, (d, v)),
        }
    }
}

impl<V: Clone> DotFun<V> {
    /// The empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// A map holding exactly `d ↦ v`.
    pub fn singleton(d: Dot, v: V) -> Self {
        DotFun(vec![(d, v)])
    }

    /// Insert an entry.
    pub fn insert(&mut self, d: Dot, v: V) {
        self.insert_sorted(d, v);
    }

    /// Iterate entries in dot order.
    pub fn iter(&self) -> impl Iterator<Item = (&Dot, &V)> {
        self.0.iter().map(|(d, v)| (d, v))
    }

    /// The values, in dot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.0.iter().map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Does the map hold no entries?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<V: Clone + Debug + Eq + Sizeable> DotStore for DotFun<V> {
    fn for_each_dot(&self, f: &mut dyn FnMut(Dot)) {
        for (d, _) in &self.0 {
            f(*d);
        }
    }

    fn contains_dot(&self, d: &Dot) -> bool {
        self.has_dot(d)
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn join_would_change(
        &self,
        self_ctx: &CausalContext,
        other: &Self,
        other_ctx: &CausalContext,
    ) -> bool {
        self.0
            .iter()
            .any(|(d, _)| !other.has_dot(d) && other_ctx.contains(d))
            || other
                .0
                .iter()
                .any(|(d, _)| !self.has_dot(d) && !self_ctx.contains(d))
    }

    fn join(&mut self, self_ctx: &CausalContext, other: &Self, other_ctx: &CausalContext) -> bool {
        if !self.join_would_change(self_ctx, other, other_ctx) {
            return false;
        }
        let mut merged = Vec::with_capacity(self.0.len() + other.0.len());
        let mut mine = std::mem::take(&mut self.0).into_iter().peekable();
        let mut theirs = other.0.iter().peekable();
        loop {
            let take_mine = match (mine.peek(), theirs.peek()) {
                (Some((md, _)), Some((td, _))) => match md.cmp(td) {
                    core::cmp::Ordering::Less => Some(true),
                    core::cmp::Ordering::Greater => Some(false),
                    core::cmp::Ordering::Equal => {
                        merged.push(mine.next().expect("peeked")); // lint: allow(panic) — peek() just returned Some
                        theirs.next();
                        continue;
                    }
                },
                (Some(_), None) => Some(true),
                (None, Some(_)) => Some(false),
                (None, None) => None,
            };
            match take_mine {
                Some(true) => {
                    let (d, v) = mine.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    if !other_ctx.contains(&d) {
                        merged.push((d, v));
                    }
                }
                Some(false) => {
                    let (d, v) = theirs.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    if !self_ctx.contains(d) {
                        merged.push((*d, v.clone()));
                    }
                }
                None => break,
            }
        }
        self.0 = merged;
        true
    }

    fn for_each_part(&self, f: &mut dyn FnMut(Dot, Self)) {
        for (d, v) in &self.0 {
            f(*d, DotFun::singleton(*d, v.clone()));
        }
    }

    fn dot_count(&self) -> u64 {
        self.0.len() as u64
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0
            .iter()
            .map(|(_, v)| model.vector_entry_bytes() + v.payload_bytes(model))
            .sum()
    }
}

/// `K ↪ S` — keyed causal state, for a nested store `S`, as a key-sorted
/// vector.
///
/// Keys with an empty nested store are never kept (`⊥` entries are
/// represented by absence), so key removal needs no tombstones: joining
/// with a peer whose context covers a key's dots removes the key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DotMap<K: Ord, S>(Vec<(K, S)>);

impl<K: Ord, S> Default for DotMap<K, S> {
    fn default() -> Self {
        DotMap(Vec::new())
    }
}

impl<K: Ord, S> DotMap<K, S> {
    /// Key-sorted insert (replacing a duplicate — only hostile decoded
    /// input produces one).
    fn insert_sorted(&mut self, k: K, s: S) {
        match self.0.binary_search_by(|(sk, _)| sk.cmp(&k)) {
            Ok(i) => self.0[i].1 = s,
            Err(i) => self.0.insert(i, (k, s)),
        }
    }
}

impl<K: Ord + Clone, S: DotStore> DotMap<K, S> {
    /// The empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// A map holding exactly `k ↦ s` (no entry if `s` is empty).
    pub fn singleton(k: K, s: S) -> Self {
        let mut m = Self::new();
        if !s.is_empty() {
            m.0.push((k, s));
        }
        m
    }

    /// The nested store at `k`, if present.
    pub fn get(&self, k: &K) -> Option<&S> {
        self.0
            .binary_search_by(|(sk, _)| sk.cmp(k))
            .ok()
            .map(|i| &self.0[i].1)
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &S)> {
        self.0.iter().map(|(k, s)| (k, s))
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Does the map hold no keys?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<K: Ord + Clone + Debug + Sizeable, S: DotStore> DotStore for DotMap<K, S> {
    fn for_each_dot(&self, f: &mut dyn FnMut(Dot)) {
        for (_, s) in &self.0 {
            s.for_each_dot(f);
        }
    }

    fn contains_dot(&self, d: &Dot) -> bool {
        self.0.iter().any(|(_, s)| s.contains_dot(d))
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn join_would_change(
        &self,
        self_ctx: &CausalContext,
        other: &Self,
        other_ctx: &CausalContext,
    ) -> bool {
        // Two-pointer scan over both key-sorted entry lists, recursing
        // into nested stores (against ⊥ for one-sided keys).
        let empty = S::default();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() || j < other.0.len() {
            let changed = match (self.0.get(i), other.0.get(j)) {
                (Some((mk, ms)), Some((tk, ts))) => match mk.cmp(tk) {
                    core::cmp::Ordering::Less => {
                        i += 1;
                        ms.join_would_change(self_ctx, &empty, other_ctx)
                    }
                    core::cmp::Ordering::Greater => {
                        j += 1;
                        empty.join_would_change(self_ctx, ts, other_ctx)
                    }
                    core::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        ms.join_would_change(self_ctx, ts, other_ctx)
                    }
                },
                (Some((_, ms)), None) => {
                    i += 1;
                    ms.join_would_change(self_ctx, &empty, other_ctx)
                }
                (None, Some((_, ts))) => {
                    j += 1;
                    empty.join_would_change(self_ctx, ts, other_ctx)
                }
                (None, None) => break,
            };
            if changed {
                return true;
            }
        }
        false
    }

    fn join(&mut self, self_ctx: &CausalContext, other: &Self, other_ctx: &CausalContext) -> bool {
        if !self.join_would_change(self_ctx, other, other_ctx) {
            return false;
        }
        // Linear two-pointer merge by key; emptied nested stores are
        // pruned as we go (⊥ entries are represented by absence).
        let empty = S::default();
        let mut merged = Vec::with_capacity(self.0.len() + other.0.len());
        let mut mine = std::mem::take(&mut self.0).into_iter().peekable();
        let mut theirs = other.0.iter().peekable();
        loop {
            let take_mine = match (mine.peek(), theirs.peek()) {
                (Some((mk, _)), Some((tk, _))) => match mk.cmp(tk) {
                    core::cmp::Ordering::Less => Some(true),
                    core::cmp::Ordering::Greater => Some(false),
                    core::cmp::Ordering::Equal => {
                        let (k, mut s) = mine.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                        let (_, ts) = theirs.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                        s.join(self_ctx, ts, other_ctx);
                        if !s.is_empty() {
                            merged.push((k, s));
                        }
                        continue;
                    }
                },
                (Some(_), None) => Some(true),
                (None, Some(_)) => Some(false),
                (None, None) => None,
            };
            match take_mine {
                Some(true) => {
                    let (k, mut s) = mine.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    s.join(self_ctx, &empty, other_ctx);
                    if !s.is_empty() {
                        merged.push((k, s));
                    }
                }
                Some(false) => {
                    let (k, ts) = theirs.next().expect("peeked"); // lint: allow(panic) — peek() just returned Some
                    let mut s = S::default();
                    if s.join(self_ctx, ts, other_ctx) && !s.is_empty() {
                        merged.push((k.clone(), s));
                    }
                }
                None => break,
            }
        }
        self.0 = merged;
        true
    }

    fn for_each_part(&self, f: &mut dyn FnMut(Dot, Self)) {
        for (k, s) in &self.0 {
            s.for_each_part(&mut |d, part| f(d, DotMap::singleton(k.clone(), part)));
        }
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0
            .iter()
            .map(|(k, s)| k.payload_bytes(model) + s.size_bytes(model))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Causal<S>: the lattice
// ---------------------------------------------------------------------------

/// A causal CRDT state: a dot store paired with a causal context.
///
/// Carries a mutation epoch and cached encoded frame (excluded from
/// equality, ordering, hashing and `Debug`): any data-changing mutation
/// invalidates the frame, and encoding an unmutated state reuses it.
#[derive(Clone, Default)]
pub struct Causal<S> {
    store: S,
    ctx: CausalContext,
    tag: StateTag,
}

impl<S: Debug> Debug for Causal<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The tag is process-local bookkeeping: keeping it out of `Debug`
        // keeps `Debug`-derived state hashes equal across converged
        // replicas.
        f.debug_struct("Causal")
            .field("store", &self.store)
            .field("ctx", &self.ctx)
            .finish()
    }
}

impl<S: PartialEq> PartialEq for Causal<S> {
    fn eq(&self, other: &Self) -> bool {
        self.store == other.store && self.ctx == other.ctx
    }
}

impl<S: Eq> Eq for Causal<S> {}

impl<S: PartialOrd> PartialOrd for Causal<S> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        match self.store.partial_cmp(&other.store) {
            Some(core::cmp::Ordering::Equal) => self.ctx.partial_cmp(&other.ctx),
            o => o,
        }
    }
}

impl<S: Ord> Ord for Causal<S> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (&self.store, &self.ctx).cmp(&(&other.store, &other.ctx))
    }
}

impl<S: core::hash::Hash> core::hash::Hash for Causal<S> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.store.hash(state);
        self.ctx.hash(state);
    }
}

impl<S> Causal<S> {
    /// The state's process-local mutation epoch. Any data-changing
    /// mutation bumps it to a process-unique value; clones share their
    /// original's epoch (equal epochs imply equal data). Used to key
    /// external caches (encoded frames, state hashes).
    pub fn mutation_epoch(&self) -> u64 {
        self.tag.epoch()
    }
}

impl<S: DotStore> Causal<S> {
    /// A fresh, empty causal state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store half.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The causal context.
    pub fn context(&self) -> &CausalContext {
        &self.ctx
    }

    /// Mutation primitive shared by every causal CRDT: claim a fresh dot
    /// at `replica` (if `write` wants one), kill the live dots selected by
    /// `kill`, and return the optimal delta.
    ///
    /// * `kill` selects dots to supersede (their death is published by
    ///   covering them in the delta's context without storing them);
    /// * `write` receives the fresh dot and returns the minimal store
    ///   holding the new event (e.g. `{k ↦ {d ↦ v}}`), or is skipped for
    ///   pure removals.
    pub fn mutate(
        &mut self,
        replica: Option<ReplicaId>,
        kill: impl Fn(&Dot) -> bool,
        write: impl FnOnce(Dot) -> S,
    ) -> Self {
        let mut delta = Self::new();
        let mut changed = false;
        // Collect and erase the superseded dots: join with a state whose
        // context covers them but whose store does not hold them.
        let mut dead_ctx = CausalContext::new();
        self.store.for_each_dot(&mut |d| {
            if kill(&d) {
                dead_ctx.insert(d);
            }
        });
        if !dead_ctx.is_empty() {
            self.store.join(&self.ctx, &S::default(), &dead_ctx);
            changed = true;
        }
        delta.ctx.union(&dead_ctx);
        if let Some(r) = replica {
            // Snapshot the context *before* claiming the fresh dot, so the
            // framework join adopts the news as unseen.
            let pre_ctx = self.ctx.clone();
            let dot = self.ctx.next_dot(r);
            let news = write(dot);
            self.store
                .join(&pre_ctx, &news, &CausalContext::singleton(dot));
            delta.store = news;
            delta.ctx.insert(dot);
            changed = true;
        }
        if changed {
            self.tag.note_mutation();
            delta.tag.note_mutation();
        }
        delta
    }
}

impl<S: DotStore> Lattice for Causal<S> {
    fn join_assign(&mut self, other: Self) -> bool {
        // Both halves detect no-change without allocating, so joining an
        // already-covered delta is free and leaves the epoch (and any
        // cached frame) intact.
        let mut changed = self.store.join(&self.ctx, &other.store, &other.ctx);
        changed |= self.ctx.union(&other.ctx);
        if changed {
            self.tag.note_mutation();
        }
        changed
    }

    fn leq(&self, other: &Self) -> bool {
        // a ⊑ b ⇔ a ⊔ b = b: my context is covered, and no dot live in b
        // is one I have seen die.
        if !self.ctx.subset_of(&other.ctx) {
            return false;
        }
        let mut ok = true;
        other.store.for_each_dot(&mut |d| {
            if !self.store.contains_dot(&d) && self.ctx.contains(&d) {
                ok = false;
            }
        });
        ok
    }
}

impl<S: DotStore> Bottom for Causal<S> {
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.store.is_empty() && self.ctx.is_empty()
    }
}

impl<S: DotStore> Decompose for Causal<S> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        // Live parts.
        self.store.for_each_part(&mut |d, part| {
            f(Causal {
                store: part,
                ctx: CausalContext::singleton(d),
                tag: StateTag::fresh(),
            });
        });
        // Dead parts.
        for d in self.ctx.iter() {
            if !self.store.contains_dot(&d) {
                f(Causal {
                    store: S::default(),
                    ctx: CausalContext::singleton(d),
                    tag: StateTag::fresh(),
                });
            }
        }
    }

    fn irreducible_count(&self) -> u64 {
        self.ctx.len()
    }

    /// Optimal delta, specialized: live parts the peer hasn't heard of,
    /// plus dead parts the peer hasn't heard of or still believes live.
    fn delta(&self, other: &Self) -> Self {
        let mut d = Self::new();
        self.store.for_each_part(&mut |dot, part| {
            if !other.ctx.contains(&dot) {
                let self_ctx = d.ctx.clone();
                let part_ctx = CausalContext::singleton(dot);
                d.store.join(&self_ctx, &part, &part_ctx);
                d.ctx.insert(dot);
            }
        });
        for dot in self.ctx.iter() {
            if !self.store.contains_dot(&dot)
                && (!other.ctx.contains(&dot) || other.store.contains_dot(&dot))
            {
                d.ctx.insert(dot);
            }
        }
        d.tag = StateTag::fresh();
        d
    }

    fn is_irreducible(&self) -> bool {
        self.ctx.len() == 1
    }
}

impl<S: DotStore> StateSize for Causal<S> {
    fn count_elements(&self) -> u64 {
        self.ctx.len()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.store.size_bytes(model) + self.ctx.size_bytes(model)
    }
}

// ---------------------------------------------------------------------------
// ORMap: observed-remove map with multi-value leaves
// ---------------------------------------------------------------------------

/// Operations on an [`ORMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ORMapOp<K, V> {
    /// Write `v` under `k` at a replica (supersedes the values of `k` it
    /// has observed; concurrent writes to `k` all survive, as in a
    /// multi-value register).
    Put(ReplicaId, K, V),
    /// Remove every observed value of `k` (concurrent puts win).
    Remove(K),
    /// Remove every observed entry.
    Clear,
}

/// An observed-remove map with multi-value-register leaves:
/// `Causal(K ↪ (Dot ↪ V))`.
///
/// `put` behaves per key like an [`crate::MVRegister`] write; `remove`
/// deletes only the writes it has observed, so a concurrent `put` to the
/// same key survives (add-wins at the key level). Re-inserting after a
/// removal works, unlike a map built on 2P semantics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ORMap<K: Ord, V>(Causal<DotMap<K, DotFun<V>>>);

impl<K: Ord, V> Default for ORMap<K, V> {
    fn default() -> Self {
        ORMap(Causal::default())
    }
}

crate::macros::delegate_lattice!(ORMap<K, V> where
    [K: Ord + Clone + Debug + Sizeable, V: Clone + Debug + Eq + Sizeable]);

impl<K: Ord + Clone + Debug + Sizeable, V: Clone + Debug + Eq + Sizeable> ORMap<K, V> {
    /// A fresh, empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `v` under `k` at `replica`, superseding observed values of
    /// `k`. Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn put(&mut self, replica: ReplicaId, k: K, v: V) -> Self {
        let kill: BTreeSet<Dot> = self.key_dots(&k);
        ORMap(self.0.mutate(
            Some(replica),
            |d| kill.contains(d),
            |dot| DotMap::singleton(k.clone(), DotFun::singleton(dot, v)),
        ))
    }

    /// Remove every observed value of `k`. Returns the optimal delta
    /// (pure context — no tombstones).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove(&mut self, k: &K) -> Self {
        let kill: BTreeSet<Dot> = self.key_dots(k);
        ORMap(
            self.0
                .mutate(None, |d| kill.contains(d), |_| DotMap::default()),
        )
    }

    /// Remove every observed entry. Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn clear(&mut self) -> Self {
        ORMap(self.0.mutate(None, |_| true, |_| DotMap::default()))
    }

    /// The concurrent values visible under `k` (empty if absent; more
    /// than one after concurrent puts).
    pub fn get(&self, k: &K) -> Vec<&V> {
        self.0
            .store
            .get(k)
            .map(|f| f.values().collect())
            .unwrap_or_default()
    }

    /// Is `k` present?
    pub fn contains_key(&self, k: &K) -> bool {
        self.0.store.get(k).is_some()
    }

    /// Live keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.0.store.iter().map(|(k, _)| k)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.0.store.len()
    }

    /// Is the map observably empty?
    pub fn is_empty(&self) -> bool {
        self.0.store.is_empty()
    }

    fn key_dots(&self, k: &K) -> BTreeSet<Dot> {
        let mut dots = BTreeSet::new();
        if let Some(f) = self.0.store.get(k) {
            f.for_each_dot(&mut |d| {
                dots.insert(d);
            });
        }
        dots
    }
}

impl<K: Ord + Clone + Debug + Sizeable, V: Clone + Debug + Eq + Sizeable> Crdt for ORMap<K, V> {
    type Op = ORMapOp<K, V>;
    type Value = BTreeMap<K, Vec<V>>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            ORMapOp::Put(r, k, v) => self.put(*r, k.clone(), v.clone()),
            ORMapOp::Remove(k) => self.remove(k),
            ORMapOp::Clear => self.clear(),
        }
    }

    fn value(&self) -> Self::Value {
        self.0
            .store
            .iter()
            .map(|(k, f)| (k.clone(), f.values().cloned().collect()))
            .collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            ORMapOp::Put(_, k, v) => {
                model.id_bytes + k.payload_bytes(model) + v.payload_bytes(model)
            }
            ORMapOp::Remove(k) => k.payload_bytes(model),
            ORMapOp::Clear => 1,
        }
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// ORSetMap: observed-remove map of add-wins sets (one level of nesting)
// ---------------------------------------------------------------------------

/// Operations on an [`ORSetMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ORSetMapOp<K, E> {
    /// Add `e` to the set under `k`.
    Add(ReplicaId, K, E),
    /// Remove `e` from the set under `k` (observed copies only).
    RemoveElem(K, E),
    /// Remove the whole entry under `k` (observed state only; concurrent
    /// adds to `k` survive — and resurrect the key).
    RemoveKey(K),
}

/// An observed-remove map whose values are add-wins sets:
/// `Causal(K ↪ (E ↪ P(Dot)))` — a two-level [`DotMap`] nesting,
/// demonstrating the framework's compositionality.
///
/// Removing a key removes only the element-copies observed locally, so an
/// add racing with the key removal wins and keeps the key alive with that
/// element — exactly the add-wins semantics, lifted through the nesting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ORSetMap<K: Ord, E: Ord>(Causal<DotMap<K, DotMap<E, DotSet>>>);

impl<K: Ord, E: Ord> Default for ORSetMap<K, E> {
    fn default() -> Self {
        ORSetMap(Causal::default())
    }
}

crate::macros::delegate_lattice!(ORSetMap<K, E> where
    [K: Ord + Clone + Debug + Sizeable, E: Ord + Clone + Debug + Sizeable]);

impl<K: Ord + Clone + Debug + Sizeable, E: Ord + Clone + Debug + Sizeable> ORSetMap<K, E> {
    /// A fresh, empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `e` to the set under `k` at `replica` (superseding observed
    /// copies of `e` there). Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, k: K, e: E) -> Self {
        let kill = self.elem_dots(&k, &e);
        ORSetMap(self.0.mutate(
            Some(replica),
            |d| kill.contains(d),
            |dot| {
                DotMap::singleton(
                    k.clone(),
                    DotMap::singleton(e.clone(), DotSet::singleton(dot)),
                )
            },
        ))
    }

    /// Remove the observed copies of `e` under `k`. Returns the optimal
    /// delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove_elem(&mut self, k: &K, e: &E) -> Self {
        let kill = self.elem_dots(k, e);
        ORSetMap(
            self.0
                .mutate(None, |d| kill.contains(d), |_| DotMap::default()),
        )
    }

    /// Remove the observed entry under `k`. Returns the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove_key(&mut self, k: &K) -> Self {
        let mut kill = BTreeSet::new();
        if let Some(sets) = self.0.store.get(k) {
            sets.for_each_dot(&mut |d| {
                kill.insert(d);
            });
        }
        ORSetMap(
            self.0
                .mutate(None, |d| kill.contains(d), |_| DotMap::default()),
        )
    }

    /// The visible elements under `k`, in order.
    pub fn get(&self, k: &K) -> BTreeSet<&E> {
        self.0
            .store
            .get(k)
            .map(|sets| sets.iter().map(|(e, _)| e).collect())
            .unwrap_or_default()
    }

    /// Is `k` present (with at least one element)?
    pub fn contains_key(&self, k: &K) -> bool {
        self.0.store.get(k).is_some()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.0.store.len()
    }

    /// Is the map observably empty?
    pub fn is_empty(&self) -> bool {
        self.0.store.is_empty()
    }

    fn elem_dots(&self, k: &K, e: &E) -> BTreeSet<Dot> {
        let mut dots = BTreeSet::new();
        if let Some(sets) = self.0.store.get(k) {
            if let Some(ds) = sets.get(e) {
                ds.for_each_dot(&mut |d| {
                    dots.insert(d);
                });
            }
        }
        dots
    }
}

impl<K: Ord + Clone + Debug + Sizeable, E: Ord + Clone + Debug + Sizeable> Crdt for ORSetMap<K, E> {
    type Op = ORSetMapOp<K, E>;
    type Value = BTreeMap<K, BTreeSet<E>>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            ORSetMapOp::Add(r, k, e) => self.add(*r, k.clone(), e.clone()),
            ORSetMapOp::RemoveElem(k, e) => self.remove_elem(k, e),
            ORSetMapOp::RemoveKey(k) => self.remove_key(k),
        }
    }

    fn value(&self) -> Self::Value {
        self.0
            .store
            .iter()
            .map(|(k, sets)| (k.clone(), sets.iter().map(|(e, _)| e.clone()).collect()))
            .collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            ORSetMapOp::Add(_, k, e) => {
                model.id_bytes + k.payload_bytes(model) + e.payload_bytes(model)
            }
            ORSetMapOp::RemoveElem(k, e) => k.payload_bytes(model) + e.payload_bytes(model),
            ORSetMapOp::RemoveKey(k) => k.payload_bytes(model),
        }
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// RWSet: remove-wins set
// ---------------------------------------------------------------------------

/// Operations on an [`RWSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RWSetOp<E> {
    /// Add `e` (loses to a concurrent remove of `e`).
    Add(ReplicaId, E),
    /// Remove `e` (wins over concurrent adds of `e`).
    Remove(ReplicaId, E),
}

/// A remove-wins set: `Causal(E ↪ (Dot ↪ bool))`, where `true` dots vote
/// *present* and `false` dots vote *absent*.
///
/// Both `add` and `remove` supersede the votes they have observed and cast
/// a fresh vote; an element is in the set iff it has at least one live
/// `true` vote and **no** live `false` vote — so when an add races with a
/// remove, both votes survive the join and the remove wins. The dual of
/// [`crate::AWSet`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RWSet<E: Ord>(Causal<DotMap<E, DotFun<bool>>>);

impl<E: Ord> Default for RWSet<E> {
    fn default() -> Self {
        RWSet(Causal::default())
    }
}

crate::macros::delegate_lattice!(RWSet<E> where [E: Ord + Clone + Debug + Sizeable]);

impl<E: Ord + Clone + Debug + Sizeable> RWSet<E> {
    /// A fresh, empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cast a vote for `e` at `replica`.
    fn vote(&mut self, replica: ReplicaId, e: E, present: bool) -> Self {
        let mut kill = BTreeSet::new();
        if let Some(votes) = self.0.store.get(&e) {
            votes.for_each_dot(&mut |d| {
                kill.insert(d);
            });
        }
        RWSet(self.0.mutate(
            Some(replica),
            |d| kill.contains(d),
            |dot| DotMap::singleton(e.clone(), DotFun::singleton(dot, present)),
        ))
    }

    /// Add `e`, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, e: E) -> Self {
        self.vote(replica, e, true)
    }

    /// Remove `e`, returning the optimal delta. Remove-wins semantics
    /// require the removal itself to be a vote, so it carries a dot (and,
    /// unlike [`crate::AWSet::remove`], needs an acting replica).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn remove(&mut self, replica: ReplicaId, e: E) -> Self {
        self.vote(replica, e, false)
    }

    /// Membership: at least one `true` vote and no `false` vote.
    pub fn contains(&self, e: &E) -> bool {
        self.0.store.get(e).is_some_and(|votes| {
            let mut any_true = false;
            let mut any_false = false;
            for v in votes.values() {
                any_true |= *v;
                any_false |= !*v;
            }
            any_true && !any_false
        })
    }

    /// The visible elements.
    pub fn elements(&self) -> BTreeSet<&E> {
        self.0
            .store
            .iter()
            .filter(|(e, _)| self.contains(e))
            .map(|(e, _)| e)
            .collect()
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.elements().len()
    }

    /// Is the set observably empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E: Ord + Clone + Debug + Sizeable> Crdt for RWSet<E> {
    type Op = RWSetOp<E>;
    type Value = BTreeSet<E>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            RWSetOp::Add(r, e) => self.add(*r, e.clone()),
            RWSetOp::Remove(r, e) => self.remove(*r, e.clone()),
        }
    }

    fn value(&self) -> BTreeSet<E> {
        self.elements().into_iter().cloned().collect()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            RWSetOp::Add(_, e) | RWSetOp::Remove(_, e) => {
                model.id_bytes + e.payload_bytes(model) + 1
            }
        }
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// DWFlag: disable-wins flag
// ---------------------------------------------------------------------------

/// Operations on a [`DWFlag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DWFlagOp {
    /// Set the flag (loses to a concurrent disable).
    Enable(ReplicaId),
    /// Clear the flag (wins over concurrent enables).
    Disable(ReplicaId),
}

/// A disable-wins flag: `Causal(Dot ↪ bool)` with `true` = enable votes
/// and `false` = disable votes; the flag reads enabled iff there is at
/// least one live enable vote and no live disable vote. The dual of
/// [`crate::EWFlag`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DWFlag(Causal<DotFun<bool>>);

crate::macros::delegate_lattice!(DWFlag where []);

impl DWFlag {
    /// A fresh, disabled flag.
    pub fn new() -> Self {
        Self::default()
    }

    fn vote(&mut self, replica: ReplicaId, enabled: bool) -> Self {
        DWFlag(self.0.mutate(
            Some(replica),
            |_| true,
            |dot| DotFun::singleton(dot, enabled),
        ))
    }

    /// Enable at `replica`, returning the optimal delta.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn enable(&mut self, replica: ReplicaId) -> Self {
        self.vote(replica, true)
    }

    /// Disable at `replica`, returning the optimal delta. Unlike
    /// [`crate::EWFlag::disable`], the disable is itself a vote (it must
    /// beat concurrent enables), so it carries a dot.
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn disable(&mut self, replica: ReplicaId) -> Self {
        self.vote(replica, false)
    }

    /// Is the flag set? At least one enable vote and no disable vote.
    pub fn is_enabled(&self) -> bool {
        let mut any_true = false;
        let mut any_false = false;
        for v in self.0.store.values() {
            any_true |= *v;
            any_false |= !*v;
        }
        any_true && !any_false
    }
}

impl Crdt for DWFlag {
    type Op = DWFlagOp;
    type Value = bool;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            DWFlagOp::Enable(r) => self.enable(*r),
            DWFlagOp::Disable(r) => self.disable(*r),
        }
    }

    fn value(&self) -> bool {
        self.is_enabled()
    }

    fn op_size_bytes(_op: &Self::Op, model: &SizeModel) -> u64 {
        model.id_bytes + 1
    }

    fn mutation_epoch(&self) -> Option<u64> {
        Some(self.0.mutation_epoch())
    }
}

// ---------------------------------------------------------------------------
// Wire encodings — by structural recursion over the store algebra, so any
// causal composition built from DotSet/DotFun/DotMap encodes for free.
// The byte shapes are those of the BTreeSet/BTreeMap encodings the flat
// stores replaced: a varint count, then sorted elements.
// ---------------------------------------------------------------------------

impl WireEncode for DotSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.len().encode(out);
        for d in self.0.dots() {
            d.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut s = DotSet::new();
        for _ in 0..len {
            s.insert(Dot::decode(input)?);
        }
        Ok(s)
    }
}

impl<V: WireEncode> WireEncode for DotFun<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u64).encode(out);
        for (d, v) in &self.0 {
            d.encode(out);
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut f = DotFun(Vec::with_capacity(len));
        for _ in 0..len {
            let d = Dot::decode(input)?;
            let v = V::decode(input)?;
            f.insert_sorted(d, v);
        }
        Ok(f)
    }
}

impl<K: Ord + WireEncode, S: WireEncode> WireEncode for DotMap<K, S> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u64).encode(out);
        for (k, s) in &self.0 {
            k.encode(out);
            s.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut m = DotMap(Vec::with_capacity(len));
        for _ in 0..len {
            let k = K::decode(input)?;
            let s = S::decode(input)?;
            m.insert_sorted(k, s);
        }
        Ok(m)
    }
}

impl<S: WireEncode> Causal<S> {
    /// The structural (cache-bypassing) encoding: store, then context.
    fn encode_structural(&self, out: &mut Vec<u8>) {
        self.store.encode(out);
        self.ctx.encode(out);
    }
}

impl<S: WireEncode> WireEncode for Causal<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Unmutated since the last encode: splice the cached frame in.
        if let Some(frame) = self.tag.cached() {
            out.extend_from_slice(&frame);
            return;
        }
        let start = out.len();
        self.encode_structural(out);
        self.tag.store(Bytes::copy_from_slice(&out[start..]));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Causal {
            store: S::decode(input)?,
            ctx: CausalContext::decode(input)?,
            tag: StateTag::fresh(),
        })
    }

    fn encode_frame(&self) -> Bytes {
        if let Some(frame) = self.tag.cached() {
            return frame;
        }
        let mut out = Vec::new();
        self.encode_structural(&mut out);
        let frame = Bytes::from(out);
        self.tag.store(frame.clone());
        frame
    }
}

crate::macros::delegate_wire!(ORMap<K, V> where
    [K: Ord + Clone + Debug + Sizeable + WireEncode,
     V: Clone + Debug + Eq + Sizeable + WireEncode]);
crate::macros::delegate_wire!(ORSetMap<K, E> where
    [K: Ord + Clone + Debug + Sizeable + WireEncode,
     E: Ord + Clone + Debug + Sizeable + WireEncode]);
crate::macros::delegate_wire!(RWSet<E> where
    [E: Ord + Clone + Debug + Sizeable + WireEncode]);
crate::macros::delegate_wire!(DWFlag where []);

impl<K: WireEncode, V: WireEncode> WireEncode for ORMapOp<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ORMapOp::Put(r, k, v) => {
                out.push(0);
                r.encode(out);
                k.encode(out);
                v.encode(out);
            }
            ORMapOp::Remove(k) => {
                out.push(1);
                k.encode(out);
            }
            ORMapOp::Clear => out.push(2),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(ORMapOp::Put(
                ReplicaId::decode(input)?,
                K::decode(input)?,
                V::decode(input)?,
            )),
            1 => Ok(ORMapOp::Remove(K::decode(input)?)),
            2 => Ok(ORMapOp::Clear),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<K: WireEncode, E: WireEncode> WireEncode for ORSetMapOp<K, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ORSetMapOp::Add(r, k, e) => {
                out.push(0);
                r.encode(out);
                k.encode(out);
                e.encode(out);
            }
            ORSetMapOp::RemoveElem(k, e) => {
                out.push(1);
                k.encode(out);
                e.encode(out);
            }
            ORSetMapOp::RemoveKey(k) => {
                out.push(2);
                k.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(ORSetMapOp::Add(
                ReplicaId::decode(input)?,
                K::decode(input)?,
                E::decode(input)?,
            )),
            1 => Ok(ORSetMapOp::RemoveElem(K::decode(input)?, E::decode(input)?)),
            2 => Ok(ORSetMapOp::RemoveKey(K::decode(input)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<E: WireEncode> WireEncode for RWSetOp<E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RWSetOp::Add(r, e) => {
                out.push(0);
                r.encode(out);
                e.encode(out);
            }
            RWSetOp::Remove(r, e) => {
                out.push(1);
                r.encode(out);
                e.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(RWSetOp::Add(ReplicaId::decode(input)?, E::decode(input)?)),
            1 => Ok(RWSetOp::Remove(
                ReplicaId::decode(input)?,
                E::decode(input)?,
            )),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl WireEncode for DWFlagOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DWFlagOp::Enable(r) => {
                out.push(0);
                r.encode(out);
            }
            DWFlagOp::Disable(r) => {
                out.push(1);
                r.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(DWFlagOp::Enable(ReplicaId::decode(input)?)),
            1 => Ok(DWFlagOp::Disable(ReplicaId::decode(input)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::check_crdt_op;
    use crdt_lattice::testing::check_all_laws;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const C: ReplicaId = ReplicaId(2);

    // -- store algebra -------------------------------------------------------

    #[test]
    fn dotset_join_respects_contexts() {
        // A has dot a1 live; B has seen a1 die.
        let mut a_store = DotSet::singleton(Dot::new(A, 1));
        let a_ctx = CausalContext::singleton(Dot::new(A, 1));
        let b_store = DotSet::new();
        let b_ctx = CausalContext::singleton(Dot::new(A, 1));
        assert!(a_store.join(&a_ctx, &b_store, &b_ctx));
        assert!(a_store.is_empty(), "observed death wins");

        // Unseen news is adopted.
        let mut empty = DotSet::new();
        let fresh_ctx = CausalContext::new();
        let news = DotSet::singleton(Dot::new(B, 1));
        let news_ctx = CausalContext::singleton(Dot::new(B, 1));
        assert!(empty.join(&fresh_ctx, &news, &news_ctx));
        assert!(empty.contains_dot(&Dot::new(B, 1)));
    }

    #[test]
    fn dotfun_join_is_idempotent_and_commutes() {
        let d1 = Dot::new(A, 1);
        let d2 = Dot::new(B, 1);
        let mut x = DotFun::singleton(d1, 10u32);
        let x_ctx = CausalContext::singleton(d1);
        let y = DotFun::singleton(d2, 20u32);
        let y_ctx = CausalContext::singleton(d2);

        let mut xy = x.clone();
        assert!(xy.join(&x_ctx, &y, &y_ctx));
        let mut yx = y.clone();
        assert!(yx.join(&y_ctx, &x, &x_ctx));
        assert_eq!(xy, yx);
        assert!(!x.join(&x_ctx, &x.clone(), &x_ctx), "idempotent");
    }

    #[test]
    fn dotmap_prunes_emptied_keys() {
        let d = Dot::new(A, 1);
        let mut m: DotMap<&str, DotSet> = DotMap::singleton("k", DotSet::singleton(d));
        let ctx = CausalContext::singleton(d);
        // Peer saw the dot die.
        let peer: DotMap<&str, DotSet> = DotMap::new();
        let peer_ctx = CausalContext::singleton(d);
        assert!(m.join(&ctx, &peer, &peer_ctx));
        assert!(m.is_empty(), "key with no dots must disappear");
    }

    #[test]
    fn covered_join_detects_no_change_without_alloc() {
        // The no-change pre-scan must be precise: a join that adds and
        // drops nothing returns false at every nesting depth.
        let d = Dot::new(A, 1);
        let mut m: DotMap<&str, DotMap<u8, DotSet>> =
            DotMap::singleton("k", DotMap::singleton(7, DotSet::singleton(d)));
        let ctx = CausalContext::singleton(d);
        let snapshot = m.clone();
        assert!(!m.join_would_change(&ctx, &snapshot, &ctx));
        assert!(!m.join(&ctx, &snapshot, &ctx));
        assert_eq!(m, snapshot);
    }

    #[test]
    fn nested_parts_carry_full_key_path() {
        let d = Dot::new(A, 1);
        let m: DotMap<&str, DotMap<u8, DotSet>> =
            DotMap::singleton("k", DotMap::singleton(7, DotSet::singleton(d)));
        let mut parts = Vec::new();
        m.for_each_part(&mut |dot, part| parts.push((dot, part)));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, d);
        assert_eq!(parts[0].1.get(&"k").unwrap().get(&7).unwrap().len(), 1);
    }

    // -- ORMap ----------------------------------------------------------------

    #[test]
    fn ormap_put_get_remove() {
        let mut m = ORMap::new();
        let _ = m.put(A, "k1", 1u32);
        let _ = m.put(A, "k2", 2u32);
        assert_eq!(m.get(&"k1"), vec![&1]);
        assert_eq!(m.len(), 2);
        let _ = m.remove(&"k1");
        assert!(!m.contains_key(&"k1"));
        assert_eq!(m.len(), 1);
        // Re-insert after removal works.
        let _ = m.put(B, "k1", 3u32);
        assert_eq!(m.get(&"k1"), vec![&3]);
    }

    #[test]
    fn ormap_concurrent_puts_both_visible() {
        let mut a = ORMap::new();
        let mut b = ORMap::new();
        let da = a.put(A, "k", 1u32);
        let db = b.put(B, "k", 2u32);
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert_eq!(a.get(&"k"), vec![&1, &2], "multi-value leaf keeps both");
        // A sequential overwrite supersedes both.
        let d = a.put(A, "k", 9u32);
        b.join_assign(d);
        assert_eq!(b.get(&"k"), vec![&9]);
    }

    #[test]
    fn ormap_put_wins_concurrent_key_remove() {
        let mut a = ORMap::new();
        let mut b = ORMap::new();
        let d = a.put(A, "k", 1u32);
        b.join_assign(d);
        let d_rm = a.remove(&"k");
        let d_put = b.put(B, "k", 2u32);
        a.join_assign(d_put);
        b.join_assign(d_rm);
        assert_eq!(a, b);
        assert_eq!(a.get(&"k"), vec![&2], "concurrent put survives remove");
    }

    #[test]
    fn ormap_remove_delta_is_pure_context() {
        let model = SizeModel::compact();
        let mut m = ORMap::new();
        let _ = m.put(A, "key-with-a-long-name".to_string(), "x".repeat(100));
        let d = m.remove(&"key-with-a-long-name".to_string());
        assert_eq!(d.0.store.len(), 0, "no tombstone payload");
        assert!(d.size_bytes(&model) <= 2 * model.vector_entry_bytes());
    }

    #[test]
    fn ormap_op_contract_and_laws() {
        let mut m = ORMap::new();
        let _ = m.put(A, 1u8, 10u32);
        let _ = m.put(B, 2u8, 20u32);
        check_crdt_op(&m, &ORMapOp::Put(A, 1, 11));
        check_crdt_op(&m, &ORMapOp::Remove(2));
        check_crdt_op(&m, &ORMapOp::Clear);
        let mut m2 = m.clone();
        let _ = m2.remove(&1);
        let mut m3 = ORMap::new();
        let _ = m3.put(C, 3u8, 30u32);
        let j = m2.clone().join(m3.clone());
        check_all_laws(&[ORMap::bottom(), m, m2, m3, j]);
    }

    #[test]
    fn ormap_delta_ships_removals_to_stale_peers() {
        let mut fresh = ORMap::new();
        let d = fresh.put(A, "k", 1u32);
        let mut stale = ORMap::new();
        stale.join_assign(d);
        let _ = fresh.remove(&"k");
        let delta = fresh.delta(&stale);
        assert!(!delta.is_bottom());
        stale.join_assign(delta);
        assert_eq!(stale, fresh);
        assert!(!stale.contains_key(&"k"));
    }

    // -- ORSetMap (nested) ------------------------------------------------------

    #[test]
    fn orsetmap_basic_nesting() {
        let mut m = ORSetMap::new();
        let _ = m.add(A, "tags", 1u32);
        let _ = m.add(A, "tags", 2u32);
        let _ = m.add(A, "refs", 9u32);
        assert_eq!(m.get(&"tags"), BTreeSet::from([&1, &2]));
        let _ = m.remove_elem(&"tags", &1);
        assert_eq!(m.get(&"tags"), BTreeSet::from([&2]));
        let _ = m.remove_key(&"tags");
        assert!(!m.contains_key(&"tags"));
        assert!(m.contains_key(&"refs"));
    }

    #[test]
    fn orsetmap_add_survives_concurrent_key_remove() {
        let mut a = ORSetMap::new();
        let mut b = ORSetMap::new();
        let d = a.add(A, "k", 1u32);
        b.join_assign(d);
        let d_rm = a.remove_key(&"k");
        let d_add = b.add(B, "k", 2u32);
        a.join_assign(d_add);
        b.join_assign(d_rm);
        assert_eq!(a, b);
        assert_eq!(a.get(&"k"), BTreeSet::from([&2]), "add resurrects the key");
    }

    #[test]
    fn orsetmap_op_contract_and_laws() {
        let mut m = ORSetMap::new();
        let _ = m.add(A, 1u8, 10u32);
        let _ = m.add(B, 1u8, 20u32);
        check_crdt_op(&m, &ORSetMapOp::Add(C, 2, 30));
        check_crdt_op(&m, &ORSetMapOp::RemoveElem(1, 10));
        check_crdt_op(&m, &ORSetMapOp::RemoveKey(1));
        let mut m2 = m.clone();
        let _ = m2.remove_key(&1);
        check_all_laws(&[ORSetMap::bottom(), m, m2]);
    }

    // -- RWSet -------------------------------------------------------------------

    #[test]
    fn rwset_add_remove_sequential() {
        let mut s = RWSet::new();
        let _ = s.add(A, "x");
        assert!(s.contains(&"x"));
        let _ = s.remove(A, "x");
        assert!(!s.contains(&"x"));
        let _ = s.add(A, "x");
        assert!(s.contains(&"x"), "re-add after remove works");
    }

    #[test]
    fn rwset_remove_wins_concurrent_add() {
        let mut a = RWSet::new();
        let mut b = RWSet::new();
        // Shared history: both know "x" present.
        let d = a.add(A, "x");
        b.join_assign(d);
        // Concurrently: A removes, B re-adds.
        let da = a.remove(A, "x");
        let db = b.add(B, "x");
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert!(!a.contains(&"x"), "remove wins — dual of AWSet");
    }

    #[test]
    fn rwset_vs_awset_on_the_same_schedule() {
        use crate::AWSet;
        // The same concurrent add/remove race, on both set flavors.
        let (mut aw_a, mut aw_b) = (AWSet::new(), AWSet::new());
        let d = aw_a.add(A, 1u8);
        aw_b.join_assign(d);
        let d_rm = aw_a.remove(&1);
        let d_add = aw_b.add(B, 1u8);
        aw_a.join_assign(d_add);
        aw_b.join_assign(d_rm);
        assert!(aw_a.contains(&1), "AWSet: add wins");

        let (mut rw_a, mut rw_b) = (RWSet::new(), RWSet::new());
        let d = rw_a.add(A, 1u8);
        rw_b.join_assign(d);
        let d_rm = rw_a.remove(A, 1u8);
        let d_add = rw_b.add(B, 1u8);
        rw_a.join_assign(d_add);
        rw_b.join_assign(d_rm);
        assert!(!rw_a.contains(&1), "RWSet: remove wins");
    }

    #[test]
    fn rwset_op_contract_and_laws() {
        let mut s = RWSet::new();
        let _ = s.add(A, 1u8);
        let _ = s.add(B, 2u8);
        check_crdt_op(&s, &RWSetOp::Add(A, 3));
        check_crdt_op(&s, &RWSetOp::Remove(B, 1));
        let mut s2 = s.clone();
        let _ = s2.remove(A, 2);
        check_all_laws(&[RWSet::bottom(), s, s2]);
    }

    // -- DWFlag ---------------------------------------------------------------------

    #[test]
    fn dwflag_disable_wins() {
        let mut a = DWFlag::new();
        let mut b = DWFlag::new();
        let d = a.enable(A);
        b.join_assign(d);
        let da = a.disable(A);
        let db = b.enable(B);
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert!(!a.is_enabled(), "disable wins concurrent enable");
    }

    #[test]
    fn dwflag_vs_ewflag_on_the_same_schedule() {
        use crate::EWFlag;
        let (mut ew_a, mut ew_b) = (EWFlag::new(), EWFlag::new());
        let d = ew_a.enable(A);
        ew_b.join_assign(d);
        let d_dis = ew_a.disable();
        let d_en = ew_b.enable(B);
        ew_a.join_assign(d_en);
        ew_b.join_assign(d_dis);
        assert!(ew_a.is_enabled(), "EWFlag: enable wins");

        let (mut dw_a, mut dw_b) = (DWFlag::new(), DWFlag::new());
        let d = dw_a.enable(A);
        dw_b.join_assign(d);
        let d_dis = dw_a.disable(A);
        let d_en = dw_b.enable(B);
        dw_a.join_assign(d_en);
        dw_b.join_assign(d_dis);
        assert!(!dw_a.is_enabled(), "DWFlag: disable wins");
    }

    #[test]
    fn dwflag_sequential_enable_after_disable() {
        let mut f = DWFlag::new();
        assert!(!f.is_enabled());
        let _ = f.enable(A);
        assert!(f.is_enabled());
        let _ = f.disable(B);
        assert!(!f.is_enabled());
        let _ = f.enable(B);
        assert!(f.is_enabled());
    }

    #[test]
    fn dwflag_op_contract_and_laws() {
        let mut f = DWFlag::new();
        let _ = f.enable(A);
        check_crdt_op(&f, &DWFlagOp::Disable(B));
        check_crdt_op(&f, &DWFlagOp::Enable(B));
        let mut off = f.clone();
        let _ = off.disable(A);
        check_all_laws(&[DWFlag::bottom(), f, off]);
    }

    // -- generic decomposition over nesting ----------------------------------------

    #[test]
    fn nested_decomposition_counts_and_reconstructs() {
        let mut m = ORSetMap::new();
        let _ = m.add(A, 1u8, 10u32);
        let _ = m.add(B, 1u8, 20u32);
        let _ = m.add(A, 2u8, 30u32);
        let _ = m.remove_elem(&1, &10);
        // Dots: A1 (dead), B1 (live), A2 (live). Parts: 2 live + 1 dead.
        let parts = m.decompose();
        assert_eq!(parts.len(), 3);
        assert_eq!(m.irreducible_count(), 3);
        assert!(parts.iter().all(Decompose::is_irreducible));
        let rebuilt = parts
            .into_iter()
            .fold(ORSetMap::bottom(), |acc, p| acc.join(p));
        assert_eq!(rebuilt, m, "⊔⇓x = x through two map levels");
    }

    #[test]
    fn duplicated_reordered_deltas_converge_rwset() {
        let mut a = RWSet::new();
        let d1 = a.add(A, 1u8);
        let d2 = a.remove(A, 1u8);
        let d3 = a.add(A, 2u8);
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let deltas = [d1.clone(), d2.clone(), d3.clone()];
            let mut obs = RWSet::new();
            for &i in &order {
                obs.join_assign(deltas[i].clone());
                obs.join_assign(deltas[i].clone());
            }
            assert_eq!(obs, a, "order {order:?}");
        }
    }

    // -- epochs + cached frames -------------------------------------------------

    #[test]
    fn causal_epoch_and_frame_cache() {
        let mut m = ORMap::new();
        assert_eq!(m.0.mutation_epoch(), 0, "fresh bottom is epoch 0");
        let d = m.put(A, 1u8, 10u32);
        let e1 = m.0.mutation_epoch();
        assert_ne!(e1, 0);
        // Covered delta: no change, no epoch bump.
        m.join_assign(d.clone());
        assert_eq!(m.0.mutation_epoch(), e1);
        // The cached frame matches a from-scratch encode and survives
        // no-op joins.
        let frame = m.encode_frame();
        m.join_assign(d);
        assert_eq!(m.encode_frame(), frame);
        assert_eq!(m.to_bytes(), frame.as_ref());
        // A real mutation invalidates it.
        let _ = m.remove(&1);
        assert_ne!(m.0.mutation_epoch(), e1);
        assert_ne!(m.encode_frame(), frame);
        assert_eq!(m.encode_frame().as_ref(), m.to_bytes());
    }
}
