//! Grow-only set (paper, Fig. 2b).
//!
//! `GSet⟨E⟩ = P(E)`: a set under union. The optimal δ-mutator `addδ`
//! returns `{e}` only when `e` was absent — the paper points out (§III-B)
//! that the original δ-mutator of \[13\] returned `{e}` unconditionally,
//! a source of redundant delta propagation.

use core::fmt::Debug;

use crdt_lattice::{SetLattice, SizeModel, Sizeable};

use crate::macros::{delegate_decompose, delegate_join, delegate_size};
use crate::Crdt;

/// Operations on a [`GSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GSetOp<E> {
    /// `add(e)`: insert an element.
    Add(E),
}

/// A grow-only set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GSet<E: Ord>(SetLattice<E>);

delegate_join!(GSet<E> where [E: Ord + Clone + Debug]);
delegate_decompose!(GSet<E> where [E: Ord + Clone + Debug]);
delegate_size!(GSet<E> where [E: Ord + Clone + Debug + Sizeable]);
crate::macros::delegate_wire!(GSet<E> where
    [E: Ord + Clone + Debug + crdt_lattice::WireEncode]);

impl<E: Ord + Clone + Debug> GSet<E> {
    /// A fresh, empty set (`⊥`).
    pub fn new() -> Self {
        GSet(SetLattice::new())
    }

    /// The mutator `add`; returns the optimal delta `addδ` (Fig. 2b).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, e: E) -> Self {
        GSet(self.0.add_delta(e))
    }

    /// Membership test.
    pub fn contains(&self, e: &E) -> bool {
        self.0.contains(e)
    }

    /// Number of elements (the paper's measurement unit, Table I).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.0.iter()
    }
}

impl<E: Ord + Clone + Debug> FromIterator<E> for GSet<E> {
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        GSet(SetLattice::from_iter(iter))
    }
}

impl<E: Ord + Clone + Debug + Sizeable> Crdt for GSet<E> {
    type Op = GSetOp<E>;
    type Value = SetLattice<E>;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match op {
            GSetOp::Add(e) => self.add(e.clone()),
        }
    }

    /// `value(s) = s`.
    fn value(&self) -> SetLattice<E> {
        self.0.clone()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            GSetOp::Add(e) => e.payload_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::{Bottom, Decompose, Lattice, StateSize};

    #[test]
    fn add_returns_singleton_delta_once() {
        let mut s = GSet::new();
        let d1 = s.add("a");
        assert_eq!(d1.len(), 1);
        // Adding again is the ⊥ case of addδ.
        let d2 = s.add("a");
        assert!(d2.is_bottom());
        assert!(s.contains(&"a"));
    }

    #[test]
    fn figure4_back_propagation_scenario() {
        // Fig. 4: A adds a, B adds b; after exchange both hold {a,b}.
        let mut a = GSet::new();
        let mut b = GSet::new();
        let da = a.add("a");
        let db = b.add("b");
        a.join_assign(db);
        b.join_assign(da);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn crdt_op_contract() {
        let mut s = GSet::from_iter([1u32, 2]);
        let s2 = check_crdt_op(&s, &GSetOp::Add(3));
        // Re-adding an existing element still satisfies the contract
        // (delta = ⊥).
        check_crdt_op(&s2, &GSetOp::Add(3));
        let _ = s.add(9);
    }

    #[test]
    fn convergence() {
        check_two_replica_convergence::<GSet<u32>>(
            &[GSetOp::Add(1), GSetOp::Add(2)],
            &[GSetOp::Add(2), GSetOp::Add(3)],
            GSet::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let samples = vec![
            GSet::new(),
            GSet::from_iter([1u8]),
            GSet::from_iter([2u8]),
            GSet::from_iter([1u8, 2, 3]),
        ];
        check_all_laws(&samples);
    }

    #[test]
    fn delta_is_difference() {
        let a = GSet::from_iter([1u8, 2, 3]);
        let b = GSet::from_iter([2u8]);
        assert_eq!(a.delta(&b), GSet::from_iter([1u8, 3]));
    }

    #[test]
    fn size_metrics() {
        let model = SizeModel::compact();
        let s = GSet::from_iter(["abc".to_string(), "de".to_string()]);
        assert_eq!(s.count_elements(), 2);
        assert_eq!(s.size_bytes(&model), 5);
        assert_eq!(
            GSet::<String>::op_size_bytes(&GSetOp::Add("abcd".into()), &model),
            4
        );
    }
}
