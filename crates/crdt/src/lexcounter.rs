//! Lex-counter: the Cassandra-style counter built from lexicographic
//! pairs (paper, Appendix B).
//!
//! `LexCounter = I ↪ (ℕ ⋉ ℤ)`: each replica *owns* its entry (the
//! single-writer principle \[36\]) and updates it by bumping the version
//! chain and writing an arbitrary new payload — the typical use of `⋉`
//! "with a chain as first component" that keeps the lattice distributive
//! (Table III). The counter value is the sum of entry payloads.
//!
//! Unlike [`crate::PNCounter`], the payload is a plain integer that can
//! move in either direction — the version chain is what makes the update
//! an inflation.

use crdt_lattice::{Lex, MapLattice, Max, ReplicaId, SizeModel};

use crate::macros::delegate_lattice;
use crate::Crdt;

/// Per-replica entry: a version chain over a signed payload.
///
/// The payload is wrapped in `Max` purely to be a lattice; versions are
/// bumped on every write, so two states never hold the same version with
/// different payloads (single writer), making the `Max` tie-break inert.
type Entry = Lex<Max<u64>, Max<i64>>;

/// Operations on a [`LexCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LexCounterOp {
    /// Add `amount` (possibly negative) to the replica's entry.
    Add(ReplicaId, i64),
}

/// A counter where each replica owns a versioned slot (Cassandra 2.1
/// counter design).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LexCounter(MapLattice<ReplicaId, Entry>);

delegate_lattice!(LexCounter where []);

impl LexCounter {
    /// A fresh counter (`⊥`).
    pub fn new() -> Self {
        LexCounter(MapLattice::new())
    }

    /// Add `amount` on behalf of `replica`, returning the optimal delta.
    ///
    /// Must only be called by the owning replica (single-writer).
    #[must_use = "the returned delta must be buffered for synchronization"]
    pub fn add(&mut self, replica: ReplicaId, amount: i64) -> Self {
        LexCounter(self.0.mutate_entry(replica, |e| {
            use crdt_lattice::Lattice;
            let next = Lex::new(
                Max::new(e.version().value() + 1),
                Max::new(e.payload().value_i64() + amount),
            );
            e.join_assign(next);
            next
        }))
    }

    /// The counter value: sum of all entry payloads.
    pub fn total(&self) -> i64 {
        self.0.values().map(|e| e.payload().value_i64()).sum()
    }

    /// Number of map entries.
    pub fn entries(&self) -> usize {
        self.0.len()
    }
}

/// Payload accessor used by [`LexCounter`].
trait I64Payload {
    fn value_i64(&self) -> i64;
}

impl I64Payload for Max<i64> {
    fn value_i64(&self) -> i64 {
        *self.get()
    }
}

impl Crdt for LexCounter {
    type Op = LexCounterOp;
    type Value = i64;

    fn apply(&mut self, op: &Self::Op) -> Self {
        match *op {
            LexCounterOp::Add(r, amount) => self.add(r, amount),
        }
    }

    fn value(&self) -> i64 {
        self.total()
    }

    fn op_size_bytes(op: &Self::Op, model: &SizeModel) -> u64 {
        match op {
            LexCounterOp::Add(_, _) => model.id_bytes + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testing::{check_crdt_op, check_two_replica_convergence};
    use crdt_lattice::testing::check_all_laws;
    use crdt_lattice::{Bottom, Lattice, StateSize};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn adds_and_subtracts() {
        let mut c = LexCounter::new();
        let _ = c.add(A, 10);
        let _ = c.add(A, -4);
        let _ = c.add(B, 1);
        assert_eq!(c.total(), 7);
        assert_eq!(c.entries(), 2);
    }

    #[test]
    fn entry_delta_is_one_versioned_cell() {
        use crdt_lattice::Decompose;
        let mut c = LexCounter::new();
        let _ = c.add(A, 5);
        let d = c.add(A, 3);
        // One key, one lex irreducible.
        assert_eq!(d.irreducible_count(), 1);
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn single_writer_merge() {
        // B replicates A's entry; A keeps writing; joins converge.
        let mut a = LexCounter::new();
        let mut b = LexCounter::new();
        let d1 = a.add(A, 4);
        b.join_assign(d1);
        let d2 = a.add(A, -1);
        // Duplicate + reordered delivery.
        b.join_assign(d2.clone());
        b.join_assign(d2);
        assert_eq!(a, b);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn op_contract() {
        let mut c = LexCounter::new();
        let _ = c.add(A, 2);
        check_crdt_op(&c, &LexCounterOp::Add(A, 5));
        check_crdt_op(&c, &LexCounterOp::Add(B, -3));
    }

    #[test]
    fn convergence() {
        check_two_replica_convergence::<LexCounter>(
            &[LexCounterOp::Add(A, 3), LexCounterOp::Add(A, -1)],
            &[LexCounterOp::Add(B, 10)],
            LexCounter::new(),
        );
    }

    #[test]
    fn laws_hold_on_samples() {
        let mut c1 = LexCounter::new();
        let _ = c1.add(A, 1);
        let mut c2 = c1.clone();
        let _ = c2.add(A, -5);
        let mut c3 = LexCounter::new();
        let _ = c3.add(B, 2);
        let samples = vec![LexCounter::bottom(), c1, c2, c3];
        check_all_laws(&samples);
    }

    #[test]
    fn size_metrics() {
        let model = SizeModel::compact();
        let mut c = LexCounter::new();
        let _ = c.add(A, 2);
        // id + version u64 + payload i64.
        assert_eq!(c.size_bytes(&model), 8 + 8 + 8);
        assert_eq!(c.count_elements(), 1);
    }
}
