//! Flight-recorder integrity under concurrency, panic-dump semantics,
//! and exposition determinism — the contracts the rest of the
//! workspace leans on when it wires observability into hot paths.

use std::sync::{Arc, Mutex};

use crdt_obs::{recorder, register_counter, register_histogram, EventKind, FlightRecorder, Obs};

/// Concurrent writers never tear an event: every recorded event comes
/// back with its fields intact (we write `a == b`, so any interleaving
/// of field writes would show up as `a != b`), and retained sequence
/// numbers are unique.
#[test]
fn concurrent_writers_never_tear_events() {
    let rec = FlightRecorder::new(4, 256);
    let threads = 8;
    let per_thread = 2_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = rec.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let stamp = t * 1_000_000 + i;
                    rec.record(i, t, EventKind::ReactorSweep, stamp, stamp);
                }
            });
        }
    });
    assert_eq!(rec.recorded(), threads * per_thread);
    let snap = rec.snapshot();
    assert!(!snap.is_empty());
    for ev in &snap {
        assert_eq!(ev.a, ev.b, "torn event: {}", ev.render());
        assert_eq!(ev.a % 1_000_000, ev.tick, "payload decoupled from tick");
    }
    let mut seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
    let len = seqs.len();
    seqs.dedup();
    assert_eq!(seqs.len(), len, "duplicate sequence numbers in snapshot");
}

/// Wraparound under concurrency still retains only the newest events
/// per shard, and the merged snapshot stays seq-sorted.
#[test]
fn wraparound_retains_newest_and_sorts() {
    let rec = FlightRecorder::new(2, 8);
    for i in 0..1_000 {
        rec.record(i, 0, EventKind::Compaction, i, 0);
    }
    let snap = rec.snapshot();
    assert!(snap.len() <= 2 * 8);
    assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    // This thread writes one shard, so exactly `capacity` survive and
    // they are the newest ones.
    assert_eq!(snap.len(), 8);
    assert_eq!(snap.last().unwrap().seq, 999);
    assert_eq!(snap.first().unwrap().seq, 992);
}

/// An armed recorder dumps exactly once no matter how many panics the
/// process survives, and the dump names the subsystem of its events.
#[test]
fn panic_dump_fires_exactly_once() {
    let rec = FlightRecorder::new(1, 32);
    rec.record(7, 3, EventKind::ReactorStall, 1, 64);
    let captured: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&captured);
    recorder::set_panic_sink(Some(Box::new(move |text| {
        sink.lock().unwrap().push(text.to_string());
    })));
    rec.dump_on_panic("wedged-run");
    for _ in 0..2 {
        let _ = std::panic::catch_unwind(|| panic!("deliberate"));
    }
    recorder::set_panic_sink(None);
    let dumps = captured.lock().unwrap();
    assert_eq!(dumps.len(), 1, "dump must fire exactly once");
    assert!(rec.panic_dumped());
    assert!(dumps[0].contains("flight recorder dump: wedged-run"));
    assert!(
        dumps[0].contains("net.reactor reactor_stall"),
        "dump names the stalled subsystem: {}",
        dumps[0]
    );
}

/// The exposition is deterministic: same updates in any order, same
/// bytes out — sorted names, stable histogram bucket labels.
#[test]
fn exposition_is_deterministic() {
    let render = |order: &[usize]| {
        let obs = Obs::logical();
        let ops = register_counter!(&obs.registry, "engine.ops", "operations applied");
        let bytes = register_histogram!(&obs.registry, "net.frame.bytes", "per-frame wire size");
        for &i in order {
            ops.add(i as u64);
            bytes.observe((i * 100) as u64);
        }
        obs.registry.exposition()
    };
    let a = render(&[1, 2, 3, 4]);
    let b = render(&[4, 3, 2, 1]);
    assert_eq!(a, b, "update order must not leak into the exposition");
    assert_eq!(
        a,
        "engine.ops 10\n\
         net.frame.bytes.count 4\n\
         net.frame.bytes.sum 1000\n\
         net.frame.bytes.lt_2p07 1\n\
         net.frame.bytes.lt_2p08 1\n\
         net.frame.bytes.lt_2p09 2\n"
    );
}
