//! Steady-state observability is allocation-free: once cells are
//! registered and rings are built, counting, observing, and tracing
//! never touch the allocator. This is the "cheap enough to leave wired
//! into production paths" claim, pinned by `testkit-alloc`.
//!
//! One measuring test per binary — the counting allocator's counters
//! are process-global.

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

use crdt_obs::{register_counter, register_gauge, register_histogram, EventKind, Obs};

#[test]
fn steady_state_is_allocation_free() {
    assert!(testkit_alloc::is_installed());
    let obs = Obs::logical();
    let frames = register_counter!(&obs.registry, "engine.sync.frames", "frames produced");
    let objects = register_gauge!(&obs.registry, "store.objects", "live objects");
    let bytes = register_histogram!(&obs.registry, "net.frame.bytes", "frame sizes");

    // Warm up: spin the rings past wraparound and touch every cell so
    // lazy one-time costs (thread slot assignment) are paid up front.
    for i in 0..2_000u64 {
        obs.trace(0, EventKind::ReactorSweep, i, 0);
    }
    frames.inc();
    objects.set(1);
    bytes.observe(1);

    let ((), stats) = testkit_alloc::measure(|| {
        for i in 0..10_000u64 {
            frames.add(3);
            objects.set(i);
            bytes.observe(i);
            obs.trace(i % 5, EventKind::SyncRoundEnd, i, 3);
        }
    });
    assert_eq!(
        stats.allocations, 0,
        "steady-state metrics/tracing allocated: {stats:?}"
    );
}
