//! The flight recorder: fixed-capacity sharded rings of structured
//! trace events.
//!
//! Recording is a sequence-number fetch-add plus a push into a
//! preallocated ring guarded by a sharded mutex (shard picked by a
//! cached per-thread id, so unrelated threads rarely contend). Events
//! are `Copy` and the rings never grow past their construction-time
//! capacity — steady-state recording performs **zero allocations**,
//! pinned by the `alloc_steady` test.
//!
//! A recorder can be armed to dump automatically on panic
//! ([`FlightRecorder::dump_on_panic`]); the hook chains the previous
//! panic handler and fires at most once per recorder, so a wedged
//! parity or fuzz run leaves behind a trace naming the subsystem that
//! stalled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Default number of ring shards.
pub const DEFAULT_SHARDS: usize = 8;
/// Default per-shard event capacity.
pub const DEFAULT_CAPACITY: usize = 512;
/// Sentinel for the `node` field of events scoped to a whole cluster /
/// runner rather than one replica; rendered as `node=*`.
pub const CLUSTER_NODE: u64 = u64::MAX;

/// What happened. Payload meaning of the generic `a`/`b` fields is
/// per-kind, documented on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// An anti-entropy sync round started (`a` = round number).
    SyncRoundStart = 0,
    /// An anti-entropy sync round ended (`a` = round number,
    /// `b` = frames sent this round).
    SyncRoundEnd = 1,
    /// One hop of a Merkle repair descent (`a` = depth, `b` = bytes
    /// exchanged at this hop).
    RepairHop = 2,
    /// A reactor worker swept ready connections (`a` = connections
    /// with I/O progress).
    ReactorSweep = 3,
    /// A connection entered inbox-full stall (`a` = peer id).
    ReactorStall = 4,
    /// Queued frames were coalesced on a link (`a` = peer id,
    /// `b` = frames folded away).
    ReactorCoalesce = 5,
    /// A frame was dropped (`a` = peer id, `b` = 0 queue-full /
    /// 1 half-open / 2 oversize).
    ReactorDrop = 6,
    /// A node crashed (`a` = node id, `b` = 1 if durable storage
    /// survived).
    Crash = 7,
    /// A node restarted (`a` = node id, `b` = 1 if repaired from a
    /// peer on the way up).
    Restart = 8,
    /// A compaction pass ran (`a` = entries reclaimed).
    Compaction = 9,
    /// A partition was installed or healed (`a` = 1 install / 0 heal).
    Partition = 10,
}

impl EventKind {
    /// All kinds, in wire-tag order.
    pub const ALL: &'static [EventKind] = &[
        EventKind::SyncRoundStart,
        EventKind::SyncRoundEnd,
        EventKind::RepairHop,
        EventKind::ReactorSweep,
        EventKind::ReactorStall,
        EventKind::ReactorCoalesce,
        EventKind::ReactorDrop,
        EventKind::Crash,
        EventKind::Restart,
        EventKind::Compaction,
        EventKind::Partition,
    ];

    /// Stable wire discriminant.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EventKind::as_u8`]; `None` on unknown tags (wire
    /// decode must not panic).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// The dotted subsystem this event belongs to — what a dump names
    /// when diagnosing a stall.
    pub fn subsystem(self) -> &'static str {
        match self {
            EventKind::SyncRoundStart | EventKind::SyncRoundEnd => "engine.sync",
            EventKind::RepairHop => "repair.merkle",
            EventKind::ReactorSweep
            | EventKind::ReactorStall
            | EventKind::ReactorCoalesce
            | EventKind::ReactorDrop => "net.reactor",
            EventKind::Crash | EventKind::Restart | EventKind::Partition => "cluster.fault",
            EventKind::Compaction => "store.compact",
        }
    }

    /// Short human label for dumps.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SyncRoundStart => "sync_round_start",
            EventKind::SyncRoundEnd => "sync_round_end",
            EventKind::RepairHop => "repair_hop",
            EventKind::ReactorSweep => "reactor_sweep",
            EventKind::ReactorStall => "reactor_stall",
            EventKind::ReactorCoalesce => "reactor_coalesce",
            EventKind::ReactorDrop => "reactor_drop",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
            EventKind::Compaction => "compaction",
            EventKind::Partition => "partition",
        }
    }
}

/// One recorded event. `Copy`, 48 bytes — rings of these never touch
/// the allocator after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number: a total order across all shards and
    /// threads of one recorder (causality within the process).
    pub seq: u64,
    /// Clock ticks at record time (logical or monotonic per the
    /// bundle's [`crate::Clock`]).
    pub tick: u64,
    /// Node / replica the event belongs to.
    pub node: u64,
    /// What happened.
    pub kind: EventKind,
    /// First per-kind payload word (see [`EventKind`]).
    pub a: u64,
    /// Second per-kind payload word (see [`EventKind`]).
    pub b: u64,
}

impl TraceEvent {
    /// One dump line: `seq=12 tick=3 node=1 net.reactor reactor_stall a=2 b=0`.
    pub fn render(&self) -> String {
        let node: &dyn std::fmt::Display = if self.node == CLUSTER_NODE {
            &"*"
        } else {
            &self.node
        };
        format!(
            "seq={} tick={} node={node} {} {} a={} b={}",
            self.seq,
            self.tick,
            self.kind.subsystem(),
            self.kind.label(),
            self.a,
            self.b
        )
    }
}

struct Shard {
    ring: Mutex<VecDeque<TraceEvent>>,
}

struct Inner {
    shards: Vec<Shard>,
    capacity: usize,
    seq: AtomicU64,
    dumped: AtomicBool,
    label: Mutex<String>,
}

/// Fixed-capacity, sharded trace-event recorder. Cheap to clone
/// (shared handle).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shards", &self.inner.shards.len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_SHARDS, DEFAULT_CAPACITY)
    }
}

// Each thread caches which shard it writes to; assignment is a plain
// round-robin over a process-global counter, so concurrent writers
// spread out without hashing thread ids.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

impl FlightRecorder {
    /// A recorder with `shards` rings of `capacity` events each. Both
    /// are clamped to at least 1; all ring memory is allocated here.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                shards: (0..shards)
                    .map(|_| Shard {
                        ring: Mutex::new(VecDeque::with_capacity(capacity)),
                    })
                    .collect(),
                capacity,
                seq: AtomicU64::new(0),
                dumped: AtomicBool::new(false),
                label: Mutex::new(String::new()),
            }),
        }
    }

    /// Per-shard event capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Record one event. Zero allocations: a seq fetch-add, a shard
    /// lock, and a ring rotate.
    pub fn record(&self, tick: u64, node: u64, kind: EventKind, a: u64, b: u64) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            tick,
            node,
            kind,
            a,
            b,
        };
        let slot = THREAD_SLOT.with(|s| *s) % self.inner.shards.len();
        let mut ring = self.inner.shards[slot].ring.lock().unwrap();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Total events recorded since construction (including ones the
    /// rings have since evicted).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// All currently retained events, merged across shards and sorted
    /// by sequence number.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.extend(shard.ring.lock().unwrap().iter().copied());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// The newest `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let mut all = self.snapshot();
        let start = all.len().saturating_sub(n);
        all.split_off(start)
    }

    /// Render the retained events as a dump, one line per event.
    pub fn dump_string(&self) -> String {
        let mut out = String::new();
        for ev in self.snapshot() {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Arm this recorder to dump automatically (at most once) if the
    /// process panics. `label` names the run in the dump header.
    pub fn dump_on_panic(&self, label: &str) {
        *self.inner.label.lock().unwrap() = label.to_string();
        armed().lock().unwrap().push(Arc::downgrade(&self.inner));
        install_hook();
    }

    /// Has the panic dump already fired for this recorder?
    pub fn panic_dumped(&self) -> bool {
        self.inner.dumped.load(Ordering::Relaxed)
    }
}

type PanicSink = Box<dyn Fn(&str) + Send>;

fn armed() -> &'static Mutex<Vec<Weak<Inner>>> {
    static ARMED: OnceLock<Mutex<Vec<Weak<Inner>>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(Vec::new()))
}

fn sink() -> &'static Mutex<Option<PanicSink>> {
    static SINK: OnceLock<Mutex<Option<PanicSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirect panic dumps into `f` instead of stderr (tests capture the
/// dump this way). Pass-through is restored by setting `None`.
pub fn set_panic_sink(f: Option<PanicSink>) {
    *sink().lock().unwrap() = f;
}

fn install_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_armed();
            prev(info);
        }));
    });
}

/// Dump every armed recorder that has not dumped yet. Called from the
/// panic hook; callable directly by harnesses that fail without
/// panicking.
pub fn dump_armed() {
    let mut armed = armed().lock().unwrap();
    armed.retain(|weak| {
        let Some(inner) = weak.upgrade() else {
            return false; // recorder dropped — unarm
        };
        if inner.dumped.swap(true, Ordering::SeqCst) {
            return true; // already dumped once
        }
        let rec = FlightRecorder { inner };
        let label = rec.inner.label.lock().unwrap().clone();
        let mut text = format!("--- flight recorder dump: {label} ---\n");
        text.push_str(&rec.dump_string());
        match &*sink().lock().unwrap() {
            Some(f) => f(&text),
            None => eprint!("{text}"),
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_newest() {
        let rec = FlightRecorder::new(1, 4);
        for i in 0..10 {
            rec.record(i, 0, EventKind::ReactorSweep, i, 0);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest 4 survive, in seq order");
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn tail_returns_newest_first_ordered_oldest_to_newest() {
        let rec = FlightRecorder::new(2, 16);
        for i in 0..6 {
            rec.record(i, 1, EventKind::SyncRoundStart, i, 0);
        }
        let tail = rec.tail(3);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }

    #[test]
    fn kind_roundtrips_through_u8() {
        for &k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }
}
