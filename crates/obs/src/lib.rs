//! Unified observability plane for the delta-sync workspace.
//!
//! Three pieces, all zero-dependency and cheap enough to leave wired in
//! production paths:
//!
//! * [`Registry`] — a metrics registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and log2-bucketed [`Histogram`]s registered under
//!   stable dotted names (`net.reactor.stalls`,
//!   `repair.merkle.leaf_bytes`). Snapshots render as a deterministic,
//!   sorted text exposition so goldens and CI diffs are byte-stable.
//! * [`FlightRecorder`] — fixed-capacity sharded ring buffers of
//!   structured [`TraceEvent`]s with a global sequence number for
//!   causality. Dumped on demand, and automatically on panic so a
//!   wedged parity/fuzz run names the subsystem that stalled.
//! * [`Clock`] — pluggable time. Gated deterministic paths use
//!   [`LogicalClock`] ticks; artifact-only paths may use
//!   [`MonotonicClock`] (the only module exempt from the repo-lint
//!   `determinism` rule).
//!
//! The per-subsystem handle is [`Obs`]: a cheap-clone bundle of
//! registry + recorder + clock. Subsystems accept an `Option<Obs>` (or
//! pre-registered cells); the disabled path is a `None` check and costs
//! zero allocations — pinned by the `alloc_steady` test.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod recorder;
pub mod registry;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use recorder::{EventKind, FlightRecorder, TraceEvent, CLUSTER_NODE};
pub use registry::{Counter, Gauge, Histogram, Registry};

use std::sync::Arc;

/// Cheap-clone bundle of the three observability pieces for one node /
/// runner. Each in-process node owns its own `Obs` so a
/// `LoopbackCluster` of N nodes never mixes counters.
#[derive(Clone)]
pub struct Obs {
    /// Metric cells for this node.
    pub registry: Registry,
    /// Trace-event rings for this node.
    pub recorder: FlightRecorder,
    /// Tick source stamped into every trace event.
    pub clock: Arc<dyn Clock>,
}

impl Obs {
    /// An `Obs` on a [`LogicalClock`] — the right choice everywhere a
    /// number could land in a gated deterministic metric.
    pub fn logical() -> Self {
        Obs {
            registry: Registry::new(),
            recorder: FlightRecorder::new(recorder::DEFAULT_SHARDS, recorder::DEFAULT_CAPACITY),
            clock: Arc::new(LogicalClock::new()),
        }
    }

    /// An `Obs` on a [`MonotonicClock`] — artifact-only paths (bench
    /// bins, examples) where wall-clock timestamps aid debugging.
    pub fn monotonic() -> Self {
        Obs {
            registry: Registry::new(),
            recorder: FlightRecorder::new(recorder::DEFAULT_SHARDS, recorder::DEFAULT_CAPACITY),
            clock: Arc::new(MonotonicClock::new()),
        }
    }

    /// Record a trace event stamped with this bundle's clock.
    pub fn trace(&self, node: u64, kind: EventKind, a: u64, b: u64) {
        self.recorder.record(self.clock.ticks(), node, kind, a, b);
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").finish_non_exhaustive()
    }
}

/// Register a [`Counter`]. The third argument is a mandatory doc
/// string — enforced by the repo-lint `obs-doc` rule.
#[macro_export]
macro_rules! register_counter {
    ($reg:expr, $name:expr, $doc:expr $(,)?) => {
        $reg.counter($name, $doc)
    };
}

/// Register a [`Gauge`]. The third argument is a mandatory doc
/// string — enforced by the repo-lint `obs-doc` rule.
#[macro_export]
macro_rules! register_gauge {
    ($reg:expr, $name:expr, $doc:expr $(,)?) => {
        $reg.gauge($name, $doc)
    };
}

/// Register a [`Histogram`]. The third argument is a mandatory doc
/// string — enforced by the repo-lint `obs-doc` rule.
#[macro_export]
macro_rules! register_histogram {
    ($reg:expr, $name:expr, $doc:expr $(,)?) => {
        $reg.histogram($name, $doc)
    };
}
