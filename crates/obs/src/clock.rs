//! Pluggable tick sources for trace timestamps.
//!
//! This is the **only** module in the metrics-bearing crates allowed
//! to read a wall clock: the repo-lint `determinism` rule denies
//! `Instant`/`SystemTime` everywhere else under `crates/obs/src/`, and
//! every path that feeds a gated deterministic metric must construct
//! its `Obs` over [`LogicalClock`]. [`MonotonicClock`] exists for
//! artifact-only paths (bench bins, examples) where real elapsed time
//! aids debugging.

use std::sync::atomic::{AtomicU64, Ordering};
// lint: allow(determinism) — the one sanctioned wall-clock import; see module docs
use std::time::Instant;

/// A monotone tick source stamped into trace events.
pub trait Clock: Send + Sync {
    /// Current tick. Logical clocks count explicit advances; the
    /// monotonic clock reports microseconds since construction.
    fn ticks(&self) -> u64;

    /// Drive the clock to an absolute tick (a round counter, say).
    /// Logical clocks jump; real clocks ignore the hint — so subsystems
    /// can feed their round numbers without downcasting.
    fn advance_to(&self, _tick: u64) {}
}

/// Deterministic clock: ticks advance only when the owning subsystem
/// says so (e.g. once per sync round). Safe in gated metric paths.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        LogicalClock::default()
    }

    /// Advance by one tick, returning the new value.
    pub fn advance(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Jump to an absolute tick (used when an external round counter
    /// is the authority).
    pub fn set(&self, t: u64) {
        self.ticks.store(t, Ordering::Relaxed);
    }
}

impl Clock for LogicalClock {
    fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    fn advance_to(&self, tick: u64) {
        self.set(tick);
    }
}

/// Wall-clock ticks (microseconds since construction). Artifact-only:
/// never construct one in a path that feeds a gated metric.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn ticks(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_advances_only_on_demand() {
        let c = LogicalClock::new();
        assert_eq!(c.ticks(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        c.set(10);
        assert_eq!(c.ticks(), 10);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.ticks();
        let b = c.ticks();
        assert!(b >= a);
    }
}
