//! The metrics registry: named atomic cells with a deterministic text
//! exposition.
//!
//! Names are stable dotted paths (`net.reactor.stalls`,
//! `store.compact.reclaimed`) registered exactly once per registry;
//! re-registering the same name with the same kind returns the same
//! shared cell, so every subsystem can declare its cells where it uses
//! them without coordination. Registration takes the lock and
//! allocates; the hot path (bumping a cell) is a single relaxed atomic
//! op on an `Arc` the caller already holds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (`2^0 .. 2^63`).
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter detached from any registry (always-valid default so
    /// subsystems can hold cells unconditionally).
    pub fn detached() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge detached from any registry.
    pub fn detached() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n` (gauges may also accumulate, e.g. connection counts).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update with saturating_sub: never wraps below zero.
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log2-bucketed histogram: bucket 0 holds zero observations, bucket
/// `k ≥ 1` holds values in `[2^(k-1), 2^k)`.
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// A histogram detached from any registry.
    pub fn detached() -> Self {
        Histogram {
            cells: Arc::new(HistCells::new()),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (see type docs for the bucket boundaries).
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed))
    }
}

/// Bucket for value `v`: 0 for zero, else `floor(log2 v) + 1`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    doc: &'static str,
    metric: Metric,
}

/// A process- or node-scoped metrics registry. Cheap to clone (shared
/// handle); each `LoopbackCluster` node owns its own so counters never
/// mix between in-process nodes.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<&'static str, Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &'static str, doc: &'static str, fresh: Metric) -> Metric {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name).or_insert(Entry { doc, metric: fresh });
        entry.metric.clone()
    }

    /// Register (or look up) a counter under `name`. Prefer the
    /// [`crate::register_counter!`] macro, which the `obs-doc` lint
    /// checks for a doc string.
    pub fn counter(&self, name: &'static str, doc: &'static str) -> Counter {
        match self.register(name, doc, Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => unreachable_kind(name, "counter", other.kind()),
        }
    }

    /// Register (or look up) a gauge under `name`.
    pub fn gauge(&self, name: &'static str, doc: &'static str) -> Gauge {
        match self.register(name, doc, Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => unreachable_kind(name, "gauge", other.kind()),
        }
    }

    /// Register (or look up) a histogram under `name`.
    pub fn histogram(&self, name: &'static str, doc: &'static str) -> Histogram {
        match self.register(name, doc, Metric::Histogram(Histogram::detached())) {
            Metric::Histogram(h) => h,
            other => unreachable_kind(name, "histogram", other.kind()),
        }
    }

    /// All registered metric names, sorted. This is what the
    /// `ci/metric-names.txt` golden pins.
    pub fn names(&self) -> Vec<&'static str> {
        self.inner.lock().unwrap().keys().copied().collect()
    }

    /// The doc string a metric was registered with.
    pub fn doc(&self, name: &str) -> Option<&'static str> {
        self.inner.lock().unwrap().get(name).map(|e| e.doc)
    }

    /// Deterministic text exposition: one `name value` line per cell,
    /// sorted by name; histograms expand to `.count`, `.sum`, and one
    /// `.lt_2p<k>` line per non-empty bucket. Two registries holding
    /// the same values render byte-identical strings.
    pub fn exposition(&self) -> String {
        use std::fmt::Write as _;
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, entry) in map.iter() {
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "{name}.count {}", h.count());
                    let _ = writeln!(out, "{name}.sum {}", h.sum());
                    for (k, n) in h.buckets().iter().enumerate() {
                        if *n > 0 {
                            let _ = writeln!(out, "{name}.lt_2p{k:02} {n}");
                        }
                    }
                }
            }
        }
        out
    }
}

fn unreachable_kind(name: &str, wanted: &str, got: &str) -> ! {
    panic!("metric `{name}` already registered as a {got}, not a {wanted}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = crate::register_counter!(r, "x.y", "test cell");
        let b = crate::register_counter!(r, "x.y", "test cell");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name → same cell");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x.y", "d");
        let _ = r.gauge("x.y", "d");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let h = Histogram::detached();
        h.observe(0);
        h.observe(5);
        h.observe(7);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[3], 2, "5 and 7 land in [4,8)");
    }

    #[test]
    fn exposition_is_sorted_and_deterministic() {
        let build = || {
            let r = Registry::new();
            crate::register_counter!(r, "b.two", "second").add(7);
            crate::register_gauge!(r, "a.one", "first").set(3);
            crate::register_histogram!(r, "c.three", "third").observe(9);
            r.exposition()
        };
        let x = build();
        assert_eq!(x, build(), "same values → byte-identical exposition");
        assert_eq!(
            x,
            "a.one 3\nb.two 7\nc.three.count 1\nc.three.sum 9\nc.three.lt_2p04 1\n"
        );
    }

    #[test]
    fn names_are_sorted() {
        let r = Registry::new();
        let _ = r.counter("z", "d");
        let _ = r.counter("a", "d");
        assert_eq!(r.names(), vec!["a", "z"]);
        assert_eq!(r.doc("a"), Some("d"));
    }
}
