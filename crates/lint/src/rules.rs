//! The five repo-invariant rules plus the unsafe-header check, all
//! running over [`SourceFile`] token streams.
//!
//! | rule          | invariant                                                    |
//! |---------------|--------------------------------------------------------------|
//! | `panic`       | decode paths never `unwrap`/`expect`/`panic!`/index slices   |
//! | `capacity`    | decode-path preallocation is dominated by a length guard     |
//! | `lock-rank`   | reactor locks acquire in `core → links → link` order, inbox alone |
//! | `epoch`       | `&mut self` methods on tagged causal state reach a `StateTag` bump |
//! | `determinism` | deterministic-metric modules never read wall clocks          |
//! | `unsafe-header` | every crate root forbids `unsafe` (testkit/alloc: denies `unsafe_op_in_unsafe_fn`) |
//!
//! Violations are silenced only by the inline allowlist syntax
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory.

use crate::source::{FnInfo, SourceFile};
use std::collections::{HashMap, HashSet};

/// One diagnostic, printed as `path:line rule message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rel: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.rel, self.line, self.rule, self.msg)
    }
}

/// Rule scoping. In repo mode, each rule derives its scope from the
/// file path; `force` (self-test fixtures) puts every file in scope
/// for every rule so fixtures exercise the same code paths.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub force: bool,
}

// ---------------------------------------------------------------- scopes

/// Decode-path scope: `from_bytes` / `decode*` / `parse*` functions in
/// the codec-bearing crates, plus *every* function in the TCP framing
/// module (all of it faces hostile bytes).
fn decode_fn_in_scope(rel: &str, f: &FnInfo, scope: Scope) -> bool {
    let name_matches =
        f.name == "from_bytes" || f.name.starts_with("decode") || f.name.starts_with("parse");
    if scope.force {
        return name_matches || rel.contains("framing");
    }
    if rel == "crates/net/src/framing.rs" {
        return true;
    }
    let dir = rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/crdt/src/")
        || rel.starts_with("crates/lattice/src/");
    dir && name_matches
}

fn lock_rank_in_scope(rel: &str, scope: Scope) -> bool {
    scope.force || rel.starts_with("crates/net/src/")
}

/// Epoch scope: the flat causal state and its wrappers.
pub fn epoch_file_in_scope(rel: &str, scope: Scope) -> bool {
    scope.force
        || matches!(
            rel,
            "crates/crdt/src/flat.rs"
                | "crates/crdt/src/causal.rs"
                | "crates/crdt/src/dotstores.rs"
        )
}

/// Determinism scope: modules whose numbers land in gated deterministic
/// metrics. Runner/bench timing modules and the socket runtime are the
/// explicit allow-by-path complement — everything NOT listed here may
/// read clocks freely (their columns are artifact-only).
fn determinism_in_scope(rel: &str, scope: Scope) -> bool {
    if scope.force {
        return true;
    }
    // obs: registry and recorder values land in gated expositions; the
    // clock module is the single sanctioned wall-clock seam (its
    // `MonotonicClock` is only plugged into artifact paths).
    if rel.starts_with("crates/obs/src/") {
        return rel != "crates/obs/src/clock.rs";
    }
    const DENY_DIRS: &[&str] = &[
        "src/", // umbrella crate
        "crates/lattice/src/",
        "crates/crdt/src/",
        "crates/core/src/",
        "crates/store/src/",
        "crates/workloads/src/",
    ];
    const DENY_FILES: &[&str] = &[
        // sim: accounting + fault model are deterministic; the thread
        // runners (runner, dyn_runner, parallel, sharded*) time their
        // own wall-clock columns and are exempt.
        "crates/sim/src/lib.rs",
        "crates/sim/src/metrics.rs",
        "crates/sim/src/network.rs",
        "crates/sim/src/topology.rs",
        "crates/sim/src/scenario.rs",
        // bench: report plumbing + gated experiment rows; the
        // throughput harnesses (codec_bench, merge_throughput,
        // net_loopback, netload) are artifact-only timing modules.
        "crates/bench/src/lib.rs",
        "crates/bench/src/json.rs",
        "crates/bench/src/experiments.rs",
        "crates/bench/src/scenarios.rs",
        "crates/bench/src/repair_scaling.rs",
        "crates/bench/src/retwis_sharded.rs",
        // net: frame grammar and message codecs feed byte accounting;
        // node/reactor/cluster own real sockets and real clocks.
        "crates/net/src/framing.rs",
        "crates/net/src/message.rs",
    ];
    DENY_FILES.contains(&rel)
        || DENY_DIRS.iter().any(|d| {
            rel.starts_with(d)
                && !rel.starts_with("crates/sim/")
                && !rel.starts_with("crates/bench/")
                && !rel.starts_with("crates/net/")
        })
}

// ------------------------------------------------------------- rule: panic

const IDX_EXEMPT_PREV: &[&str] = &[
    "in", "as", "return", "break", "else", "match", "mut", "ref", "dyn", "where",
];

pub fn check_panic(f: &SourceFile, scope: Scope, out: &mut Vec<Diagnostic>) {
    for func in f.fns.iter().filter(|x| !x.is_test) {
        if !decode_fn_in_scope(&f.rel, func, scope) {
            continue;
        }
        let body = &f.toks[func.body.clone()];
        for (k, t) in body.iter().enumerate() {
            let prev = k.checked_sub(1).map(|p| &body[p]);
            let next = body.get(k + 1);
            let mut flag = |msg: String| {
                if !f.allowed("panic", t.line) {
                    out.push(Diagnostic {
                        rel: f.rel.clone(),
                        line: t.line,
                        rule: "panic",
                        msg,
                    });
                }
            };
            match t.text.as_str() {
                "unwrap" | "expect"
                    if prev.is_some_and(|p| p.is_punct('.'))
                        && next.is_some_and(|x| x.is_punct('(')) =>
                {
                    flag(format!(
                        "`{}()` in decode path `{}` — hostile input must surface CodecError, not panic",
                        t.text, func.name
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if next.is_some_and(|x| x.is_punct('!')) =>
                {
                    flag(format!(
                        "`{}!` in decode path `{}` — return an error for bad input",
                        t.text, func.name
                    ));
                }
                "[" if t.is_punct('[') => {
                    // Expression-position indexing: `x[`, `)[`, `][`.
                    // Type/slice-pattern positions (`&[u8]`, `= [0; 4]`,
                    // `#[attr]`) have non-value tokens before the `[`.
                    let indexing = match prev {
                        Some(p) if p.is_punct(')') || p.is_punct(']') => true,
                        Some(p)
                            if p.kind == crate::lexer::TokKind::Ident
                                && !IDX_EXEMPT_PREV.contains(&p.text.as_str()) =>
                        {
                            true
                        }
                        _ => false,
                    };
                    if indexing {
                        flag(format!(
                            "slice indexing in decode path `{}` — use get()/split_at checked forms",
                            func.name
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------- rule: capacity

pub fn check_capacity(f: &SourceFile, scope: Scope, out: &mut Vec<Diagnostic>) {
    for func in f.fns.iter().filter(|x| !x.is_test) {
        if !decode_fn_in_scope(&f.rel, func, scope) {
            continue;
        }
        let body = &f.toks[func.body.clone()];
        for k in 0..body.len() {
            let t = &body[k];
            if !(t.is_ident("with_capacity") || t.is_ident("reserve"))
                || !body.get(k + 1).is_some_and(|x| x.is_punct('('))
            {
                continue;
            }
            // Argument token span.
            let mut depth = 0i32;
            let mut j = k + 1;
            let arg_start = k + 2;
            while j < body.len() {
                if body[j].is_punct('(') {
                    depth += 1;
                } else if body[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let args = &body[arg_start..j.min(body.len())];
            let arg_idents: Vec<&str> = args
                .iter()
                .filter(|a| a.kind == crate::lexer::TokKind::Ident)
                .map(|a| a.text.as_str())
                .collect();
            // Intrinsically bounded arguments need no guard:
            // constants/literals, or an explicit `.min(…)` clamp.
            let const_bounded = arg_idents.iter().all(|s| {
                s.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            });
            let clamped = arg_idents.contains(&"min");
            if const_bounded || clamped {
                continue;
            }
            // Otherwise a dominating in-function guard must precede:
            // an `if` whose condition compares (`<`/`>`) something
            // involving `len` or one of the argument idents.
            let guarded = (0..k).any(|g| {
                if !body[g].is_ident("if") {
                    return false;
                }
                let mut cond_end = g + 1;
                while cond_end < k && !body[cond_end].is_punct('{') {
                    cond_end += 1;
                }
                let cond = &body[g + 1..cond_end];
                let has_cmp = cond.iter().any(|c| c.is_punct('<') || c.is_punct('>'));
                let mentions = cond.iter().any(|c| {
                    c.is_ident("len")
                        || (c.kind == crate::lexer::TokKind::Ident
                            && arg_idents.contains(&c.text.as_str()))
                });
                has_cmp && mentions
            });
            if !guarded && !f.allowed("capacity", t.line) {
                out.push(Diagnostic {
                    rel: f.rel.clone(),
                    line: t.line,
                    rule: "capacity",
                    msg: format!(
                        "`{}` in decode path `{}` not dominated by a length/cap guard — hostile counts must be rejected before preallocation",
                        t.text, func.name
                    ),
                });
            }
        }
    }
}

// --------------------------------------------------------- rule: lock-rank

/// Declared reactor lock ranks, keyed by the mutex field / binding
/// ident the acquisition reads. Mirrors `crdt_net::reactor::rank`.
fn lock_rank_of(recv: &str) -> Option<(u8, &'static str)> {
    match recv {
        "state" => Some((1, "core")),
        "links" => Some((2, "links")),
        "link" => Some((3, "link")),
        "inbox" => Some((4, "inbox")),
        _ => None,
    }
}

const INBOX_RANK: u8 = 4;

#[derive(Debug)]
enum Release {
    /// Temporary guard — dies at the end of the current statement.
    Stmt(i32),
    /// `let g = m.lock()…;` — dies when the enclosing block closes.
    Below(i32),
    /// `if let` / `while let` / `match` on a lock — the guard lives
    /// through the construct's block; dies when depth returns here.
    Return(i32),
}

pub fn check_lock_rank(f: &SourceFile, scope: Scope, out: &mut Vec<Diagnostic>) {
    if !lock_rank_in_scope(&f.rel, scope) {
        return;
    }
    for func in f.fns.iter().filter(|x| !x.is_test) {
        let body = &f.toks[func.body.clone()];
        let mut live: Vec<(u8, &'static str, Option<String>, Release)> = Vec::new();
        let mut depth = 0i32;
        // Index of the first token of the current statement.
        let mut stmt_start = 0usize;
        for k in 0..body.len() {
            let t = &body[k];
            if t.is_punct('{') {
                depth += 1;
                stmt_start = k + 1;
                continue;
            }
            if t.is_punct('}') {
                depth -= 1;
                live.retain(|(_, _, _, rel)| match *rel {
                    Release::Below(d) => depth >= d,
                    Release::Return(d) => depth > d,
                    Release::Stmt(d) => depth >= d,
                });
                stmt_start = k + 1;
                continue;
            }
            if t.is_punct(';') {
                live.retain(|(_, _, _, rel)| !matches!(*rel, Release::Stmt(d) if depth <= d));
                stmt_start = k + 1;
                continue;
            }
            // drop(name) releases a bound guard early.
            if t.is_ident("drop")
                && body.get(k + 1).is_some_and(|x| x.is_punct('('))
                && body.get(k + 3).is_some_and(|x| x.is_punct(')'))
            {
                if let Some(name) = body.get(k + 2) {
                    if let Some(pos) = live
                        .iter()
                        .rposition(|(_, _, n, _)| n.as_deref() == Some(name.text.as_str()))
                    {
                        live.remove(pos);
                    }
                }
                continue;
            }
            // m.lock()
            if !(t.is_ident("lock")
                && k >= 2
                && body[k - 1].is_punct('.')
                && body.get(k + 1).is_some_and(|x| x.is_punct('(')))
            {
                continue;
            }
            let recv = &body[k - 2];
            let Some((rank, label)) = lock_rank_of(&recv.text) else {
                continue;
            };
            // Ordering check against everything currently held.
            for (held_rank, held_label, _, _) in &live {
                let violation =
                    *held_rank >= rank || rank == INBOX_RANK || *held_rank == INBOX_RANK;
                if violation && !f.allowed("lock-rank", t.line) {
                    out.push(Diagnostic {
                        rel: f.rel.clone(),
                        line: t.line,
                        rule: "lock-rank",
                        msg: format!(
                            "`{}` acquires {label}(rank {rank}) while holding {held_label}(rank {held_rank}); order is core → links → link, inbox alone",
                            func.name
                        ),
                    });
                    break;
                }
            }
            // Bound or temporary? Skip `.unwrap()` / `.expect(…)`
            // continuations; a further `.` means the guard is a
            // statement temporary.
            let mut j = k + 2; // past `lock` `(`; lock() takes no args
            if body.get(j).is_some_and(|x| x.is_punct(')')) {
                j += 1;
            }
            loop {
                let chained = body.get(j).is_some_and(|x| x.is_punct('.'))
                    && body
                        .get(j + 1)
                        .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"));
                if !chained {
                    break;
                }
                j += 2; // `.` + ident
                if body.get(j).is_some_and(|x| x.is_punct('(')) {
                    let mut d = 0i32;
                    while j < body.len() {
                        if body[j].is_punct('(') {
                            d += 1;
                        } else if body[j].is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
            let chain_continues = body
                .get(j)
                .is_some_and(|x| x.is_punct('.') || x.is_punct('?'));
            let stmt = &body[stmt_start..k.min(body.len())];
            let release = if chain_continues {
                Release::Stmt(depth)
            } else if stmt.first().is_some_and(|s| s.is_ident("let")) {
                Release::Below(depth)
            } else if stmt
                .first()
                .is_some_and(|s| s.is_ident("if") || s.is_ident("while") || s.is_ident("match"))
            {
                Release::Return(depth)
            } else {
                Release::Stmt(depth)
            };
            // Binding name: `let [mut] NAME = …` or `… let [mut] NAME = …`
            let name = stmt
                .iter()
                .position(|s| s.is_ident("let"))
                .and_then(|li| {
                    let mut ni = li + 1;
                    while stmt.get(ni).is_some_and(|s| s.is_ident("mut")) {
                        ni += 1;
                    }
                    stmt.get(ni).filter(|s| {
                        s.kind == crate::lexer::TokKind::Ident
                            && stmt
                                .get(ni + 1)
                                .is_some_and(|e| e.is_punct('=') || e.is_punct(':'))
                    })
                })
                .map(|s| s.text.clone());
            live.push((rank, label, name, release));
        }
    }
}

// ------------------------------------------------------------- rule: epoch

/// Epoch-invalidation completeness, run over the scoped file *group*
/// (the flat causal state is split across flat.rs / causal.rs /
/// dotstores.rs; struct definitions and delegation cross those files).
///
/// Checked types: structs carrying a `StateTag` field, structs wrapping
/// one (transitively, e.g. `AWSet(DotStore<E>)`), and the component
/// structs a tagged struct is built from (e.g. `CausalContext`,
/// `DotRuns` — these own no tag, so every mutator must carry an
/// explicit allowlist note naming who bumps for them).
pub fn check_epoch(files: &[&SourceFile], out: &mut Vec<Diagnostic>) {
    // 1. Struct graph → checked set.
    let mut fields: HashMap<&str, &Vec<String>> = HashMap::new();
    for f in files {
        for s in &f.structs {
            fields.insert(s.name.as_str(), &s.field_idents);
        }
    }
    let mut tagged: HashSet<&str> = HashSet::new();
    // direct + wrappers (fixpoint)
    loop {
        let mut grew = false;
        for (name, fi) in &fields {
            if tagged.contains(name) {
                continue;
            }
            if fi
                .iter()
                .any(|t| t == "StateTag" || tagged.contains(t.as_str()))
            {
                tagged.insert(name);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    // components of directly-tagged structs (one hop + fixpoint down)
    let mut checked: HashSet<&str> = tagged.clone();
    loop {
        let mut grew = false;
        for name in checked.clone() {
            // Only descend through structs that actually carry the tag
            // (wrappers' generic params would drag in the primitive
            // stores, which own no epoch obligations).
            let direct_tag = fields
                .get(name)
                .is_some_and(|fi| fi.iter().any(|t| t == "StateTag"));
            let component_of_component = !tagged.contains(name);
            if !(direct_tag || component_of_component) {
                continue;
            }
            if let Some(fi) = fields.get(name) {
                for t in fi.iter() {
                    if t != "StateTag"
                        && fields.contains_key(t.as_str())
                        && !checked.contains(t.as_str())
                    {
                        // re-borrow via the map to get 'static-enough str
                        let key = *fields.get_key_value(t.as_str()).unwrap().0;
                        checked.insert(key);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    if checked.is_empty() {
        return;
    }

    // 2. Bumping-function fixpoint across the group, by name.
    let mut bumping: HashSet<String> = HashSet::new();
    let mut calls: Vec<(String, HashSet<String>, &FnInfo, &SourceFile)> = Vec::new();
    for f in files {
        for func in &f.fns {
            let body = &f.toks[func.body.clone()];
            let direct = body
                .iter()
                .any(|t| t.is_ident("note_mutation") || t.is_ident("fresh_epoch"))
                || (body.iter().any(|t| t.is_ident("StateTag"))
                    && body.iter().any(|t| t.is_ident("fresh")));
            let mut callees = HashSet::new();
            for k in 0..body.len() {
                if body[k].kind == crate::lexer::TokKind::Ident
                    && body.get(k + 1).is_some_and(|x| x.is_punct('('))
                {
                    callees.insert(body[k].text.clone());
                }
            }
            if direct {
                bumping.insert(func.name.clone());
            }
            calls.push((func.name.clone(), callees, func, f));
        }
    }
    loop {
        let mut grew = false;
        for (name, callees, _, _) in &calls {
            if !bumping.contains(name) && callees.iter().any(|c| bumping.contains(c)) {
                bumping.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // 3. Verdicts.
    for (name, _, func, f) in &calls {
        if func.is_test || !func.mut_self {
            continue;
        }
        let Some(ty) = func.impl_type.as_deref() else {
            continue;
        };
        if !checked.contains(ty) {
            continue;
        }
        if !(func.is_pub || func.in_trait_impl) {
            continue;
        }
        if bumping.contains(name) {
            continue;
        }
        if f.allowed_at_decl("epoch", func.decl_line) {
            continue;
        }
        out.push(Diagnostic {
            rel: f.rel.clone(),
            line: func.decl_line,
            rule: "epoch",
            msg: format!(
                "`{ty}::{name}` takes `&mut self` but never reaches a StateTag bump — cached wire frames go stale"
            ),
        });
    }
}

// ------------------------------------------------------- rule: determinism

pub fn check_determinism(f: &SourceFile, scope: Scope, out: &mut Vec<Diagnostic>) {
    if !determinism_in_scope(&f.rel, scope) {
        return;
    }
    for (k, t) in f.toks.iter().enumerate() {
        if f.in_test_range(k) {
            continue;
        }
        let clock = t.is_ident("Instant")
            || t.is_ident("SystemTime")
            || (t.is_ident("time") && k >= 2 && f.toks[k - 1].is_punct(':') && {
                // `std :: time`
                f.toks[k - 2].is_punct(':') && k >= 3 && f.toks[k - 3].is_ident("std")
            });
        if clock && !f.allowed("determinism", t.line) {
            out.push(Diagnostic {
                rel: f.rel.clone(),
                line: t.line,
                rule: "determinism",
                msg: format!(
                    "`{}` in a deterministic-metrics module — wall clocks belong in artifact-only timing modules",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------- rule: obs-doc

/// Every metric-registration macro site must pass literal strings for
/// both the dotted name and the doc — `register_counter!(reg, "a.b",
/// "what it counts")`. A computed name breaks the golden-name CI gate
/// and an absent doc leaves the exposition unexplained, so both are
/// structural errors here, not style.
pub fn check_obs_doc(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const MACROS: &[&str] = &["register_counter", "register_gauge", "register_histogram"];
    for (k, t) in f.toks.iter().enumerate() {
        if !MACROS.iter().any(|m| t.is_ident(m)) {
            continue;
        }
        // An invocation is `ident ! (`; `macro_rules!` definitions are
        // `ident ! {` and don't match.
        let (Some(bang), Some(open)) = (f.toks.get(k + 1), f.toks.get(k + 2)) else {
            continue;
        };
        if !bang.is_punct('!') || !open.is_punct('(') {
            continue;
        }
        let mut depth = 1usize;
        let mut strings = 0usize;
        let mut j = k + 3;
        while j < f.toks.len() && depth > 0 {
            let u = &f.toks[j];
            if u.is_punct('(') {
                depth += 1;
            } else if u.is_punct(')') {
                depth -= 1;
            } else if u.kind == crate::lexer::TokKind::Literal && u.text.starts_with('"') {
                strings += 1;
            }
            j += 1;
        }
        if strings < 2 && !f.allowed("obs-doc", t.line) {
            out.push(Diagnostic {
                rel: f.rel.clone(),
                line: t.line,
                rule: "obs-doc",
                msg: format!(
                    "`{}!` needs a literal metric name and a literal doc string — every registration site documents its metric",
                    t.text
                ),
            });
        }
    }
}

// ------------------------------------------------------ rule: unsafe-header

/// Crate-root header policy, applied by the driver to each lib/bin
/// root it discovers; plus a stray-`unsafe` scan over every file.
pub fn check_unsafe_header(f: &SourceFile, is_crate_root: bool, out: &mut Vec<Diagnostic>) {
    let is_alloc_shim = f.rel.starts_with("crates/testkit/alloc/");
    if is_crate_root {
        let has_forbid = f.toks.windows(6).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].is_ident("forbid")
                && w[4].is_punct('(')
                && w[5].is_ident("unsafe_code")
        });
        let has_deny_unsafe_op = f.toks.iter().any(|t| t.is_ident("unsafe_op_in_unsafe_fn"));
        if is_alloc_shim {
            if !has_deny_unsafe_op {
                out.push(Diagnostic {
                    rel: f.rel.clone(),
                    line: 1,
                    rule: "unsafe-header",
                    msg: "testkit/alloc must declare #![deny(unsafe_op_in_unsafe_fn)] over its audited unsafe sites".into(),
                });
            }
        } else if !has_forbid {
            out.push(Diagnostic {
                rel: f.rel.clone(),
                line: 1,
                rule: "unsafe-header",
                msg: "crate root missing #![forbid(unsafe_code)]".into(),
            });
        }
    }
    if !is_alloc_shim {
        for t in f.toks.iter().filter(|t| t.is_ident("unsafe")) {
            out.push(Diagnostic {
                rel: f.rel.clone(),
                line: t.line,
                rule: "unsafe-header",
                msg: "`unsafe` outside testkit/alloc — the workspace is forbid(unsafe_code)".into(),
            });
        }
    }
}

// ----------------------------------------------------------------- driver

/// Run every per-file rule on one file.
pub fn check_file(f: &SourceFile, scope: Scope, is_crate_root: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_panic(f, scope, &mut out);
    check_capacity(f, scope, &mut out);
    check_lock_rank(f, scope, &mut out);
    check_determinism(f, scope, &mut out);
    check_obs_doc(f, &mut out);
    check_unsafe_header(f, is_crate_root, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn sf(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), src)
    }
    const FORCE: Scope = Scope { force: true };
    const REPO: Scope = Scope { force: false };

    #[test]
    fn panic_rule_flags_and_allows() {
        let f = sf(
            "crates/core/src/x.rs",
            "fn decode(input: &mut &[u8]) -> R {\n  let a = input[0];\n  let b = x.unwrap();\n  let c = y.expect(\"m\"); // lint: allow(panic) — provably present\n  panic!(\"boom\");\n}\nfn helper(v: &V) { v.unwrap(); }\n",
        );
        let mut out = Vec::new();
        check_panic(&f, REPO, &mut out);
        let lines: Vec<u32> = out.iter().map(|d| d.line).collect();
        assert_eq!(
            lines,
            vec![2, 3, 5],
            "index, unwrap, panic!; expect allowed; helper out of scope"
        );
    }

    #[test]
    fn panic_rule_ignores_tests_and_types() {
        let f = sf(
            "crates/crdt/src/x.rs",
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn decode_roundtrip() { x.unwrap(); }\n}\nfn decode(input: &[u8]) -> &[u8] { &input[..4] }\n",
        );
        let mut out = Vec::new();
        check_panic(&f, REPO, &mut out);
        assert_eq!(
            out.len(),
            1,
            "only the live range-index; test unwrap exempt"
        );
        assert_eq!(out[0].line, 6);
    }

    #[test]
    fn capacity_rule_guard_forms() {
        let good = sf(
            "crates/core/src/x.rs",
            "fn decode(input: &mut &[u8]) -> R {\n  let len = usize::decode(input)?;\n  if len > input.len() { return Err(E); }\n  let mut v = Vec::with_capacity(len);\n}\n",
        );
        let mut out = Vec::new();
        check_capacity(&good, REPO, &mut out);
        assert!(out.is_empty(), "guarded preallocation passes: {out:?}");

        let clamp = sf(
            "crates/core/src/x.rs",
            "fn decode(input: &mut &[u8]) -> R { let mut v = Vec::with_capacity(n.min(MAX_FRAME)); }",
        );
        out.clear();
        check_capacity(&clamp, REPO, &mut out);
        assert!(out.is_empty(), "min-clamped passes");

        let constant = sf(
            "crates/core/src/x.rs",
            "fn decode(input: &mut &[u8]) -> R { let mut v = Vec::with_capacity(16); v.reserve(HEADER_MAX); }",
        );
        out.clear();
        check_capacity(&constant, REPO, &mut out);
        assert!(out.is_empty(), "const-bounded passes");

        let bad = sf(
            "crates/core/src/x.rs",
            "fn decode(input: &mut &[u8]) -> R {\n  let len = usize::decode(input)?;\n  let mut v = Vec::with_capacity(len);\n}\n",
        );
        out.clear();
        check_capacity(&bad, REPO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn lock_rank_legal_sequences_pass() {
        let f = sf(
            "crates/net/src/node.rs",
            r#"
fn sync_step(inner: &Inner) {
    let neighbors: Vec<ReplicaId> = inner.links.lock().unwrap().keys().copied().collect();
    let mut core = inner.state.lock().unwrap();
    for to in neighbors {
        let l = { inner.links.lock().unwrap().get(&to).cloned() };
        if let Some(l) = l {
            let mut link = link.lock().unwrap();
            link.push(1);
        }
    }
}
fn drain(inner: &Inner) {
    let mut inbox = inner.inbox.lock().unwrap();
    let msgs = inbox.take();
    drop(inbox);
    let mut core = inner.state.lock().unwrap();
    core.apply(msgs);
}
"#,
        );
        let mut out = Vec::new();
        check_lock_rank(&f, REPO, &mut out);
        assert!(out.is_empty(), "legal order flagged: {out:?}");
    }

    #[test]
    fn lock_rank_inversions_flagged() {
        let f = sf(
            "crates/net/src/node.rs",
            r#"
fn bad_inversion(inner: &Inner) {
    let mut link = link.lock().unwrap();
    let mut core = inner.state.lock().unwrap();
}
fn bad_inbox_not_alone(inner: &Inner) {
    let mut core = inner.state.lock().unwrap();
    let mut inbox = inner.inbox.lock().unwrap();
}
fn temp_released_ok(inner: &Inner) {
    let n = inner.links.lock().unwrap().len();
    let mut core = inner.state.lock().unwrap();
}
"#,
        );
        let mut out = Vec::new();
        check_lock_rank(&f, REPO, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0]
            .msg
            .contains("core(rank 1) while holding link(rank 3)"));
        assert!(out[1].msg.contains("inbox"));
    }

    #[test]
    fn epoch_rule_tagged_and_wrapper() {
        let f = sf(
            "crates/crdt/src/causal.rs",
            r#"
pub struct StateTag { e: u64 }
pub struct DotStore<V> { store: Vec<V>, tag: StateTag }
pub struct AWSet<E>(DotStore<E>);
impl<V> DotStore<V> {
    pub fn mutate(&mut self) { self.tag.note_mutation(); }
    pub fn silent_clear(&mut self) { self.store.clear(); }
}
impl<E> AWSet<E> {
    pub fn add(&mut self, e: E) { self.0.mutate(); }
    // lint: allow(epoch) — read-only rebuild, frames unaffected
    pub fn shrink(&mut self) { self.0.store.shrink_to_fit(); }
}
"#,
        );
        let mut out = Vec::new();
        check_epoch(&[&f], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("silent_clear"));
    }

    #[test]
    fn determinism_rule_scoping() {
        let denied = sf(
            "crates/core/src/state.rs",
            "fn t() { let s = Instant::now(); }",
        );
        let mut out = Vec::new();
        check_determinism(&denied, REPO, &mut out);
        assert_eq!(out.len(), 1);

        let exempt = sf(
            "crates/sim/src/runner.rs",
            "fn t() { let s = Instant::now(); }",
        );
        out.clear();
        check_determinism(&exempt, REPO, &mut out);
        assert!(out.is_empty(), "runner timing is artifact-only");

        let forced = sf("fixtures/bad/determinism.rs", "fn t() { std::time::x(); }");
        out.clear();
        check_determinism(&forced, FORCE, &mut out);
        assert_eq!(out.len(), 1, "std::time path form, forced scope");
    }

    #[test]
    fn unsafe_header_policy() {
        let missing = sf("crates/core/src/lib.rs", "#![warn(missing_docs)]\n");
        let mut out = Vec::new();
        check_unsafe_header(&missing, true, &mut out);
        assert_eq!(out.len(), 1);

        let ok = sf(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n",
        );
        out.clear();
        check_unsafe_header(&ok, true, &mut out);
        assert!(out.is_empty());

        let alloc = sf(
            "crates/testkit/alloc/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\nunsafe fn x() {}\n",
        );
        out.clear();
        check_unsafe_header(&alloc, true, &mut out);
        assert!(out.is_empty(), "alloc shim keeps audited unsafe");

        let stray = sf("crates/core/src/x.rs", "fn f() { unsafe { g() } }");
        out.clear();
        check_unsafe_header(&stray, false, &mut out);
        assert_eq!(out.len(), 1, "stray unsafe outside the shim");
    }
}
