//! Structural view of one source file: the token stream plus just
//! enough shape — function bodies, struct fields, impl context,
//! `#[cfg(test)]` regions, allowlist comments — for the rules to work
//! on. This is a single forward pass over tokens with a scope stack,
//! not a parser; it is deliberately tolerant of anything it does not
//! recognize.

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::ops::Range;

/// One `fn` item with its body token range and enough context to scope
/// rules: receiver shape, visibility, enclosing impl, testness.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Line of the `fn` keyword.
    pub decl_line: u32,
    /// Token indices of the body, *excluding* the outer braces.
    pub body: Range<usize>,
    /// Takes `&mut self`.
    pub mut_self: bool,
    /// `pub` or `pub(crate)`.
    pub is_pub: bool,
    /// Name of the `impl` self-type this fn sits in, if any.
    pub impl_type: Option<String>,
    /// The impl is `impl Trait for Type` (trait methods are public API
    /// regardless of the missing `pub`).
    pub in_trait_impl: bool,
    /// Under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

/// A struct definition and the type idents its fields mention.
#[derive(Debug)]
pub struct StructInfo {
    pub name: String,
    pub field_idents: Vec<String>,
}

/// An inline allowlist annotation: `// lint: allow(<rule>) — <reason>`.
#[derive(Debug)]
pub struct Allow {
    pub rule: String,
    pub line: u32,
    pub has_reason: bool,
    /// Shares its line with code (trailing form): covers only that
    /// line. Own-line comments cover the line below as well.
    pub trailing: bool,
}

/// A lexed + structurally indexed source file.
pub struct SourceFile {
    /// Path relative to the lint root, for diagnostics.
    pub rel: String,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnInfo>,
    pub structs: Vec<StructInfo>,
    pub allows: Vec<Allow>,
    /// Token-index ranges under `#[cfg(test)] mod … { … }`.
    test_ranges: Vec<Range<usize>>,
}

impl SourceFile {
    pub fn parse(rel: String, src: &str) -> SourceFile {
        let (toks, comments) = lex(src);
        let code_lines: std::collections::HashSet<u32> = toks.iter().map(|t| t.line).collect();
        let allows = parse_allows(&comments, &code_lines);
        let mut f = SourceFile {
            rel,
            toks,
            fns: Vec::new(),
            structs: Vec::new(),
            allows,
            test_ranges: Vec::new(),
        };
        f.index();
        f
    }

    /// Is this token index inside `#[cfg(test)]` code?
    pub fn in_test_range(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&idx))
    }

    /// Is `rule` allowlisted for a diagnostic on `line`? Accepts the
    /// annotation on the same line (trailing comment) or on the line
    /// directly above. Annotations without a reason do not count — the
    /// syntax demands `// lint: allow(rule) — <why>`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && a.has_reason
                && (a.line == line || (!a.trailing && a.line + 1 == line))
        })
    }

    /// Allowlist annotations for `rule` that sit on no diagnostic —
    /// used by rules that attach allows to declarations (epoch).
    pub fn allowed_at_decl(&self, rule: &str, decl_line: u32) -> bool {
        // A fn-level allow may sit up to 2 lines above the `fn` line
        // (above the doc-comment-free attribute block) or on it.
        self.allows.iter().any(|a| {
            a.rule == rule && a.has_reason && (a.line <= decl_line && decl_line - a.line <= 2)
        })
    }

    /// Single forward pass building fns / structs / test ranges.
    fn index(&mut self) {
        #[derive(Debug)]
        enum Scope {
            Brace,
            TestMod,
            Impl { ty: String, is_trait: bool },
            Fn { fn_idx: usize, body_start: usize },
        }
        let toks = &self.toks;
        let n = toks.len();
        let mut scopes: Vec<Scope> = Vec::new();
        // Set when an item header (impl/mod/fn) has been parsed and the
        // next `{` opens its scope.
        let mut pending: Option<Scope> = None;
        let mut pending_attr_test = false;
        let mut i = 0usize;

        // Skip a generics list if `toks[i]` is `<`; returns index after `>`.
        let skip_generics = |toks: &[Tok], mut i: usize| -> usize {
            if i < toks.len() && toks[i].is_punct('<') {
                let mut depth = 0i32;
                while i < toks.len() {
                    if toks[i].is_punct('<') {
                        depth += 1;
                    } else if toks[i].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                    i += 1;
                }
            }
            i
        };

        while i < n {
            let t = &toks[i];
            match t.kind {
                TokKind::Punct if t.text == "#" => {
                    // Attribute: #[...] or #![...]. Record whether it
                    // mentions `test` (covers #[test] and #[cfg(test)]).
                    let mut j = i + 1;
                    if j < n && toks[j].is_punct('!') {
                        j += 1;
                    }
                    if j < n && toks[j].is_punct('[') {
                        let mut depth = 0i32;
                        let start = j;
                        while j < n {
                            if toks[j].is_punct('[') {
                                depth += 1;
                            } else if toks[j].is_punct(']') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                        // `#[test]` or `#[cfg(test)]` — but NOT
                        // `#[cfg(not(test))]`: `test` must be the whole
                        // attr or sit alone inside `cfg(…)`.
                        let span = &toks[start..=j.min(n - 1)];
                        let bare_test = span.len() >= 2 && span[1].is_ident("test");
                        let cfg_test = span.windows(3).any(|w| {
                            w[0].is_punct('(') && w[1].is_ident("test") && w[2].is_punct(')')
                        }) && span.get(1).is_some_and(|t| t.is_ident("cfg"));
                        if bare_test || cfg_test {
                            pending_attr_test = true;
                        }
                        i = j + 1;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                TokKind::Ident if t.text == "impl" => {
                    // impl<G> Type {   |   impl<G> Trait for Type<G> {
                    let mut j = skip_generics(toks, i + 1);
                    // Walk the header up to `{`; note the last path-head
                    // ident seen right after `for`, falling back to the
                    // first ident of the header.
                    let mut first_ident: Option<String> = None;
                    let mut after_for: Option<String> = None;
                    let mut saw_for = false;
                    let mut angle = 0i32;
                    while j < n {
                        let h = &toks[j];
                        if h.is_punct('<') {
                            angle += 1;
                        } else if h.is_punct('>') {
                            angle -= 1;
                        } else if angle == 0 && h.is_punct('{') {
                            break;
                        } else if angle == 0 && h.is_punct(';') {
                            break; // `impl Trait for Type;` — not ours
                        } else if angle == 0 && h.kind == TokKind::Ident {
                            if h.text == "for" {
                                saw_for = true;
                                after_for = None;
                            } else if h.text == "where" {
                                // where-clause idents are noise
                                first_ident.get_or_insert_with(String::new);
                            } else if saw_for && after_for.is_none() {
                                after_for = Some(h.text.clone());
                            } else if first_ident.is_none() {
                                first_ident = Some(h.text.clone());
                            }
                        }
                        j += 1;
                    }
                    let ty = after_for.clone().or(first_ident).unwrap_or_default();
                    if j < n && toks[j].is_punct('{') {
                        pending = Some(Scope::Impl {
                            ty,
                            is_trait: saw_for,
                        });
                    }
                    pending_attr_test = false;
                    i = j; // the `{` (or `;`) is processed next
                    continue;
                }
                TokKind::Ident if t.text == "mod" => {
                    let is_test = pending_attr_test;
                    pending_attr_test = false;
                    // `mod name;` (out-of-line) has no scope.
                    let mut j = i + 1;
                    while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    if j < n && toks[j].is_punct('{') {
                        pending = Some(if is_test {
                            Scope::TestMod
                        } else {
                            Scope::Brace
                        });
                    }
                    i = j;
                    continue;
                }
                TokKind::Ident if t.text == "struct" => {
                    pending_attr_test = false;
                    if let Some((info, next)) = parse_struct(toks, i) {
                        self.structs.push(info);
                        i = next;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                TokKind::Ident if t.text == "fn" => {
                    // Function-pointer type `fn(` has no name ident.
                    let name_idx = i + 1;
                    if name_idx >= n || toks[name_idx].kind != TokKind::Ident {
                        pending_attr_test = false;
                        i += 1;
                        continue;
                    }
                    let name = toks[name_idx].text.clone();
                    let decl_line = t.line;
                    let mut j = skip_generics(toks, name_idx + 1);
                    // Receiver: look inside the parameter parens.
                    let mut mut_self = false;
                    if j < n && toks[j].is_punct('(') {
                        let mut depth = 0i32;
                        let params_start = j;
                        while j < n {
                            if toks[j].is_punct('(') {
                                depth += 1;
                            } else if toks[j].is_punct(')') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                        let head: Vec<&Tok> =
                            toks[params_start + 1..j.min(n)].iter().take(4).collect();
                        // `&mut self` (optionally `&'a mut self`)
                        mut_self = head
                            .windows(2)
                            .any(|w| w[0].is_ident("mut") && w[1].is_ident("self"))
                            && head.first().is_some_and(|t| t.is_punct('&'));
                        j += 1;
                    }
                    // Find the body `{`, bailing on `;` (trait sig).
                    let mut body_open = None;
                    let mut angle = 0i32;
                    while j < n {
                        let h = &toks[j];
                        if h.is_punct('<') {
                            angle += 1;
                        } else if h.is_punct('>') {
                            angle -= 1;
                        } else if angle <= 0 && h.is_punct('{') {
                            body_open = Some(j);
                            break;
                        } else if angle <= 0 && h.is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    // Visibility: look back over at most 6 tokens for
                    // `pub`, stopping at item boundaries.
                    let mut is_pub = false;
                    for k in (i.saturating_sub(6)..i).rev() {
                        let p = &toks[k];
                        if p.is_ident("pub") {
                            is_pub = true;
                            break;
                        }
                        let boundary = p.is_punct(';')
                            || p.is_punct('{')
                            || p.is_punct('}')
                            || p.is_punct(']');
                        if boundary {
                            break;
                        }
                    }
                    let (impl_type, in_trait_impl) = scopes
                        .iter()
                        .rev()
                        .find_map(|s| match s {
                            Scope::Impl { ty, is_trait } => Some((Some(ty.clone()), *is_trait)),
                            _ => None,
                        })
                        .unwrap_or((None, false));
                    let in_test_mod = scopes.iter().any(|s| matches!(s, Scope::TestMod));
                    let is_test = pending_attr_test || in_test_mod;
                    pending_attr_test = false;
                    if let Some(open) = body_open {
                        let fn_idx = self.fns.len();
                        self.fns.push(FnInfo {
                            name,
                            decl_line,
                            body: open + 1..open + 1, // end patched on close
                            mut_self,
                            is_pub,
                            impl_type,
                            in_trait_impl,
                            is_test,
                        });
                        pending = Some(Scope::Fn {
                            fn_idx,
                            body_start: open + 1,
                        });
                        i = open; // `{` handled next iteration
                    } else {
                        i = j + 1;
                    }
                    continue;
                }
                TokKind::Punct if t.text == "{" => {
                    scopes.push(pending.take().unwrap_or(Scope::Brace));
                    i += 1;
                    continue;
                }
                TokKind::Punct if t.text == "}" => {
                    match scopes.pop() {
                        Some(Scope::Fn { fn_idx, body_start }) => {
                            self.fns[fn_idx].body = body_start..i;
                        }
                        Some(Scope::TestMod) => {
                            // Whole-mod token range: approximate with
                            // "everything up to here since the mod
                            // opened" — find the matching open by
                            // scanning isn't needed; record a range
                            // ending here and starting at the first
                            // token whose fn/test containment matters.
                            // We track it precisely via a side stack
                            // below instead.
                        }
                        _ => {}
                    }
                    i += 1;
                    continue;
                }
                _ => {
                    if t.kind == TokKind::Ident {
                        pending_attr_test &= matches!(
                            t.text.as_str(),
                            "pub" | "crate" | "const" | "async" | "unsafe" | "extern"
                        );
                    }
                    i += 1;
                }
            }
        }

        // Second tiny pass for test token ranges: find `#[cfg(test)]`
        // attr followed by `mod … {` and record the brace span.
        self.test_ranges = find_test_ranges(&self.toks);
    }
}

/// Parse `struct Name …` starting at the `struct` keyword index.
/// Returns the info and the index to resume at.
fn parse_struct(toks: &[Tok], i: usize) -> Option<(StructInfo, usize)> {
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut j = i + 2;
    // generics
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    let mut field_idents = Vec::new();
    match toks.get(j) {
        Some(t) if t.is_punct('(') || t.is_punct('{') => {
            let open = if t.is_punct('(') { '(' } else { '{' };
            let close = if open == '(' { ')' } else { '}' };
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct(open) {
                    depth += 1;
                } else if t.is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "pub" | "crate" | "where")
                {
                    field_idents.push(t.text.clone());
                }
                j += 1;
            }
        }
        _ => {} // unit struct or `;`
    }
    Some((
        StructInfo {
            name: name.text.clone(),
            field_idents,
        },
        j,
    ))
}

/// `#[cfg(test)] mod name { … }` → token range of the braces' interior.
fn find_test_ranges(toks: &[Tok]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
        {
            // scan forward to `mod … {` (tolerating more attrs between)
            let mut j = i + 5;
            let mut found_mod = false;
            while j < toks.len() && j < i + 40 {
                if toks[j].is_ident("mod") {
                    found_mod = true;
                } else if found_mod && toks[j].is_punct('{') {
                    // matching close
                    let start = j + 1;
                    let mut depth = 0i32;
                    while j < toks.len() {
                        if toks[j].is_punct('{') {
                            depth += 1;
                        } else if toks[j].is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    out.push(start..j);
                    break;
                } else if toks[j].is_punct(';') || toks[j].is_ident("fn") {
                    break; // cfg(test) on a non-mod item
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Extract `lint: allow(<rule>) — <reason>` annotations from comments.
fn parse_allows(comments: &[Comment], code_lines: &std::collections::HashSet<u32>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        // Anything substantive after the `)` counts as a reason;
        // em-dash or colon separators both accepted.
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '—', '-', ':', '–'])
            .trim();
        out.push(Allow {
            rule,
            line: c.line,
            has_reason: !reason.is_empty(),
            trailing: code_lines.contains(&c.line),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("mem.rs".into(), src)
    }

    #[test]
    fn fn_extraction_with_receiver_and_impl() {
        let f = sf("impl<V: Clone> WireEncode for DotStore<V> {\n  fn decode(input: &mut &[u8]) -> Result<Self, E> { body() }\n  pub fn bump(&mut self) { self.tag.note_mutation(); }\n}\n");
        assert_eq!(f.fns.len(), 2);
        let d = &f.fns[0];
        assert_eq!(d.name, "decode");
        assert_eq!(d.impl_type.as_deref(), Some("DotStore"));
        assert!(d.in_trait_impl);
        assert!(!d.mut_self, "`&mut &[u8]` param is not a receiver");
        let b = &f.fns[1];
        assert!(b.mut_self && b.is_pub);
        assert!(!b.in_trait_impl || b.impl_type.is_some());
    }

    #[test]
    fn inherent_impl_type() {
        let f = sf("impl Causal<S> { pub(crate) fn mutate(&mut self) { x() } }");
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Causal"));
        assert!(!f.fns[0].in_trait_impl);
        assert!(f.fns[0].is_pub);
        assert!(f.fns[0].mut_self);
    }

    #[test]
    fn test_mod_and_test_attr_detection() {
        let f =
            sf("fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); }\n}\n");
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
        let unwrap_idx = f.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test_range(unwrap_idx));
    }

    #[test]
    fn struct_fields() {
        let f = sf("pub struct DotStore<V> { store: Vec<(Dot, V)>, tag: StateTag }\npub struct AWSet<E: Ord>(DotStore<E>);\n");
        assert_eq!(f.structs.len(), 2);
        assert!(f.structs[0].field_idents.iter().any(|s| s == "StateTag"));
        assert!(f.structs[1].field_idents.iter().any(|s| s == "DotStore"));
    }

    #[test]
    fn allow_annotations() {
        let f = sf("// lint: allow(panic) — just peeked\nx.unwrap();\ny.unwrap(); // lint: allow(panic) — infallible\nz.unwrap(); // lint: allow(panic)\n");
        assert!(f.allowed("panic", 2), "comment-above form");
        assert!(f.allowed("panic", 3), "trailing form");
        assert!(!f.allowed("panic", 4), "reason is mandatory");
        assert!(!f.allowed("capacity", 2), "rule name must match");
    }

    #[test]
    fn fn_pointer_type_is_not_a_fn_item() {
        let f = sf("struct S { k: PhantomData<fn() -> K> }\nfn real() {}\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }
}
