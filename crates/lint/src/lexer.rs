//! A small hand-rolled Rust lexer: enough fidelity for token-stream
//! lint rules (idents, punctuation, literals, comments with line
//! numbers), deliberately no more. String/char/raw-string literals are
//! opaque single tokens so rule patterns can never match inside them;
//! comments are kept out of the token stream but retained separately
//! (the allowlist syntax lives in comments).

/// What a token is. Literals keep no sub-structure — rules only ever
/// need to know "this is a literal, skip it" or "this is the ident X".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `StateTag`, …).
    Ident,
    /// One punctuation character (`.`, `[`, `&`, …). Multi-char
    /// operators arrive as consecutive tokens; rules match sequences.
    Punct,
    /// String / char / numeric / byte literal, as one opaque token.
    Literal,
    /// A lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment with the line it starts on. Text excludes the `//` / `/*`
/// markers for line comments but keeps interior text verbatim.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lex `src` into (tokens, comments). Never fails: unexpected bytes
/// become single `Punct` tokens, unterminated literals run to EOF —
/// a linter must keep going on files it half-understands.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let bump_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let start = i;
                i += 1;
                while i < n && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                let text: String = b[start..i].iter().collect();
                line += bump_lines(&b[start..i]);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
            }
            'r' | 'b' if starts_raw_string(&b[i..]) => {
                // r"…", r#"…"#, br#"…"#, b"…": find the opening quote,
                // count `#`s, scan to the matching close.
                let start = i;
                while i < n && (b[i] == 'r' || b[i] == 'b') {
                    i += 1;
                }
                let mut hashes = 0;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                debug_assert!(i < n && b[i] == '"');
                i += 1; // opening quote
                if hashes == 0 && b[start..i].contains(&'r') {
                    // raw, no hashes: closes at next bare quote
                    while i < n && b[i] != '"' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                } else if hashes == 0 {
                    // b"…": escapes apply
                    while i < n && b[i] != '"' {
                        if b[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(n);
                } else {
                    // close = quote followed by `hashes` hashes
                    'scan: while i < n {
                        if b[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        i += 1;
                    }
                }
                let text: String = b[start..i].iter().collect();
                line += bump_lines(&b[start..i]);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'a` / `'static` followed by
                // anything but a closing quote is a lifetime; `'x'`,
                // `'\n'`, `'\''` are char literals.
                let start = i;
                i += 1;
                if i < n && b[i] == '\\' {
                    // escaped char literal
                    i += 2;
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: b[start..i.min(n)].iter().collect(),
                        line,
                    });
                } else if i + 1 < n && b[i + 1] == '\'' {
                    // 'x'
                    i += 2;
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    // lifetime
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part — but `0..len` must not eat the range.
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            other => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: other.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Does the char slice begin a raw/byte string literal (`r"`, `r#"`,
/// `br"`, `b"`, …)? Called only when the first char is `r` or `b`.
fn starts_raw_string(s: &[char]) -> bool {
    let mut i = 0;
    while i < s.len() && (s[i] == 'r' || s[i] == 'b') && i < 2 {
        i += 1;
    }
    let mut j = i;
    while j < s.len() && s[j] == '#' {
        j += 1;
    }
    j < s.len() && s[j] == '"' && (i > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_lines() {
        let (t, c) = lex("fn a() {\n  b.unwrap();\n}\n");
        assert!(c.is_empty());
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "a", "(", ")", "{", "b", ".", "unwrap", "(", ")", ";", "}"]
        );
        assert_eq!(t[5].line, 2, "`b` sits on line 2");
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let (t, c) = lex("x;\n// lint: allow(panic) — fine\ny;");
        assert_eq!(t.len(), 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].line, 2);
        assert!(c[0].text.contains("allow(panic)"));
    }

    #[test]
    fn strings_are_opaque() {
        let (t, _) = lex(r#"let s = "a.unwrap()[0]";"#);
        assert!(t.iter().all(|t| t.text != "unwrap"));
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Literal).count(), 1);
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let (t, _) = lex(r##"let r = r#"x "q" y"#; let c = '\n'; fn f<'a>(x: &'a u8) {}"##);
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Literal).count(), 2);
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let (t, _) = lex("for i in 0..len {}");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["for", "i", "in", "0", ".", ".", "len", "{", "}"]);
    }

    #[test]
    fn nested_block_comments() {
        let (t, c) = lex("a /* x /* y */ z */ b");
        assert_eq!(t.len(), 2);
        assert_eq!(c.len(), 1);
    }
}
