//! `repo-lint` — repo-invariant static analysis for the delta-sync
//! workspace. Hand-rolled tokenizer + token-stream rules, no `syn`, no
//! registry deps (the build environment is offline, like the testkit
//! shims).
//!
//! ```text
//! cargo run -p repo-lint                 # lint the workspace, exit 1 on violations
//! cargo run -p repo-lint -- --self-test  # run the fixture suite
//! cargo run -p repo-lint -- --report target/repo-lint.txt
//! ```
//!
//! Diagnostics print as `file:line rule message`. Violations are
//! silenced only by `// lint: allow(<rule>) — <reason>` on the flagged
//! line or the line above (the reason is mandatory). The rules and
//! their scopes are documented in `rules.rs` and in ARCHITECTURE.md's
//! "Enforced invariants" section.
#![forbid(unsafe_code)]

mod lexer;
mod rules;
mod selftest;
mod source;

use rules::{Diagnostic, Scope};
use source::SourceFile;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut self_test = false;
    let mut report: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--self-test" => self_test = true,
            "--report" => report = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: repo-lint [--self-test] [--report FILE] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    if self_test {
        let fixtures = root.join("crates/lint/fixtures");
        let failures = selftest::run(&fixtures);
        if failures.is_empty() {
            println!(
                "repo-lint self-test: {} rules × (bad, good) fixtures OK",
                selftest::FIXTURE_RULES.len()
            );
            return ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("self-test FAIL: {f}");
        }
        return ExitCode::FAILURE;
    }

    let files = collect_files(&root);
    if files.is_empty() {
        eprintln!(
            "repo-lint: no sources under {} — wrong root?",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    let scope = Scope { force: false };
    let mut parsed: Vec<SourceFile> = Vec::new();
    for (abs, rel) in files {
        match std::fs::read_to_string(&abs) {
            Ok(src) => parsed.push(SourceFile::parse(rel, &src)),
            Err(e) => eprintln!("repo-lint: skipping {}: {e}", abs.display()),
        }
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    for f in &parsed {
        diags.extend(rules::check_file(f, scope, is_crate_root(&f.rel)));
    }
    // Epoch completeness runs over the flat-causal file group (struct
    // definitions and bump delegation cross file boundaries).
    let epoch_group: Vec<&SourceFile> = parsed
        .iter()
        .filter(|f| rules::epoch_file_in_scope(&f.rel, scope))
        .collect();
    rules::check_epoch(&epoch_group, &mut diags);

    diags.sort_by(|a, b| (&a.rel, a.line).cmp(&(&b.rel, b.line)));
    for d in &diags {
        println!("{d}");
    }
    let summary = format!(
        "repo-lint: {} files, {} rules, {} violation(s)",
        parsed.len(),
        selftest::FIXTURE_RULES.len() + 1,
        diags.len()
    );
    println!("{summary}");
    if let Some(path) = report {
        let mut body: String = diags.iter().map(|d| format!("{d}\n")).collect();
        body.push_str(&summary);
        body.push('\n');
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("repo-lint: cannot write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the workspace root (the
/// Cargo.toml containing `[workspace]`).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Crate roots get the `#![forbid(unsafe_code)]` header policy.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
        || rel == "crates/lint/src/main.rs"
}

/// Every `.rs` file the rules see: the umbrella `src/` plus each
/// crate's `src/` tree (testkit shims included). Integration-test and
/// bench directories are exempt by design — the rules target
/// production paths — and `crates/lint/fixtures` holds deliberate
/// violations, so neither is walked.
fn collect_files(root: &Path) -> Vec<(PathBuf, String)> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            stack.push(e.path().join("src"));
            // testkit shims live one level deeper
            if e.file_name() == "testkit" {
                stack.pop();
                if let Ok(shims) = std::fs::read_dir(e.path()) {
                    for s in shims.flatten() {
                        stack.push(s.path().join("src"));
                    }
                }
            }
        }
    }
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "fixtures") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((p, rel));
            }
        }
    }
    out.sort();
    out
}
