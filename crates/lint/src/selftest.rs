//! Fixture self-test: each rule has a known-bad and a known-good
//! fixture under `crates/lint/fixtures/{bad,good}/<rule>.rs`. The bad
//! fixture must produce at least one diagnostic *of its own rule* (and
//! none of any other), the good fixture must produce none at all —
//! proving both directions: the rules fire, and they don't cry wolf.

use crate::rules::{self, Diagnostic, Scope};
use crate::source::SourceFile;
use std::path::Path;

/// Rules with fixture pairs. `unsafe-header` is covered by unit tests
/// instead (it is a crate-root policy, not a token pattern).
pub const FIXTURE_RULES: &[&str] = &[
    "panic",
    "capacity",
    "lock-rank",
    "epoch",
    "determinism",
    "obs-doc",
];

/// Run the fixture suite rooted at `fixtures_dir`. Returns human-readable
/// failure lines; empty means the suite passed.
pub fn run(fixtures_dir: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    let scope = Scope { force: true };
    for rule in FIXTURE_RULES {
        for (kind, expect_hit) in [("bad", true), ("good", false)] {
            let path = fixtures_dir
                .join(kind)
                .join(format!("{}.rs", rule.replace('-', "_")));
            let rel = format!("fixtures/{kind}/{}.rs", rule.replace('-', "_"));
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    failures.push(format!("{rel}: unreadable fixture: {e}"));
                    continue;
                }
            };
            let f = SourceFile::parse(rel.clone(), &src);
            let mut diags = rules::check_file(&f, scope, false);
            if *rule == "epoch" {
                rules::check_epoch(&[&f], &mut diags);
            }
            check_one(rule, &rel, expect_hit, &diags, &mut failures);
        }
    }
    failures
}

fn check_one(
    rule: &str,
    rel: &str,
    expect_hit: bool,
    diags: &[Diagnostic],
    failures: &mut Vec<String>,
) {
    let own: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == rule).collect();
    let foreign: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule != rule).collect();
    if expect_hit && own.is_empty() {
        failures.push(format!("{rel}: expected ≥1 `{rule}` diagnostic, got none"));
    }
    if !expect_hit && !own.is_empty() {
        failures.push(format!(
            "{rel}: good fixture flagged: {}",
            own.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    if !foreign.is_empty() {
        failures.push(format!(
            "{rel}: fixture tripped other rules: {}",
            foreign
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
}
