//! GOOD fixture for the `lock-rank` rule: the reactor's real
//! acquisition shapes — ascending ranks, statement-temporary guards
//! released before the next acquisition, early `drop`, inbox alone.

fn ascending(inner: &Inner) {
    let mut core = inner.state.lock().unwrap(); // rank 1
    let links = inner.links.lock().unwrap(); // rank 2 over 1: fine
    for l in links.values() {
        let mut link = l.link.lock().unwrap(); // rank 3 over 2: fine
        link.push(core.frame());
    }
}

fn temp_guard_dies_at_statement_end(inner: &Inner) {
    let neighbors: Vec<ReplicaId> = inner.links.lock().unwrap().keys().copied().collect();
    let mut core = inner.state.lock().unwrap(); // links temp already dead
    core.note(neighbors);
}

fn scoped_then_locked(inner: &Inner, to: ReplicaId) {
    let link = { inner.links.lock().unwrap().get(&to).cloned() };
    if let Some(link) = link {
        let mut link = link.lock().unwrap(); // only rank 3 live
        link.push(1);
    }
}

fn inbox_alone_via_drop(inner: &Inner) {
    let mut inbox = inner.inbox.lock().unwrap();
    let msgs = inbox.take_sorted();
    drop(inbox); // released before any ranked acquisition
    let mut core = inner.state.lock().unwrap();
    core.apply(msgs);
}
