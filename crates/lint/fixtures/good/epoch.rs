//! GOOD fixture for the `epoch` rule: every `&mut self` mutator on
//! tagged state reaches a bump — directly, by delegation, or is
//! explicitly allowlisted as frame-neutral.

pub struct StateTag {
    epoch: u64,
}

pub struct DotStore<V> {
    store: Vec<V>,
    tag: StateTag,
}

pub struct AWSet<E>(DotStore<E>);

impl<V> DotStore<V> {
    pub fn mutate(&mut self, v: V) {
        self.store.push(v);
        self.tag.note_mutation();
    }

    pub fn join_assign(&mut self, other: Self) -> bool {
        let changed = !other.store.is_empty();
        if changed {
            self.tag = StateTag::fresh();
        }
        changed
    }
}

impl<E> AWSet<E> {
    /// Bumps by delegation through `mutate`.
    pub fn add(&mut self, e: E) {
        self.0.mutate(e);
    }

    // lint: allow(epoch) — capacity-only reshape; encoded bytes are identical
    pub fn shrink_to_fit(&mut self) {
        self.0.store.shrink_to_fit();
    }
}
