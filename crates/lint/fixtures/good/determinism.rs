//! GOOD fixture for the `determinism` rule: deterministic accounting —
//! counted rounds, counted bytes, a seeded generator — with no clock
//! anywhere. Timing belongs in the artifact-only runner modules.

pub fn round_cost(rounds: u64, bytes_per_round: u64) -> u64 {
    let mut acc = 0;
    for r in 0..rounds {
        acc += r.wrapping_mul(bytes_per_round);
    }
    acc
}

pub fn seeded_jitter(seed: u64) -> u64 {
    // splitmix64 step: reproducible across runs and hosts.
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}
