//! GOOD fixture for the `panic` rule: the same decode path written
//! total — checked accessors, errors for hostile bytes, and one
//! provably-infallible `expect` carrying the allowlist annotation.

pub fn decode(input: &mut &[u8]) -> Result<Frame, CodecError> {
    let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
    *input = rest;
    if tag > 7 {
        return Err(CodecError::BadDiscriminant(tag));
    }
    let len = usize::decode(input)?;
    let Some(body) = input.get(..len) else {
        return Err(CodecError::UnexpectedEnd);
    };
    *input = &input[len..]; // lint: allow(panic) — len just bounds-checked by the get() above
    let mut peek = body.iter().peekable();
    let first = if peek.peek().is_some() {
        // lint: allow(panic) — peeked on the line above, next() cannot fail
        Some(*peek.next().expect("peeked"))
    } else {
        None
    };
    Ok(Frame { tag, first, body: body.to_vec() })
}
