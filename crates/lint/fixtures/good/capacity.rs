//! GOOD fixture for the `capacity` rule: every preallocation is
//! dominated by a guard, clamped, or constant — the canonical idioms
//! the rule accepts.

pub fn decode(input: &mut &[u8]) -> Result<Batch, CodecError> {
    let len = usize::decode(input)?;
    // Every entry costs ≥ 1 byte, so a count beyond the remaining
    // input cannot be honest — reject before trusting it.
    if len > input.len() {
        return Err(CodecError::UnexpectedEnd);
    }
    let mut entries = Vec::with_capacity(len);
    for _ in 0..len {
        entries.push(Entry::decode(input)?);
    }
    let extra = usize::decode(input)?;
    let mut tail = Vec::with_capacity(extra.min(MAX_TAIL)); // clamped
    let mut scratch = Vec::with_capacity(16); // constant
    scratch.reserve(HEADER_MAX); // cap const
    tail.extend_from_slice(&scratch);
    Ok(Batch { entries, tail })
}
