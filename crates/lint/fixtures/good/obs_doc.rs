//! GOOD fixture for the `obs-doc` rule: every registration site names
//! its metric with a literal dotted string and carries a literal doc
//! string, so the exposition is self-describing and the golden-name
//! gate can diff the full set.

pub fn register_all(reg: &Registry) -> Counter {
    let frames = register_counter!(
        reg,
        "engine.sync.frames",
        "anti-entropy frames produced by the engine"
    );
    let _objects = register_gauge!(reg, "store.objects", "live non-bottom objects");
    let _bytes = register_histogram!(
        reg,
        "net.frame.bytes",
        "per-frame wire size, log2 buckets"
    );
    frames
}
