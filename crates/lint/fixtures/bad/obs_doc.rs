//! BAD fixture for the `obs-doc` rule: a metric registered without a
//! literal doc string (and one with a computed name) — the exposition
//! would carry cells nobody can explain, and the golden-name CI gate
//! cannot see a name built at runtime.

pub fn register_all(reg: &Registry, prefix: &str) -> Counter {
    let undocumented = register_counter!(reg, "engine.sync.frames");
    let computed = register_gauge!(reg, format!("{prefix}.objects"), doc_for(prefix));
    let _ = register_histogram!(reg, "net.frame.bytes");
    let _ = computed;
    undocumented
}
