//! BAD fixture for the `epoch` rule: a tagged causal store with a
//! `&mut self` mutator that never bumps the `StateTag` — the cached
//! wire frame would keep serving pre-mutation bytes.

pub struct StateTag {
    epoch: u64,
}

pub struct DotStore<V> {
    store: Vec<V>,
    tag: StateTag,
}

pub struct AWSet<E>(DotStore<E>);

impl<V> DotStore<V> {
    pub fn mutate(&mut self, v: V) {
        self.store.push(v);
        self.tag.note_mutation();
    }

    /// Mutates the store but forgets the epoch: stale-frame bug.
    pub fn truncate(&mut self, keep: usize) {
        self.store.truncate(keep);
    }
}

impl<E> AWSet<E> {
    /// Delegates to a non-bumping mutator: still a stale-frame bug.
    pub fn clear_quietly(&mut self) {
        self.0.truncate(0);
    }
}
