//! BAD fixture for the `panic` rule: a decode path that can be made to
//! panic by hostile bytes. Every construct below must be flagged.

pub fn decode(input: &mut &[u8]) -> Result<Frame, CodecError> {
    let tag = input[0]; // direct indexing: panics on empty input
    let len = usize::decode(input).unwrap(); // unwrap on attacker bytes
    let body = input.get(..len).expect("length was checked"); // it was not
    if tag > 7 {
        panic!("bad tag {tag}"); // hostile discriminant must be an Err
    }
    Ok(Frame { tag, body: body.to_vec() })
}
