//! BAD fixture for the `determinism` rule: wall-clock reads in a
//! module whose numbers land in gated deterministic metrics — the CI
//! gate would compare noise.

use std::time::Instant;

pub fn round_cost(rounds: u64) -> u64 {
    let start = Instant::now();
    let mut acc = 0;
    for r in 0..rounds {
        acc += r;
    }
    acc + start.elapsed().as_nanos() as u64
}
