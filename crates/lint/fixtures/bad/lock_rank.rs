//! BAD fixture for the `lock-rank` rule: acquisitions against the
//! declared order (core → links → link, inbox alone).

fn inverted_link_then_core(inner: &Inner, peer: &Peer) {
    let mut link = peer.link.lock().unwrap(); // rank 3 first…
    let core = inner.state.lock().unwrap(); // …then rank 1: inversion
    link.push(core.frame());
}

fn links_then_core_bound(inner: &Inner) {
    let links = inner.links.lock().unwrap(); // rank 2 held (bound)…
    let core = inner.state.lock().unwrap(); // …rank 1 under it: inversion
    drop(links);
    drop(core);
}

fn inbox_not_alone(inner: &Inner) {
    let core = inner.state.lock().unwrap();
    let mut inbox = inner.inbox.lock().unwrap(); // inbox while core held
    inbox.drain_into(core);
}
