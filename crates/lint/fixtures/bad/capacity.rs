//! BAD fixture for the `capacity` rule: preallocation proportional to
//! an attacker-controlled count, with no dominating guard — a 5-byte
//! frame claiming a billion entries would reserve gigabytes.

pub fn decode(input: &mut &[u8]) -> Result<Batch, CodecError> {
    let len = usize::decode(input)?;
    let mut entries = Vec::with_capacity(len); // trusted attacker count
    for _ in 0..len {
        entries.push(Entry::decode(input)?);
    }
    let extra = usize::decode(input)?;
    let mut tail = Vec::new();
    tail.reserve(extra); // same hole via reserve
    Ok(Batch { entries, tail })
}
