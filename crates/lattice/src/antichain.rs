//! The maximal-elements lattice `M(P)`: antichains of a poset under
//! "union then keep maximals".
//!
//! `M(P)` (paper, Appendix B) turns any partial order into a lattice whose
//! elements are antichains — sets with no two comparable elements — ordered
//! by domination: `s ⊑ s'` iff every element of `s` is below some element
//! of `s'`. It models "keep only the frontier" semantics (e.g. concurrent
//! versions in a multi-value register). Decomposition (Appendix C) is by
//! singletons: `⇓s = { {e} | e ∈ s }`.
//!
//! The *domination* order is supplied by [`Poset`], deliberately distinct
//! from the `Ord` bound (which only fixes deterministic storage order in
//! the backing `BTreeSet`).

use std::collections::BTreeSet;

use crate::{Bottom, Decompose, Lattice, SizeModel, Sizeable, StateSize};

/// A partial order used as the domination relation of [`Antichain`].
///
/// Must be reflexive, transitive and antisymmetric. It need not agree with
/// the type's `Ord` (which is total and only used for storage).
pub trait Poset {
    /// Is `self ≤ other` in the partial order?
    fn poset_le(&self, other: &Self) -> bool;
}

/// The antichain (maximal-elements) lattice `M(P)`.
///
/// Invariant: no stored element dominates another.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Antichain<P: Ord>(BTreeSet<P>);

impl<P> Antichain<P>
where
    P: Ord + Clone + core::fmt::Debug + Poset,
{
    /// The empty antichain (`⊥`).
    pub fn new() -> Self {
        Antichain(BTreeSet::new())
    }

    /// Insert an element, keeping only maximals.
    ///
    /// Returns `true` iff the antichain strictly inflated (the element was
    /// not already dominated).
    pub fn insert(&mut self, e: P) -> bool {
        if self.0.iter().any(|x| e.poset_le(x)) {
            // Dominated (or equal): no inflation. Note e ⊑ e, so presence
            // is covered by this test.
            return false;
        }
        self.0.retain(|x| !x.poset_le(&e));
        self.0.insert(e);
        true
    }

    /// Is `e` dominated by (or equal to) some element of the antichain?
    pub fn dominates(&self, e: &P) -> bool {
        self.0.iter().any(|x| e.poset_le(x))
    }

    /// Number of frontier elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty antichain?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the frontier in storage order.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.0.iter()
    }
}

impl<P> FromIterator<P> for Antichain<P>
where
    P: Ord + Clone + core::fmt::Debug + Poset,
{
    fn from_iter<I: IntoIterator<Item = P>>(iter: I) -> Self {
        let mut a = Self::new();
        for e in iter {
            a.insert(e);
        }
        a
    }
}

impl<P> Lattice for Antichain<P>
where
    P: Ord + Clone + core::fmt::Debug + Poset,
{
    fn join_assign(&mut self, other: Self) -> bool {
        let mut inflated = false;
        for e in other.0 {
            inflated |= self.insert(e);
        }
        inflated
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.iter().all(|e| other.dominates(e))
    }
}

impl<P> Bottom for Antichain<P>
where
    P: Ord + Clone + core::fmt::Debug + Poset,
{
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.0.is_empty()
    }
}

impl<P> Decompose for Antichain<P>
where
    P: Ord + Clone + core::fmt::Debug + Poset,
{
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        for e in &self.0 {
            f(Antichain(BTreeSet::from_iter([e.clone()])));
        }
    }

    fn irreducible_count(&self) -> u64 {
        self.0.len() as u64
    }

    /// Frontier elements not dominated by `other`.
    fn delta(&self, other: &Self) -> Self {
        Antichain(
            self.0
                .iter()
                .filter(|e| !other.dominates(e))
                .cloned()
                .collect(),
        )
    }

    fn is_irreducible(&self) -> bool {
        self.0.len() == 1
    }
}

impl<P> StateSize for Antichain<P>
where
    P: Ord + Clone + core::fmt::Debug + Poset + Sizeable,
{
    fn count_elements(&self) -> u64 {
        self.0.len() as u64
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.iter().map(|e| e.payload_bytes(model)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A poset of (coordinate-wise ordered) integer pairs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Pt(u32, u32);

    impl Poset for Pt {
        fn poset_le(&self, other: &Self) -> bool {
            self.0 <= other.0 && self.1 <= other.1
        }
    }

    impl Sizeable for Pt {
        fn payload_bytes(&self, _m: &SizeModel) -> u64 {
            8
        }
    }

    #[test]
    fn insert_keeps_maximals() {
        let mut a = Antichain::new();
        assert!(a.insert(Pt(1, 1)));
        // Dominated: rejected.
        assert!(!a.insert(Pt(0, 1)));
        // Dominating: replaces.
        assert!(a.insert(Pt(2, 2)));
        assert_eq!(a.len(), 1);
        // Incomparable: coexists.
        assert!(a.insert(Pt(0, 5)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn reinsert_does_not_inflate() {
        let mut a = Antichain::from_iter([Pt(1, 1)]);
        assert!(!a.insert(Pt(1, 1)));
    }

    #[test]
    fn join_is_union_of_frontiers() {
        let a = Antichain::from_iter([Pt(2, 0), Pt(0, 2)]);
        let b = Antichain::from_iter([Pt(1, 1), Pt(3, 0)]);
        let j = a.clone().join(b.clone());
        assert_eq!(j, Antichain::from_iter([Pt(3, 0), Pt(1, 1), Pt(0, 2)]));
        assert!(a.leq(&j));
        assert!(b.leq(&j));
    }

    #[test]
    fn le_is_domination() {
        let lo = Antichain::from_iter([Pt(1, 0)]);
        let hi = Antichain::from_iter([Pt(2, 1)]);
        assert!(lo.leq(&hi));
        assert!(!hi.leq(&lo));
        let incomparable = Antichain::from_iter([Pt(0, 9)]);
        assert!(!lo.leq(&incomparable));
    }

    #[test]
    fn decompose_and_delta() {
        let a = Antichain::from_iter([Pt(2, 0), Pt(0, 2)]);
        assert_eq!(a.decompose().len(), 2);
        let b = Antichain::from_iter([Pt(3, 1)]);
        // Pt(2,0) ⊑ Pt(3,1) is dominated; Pt(0,2) survives.
        assert_eq!(a.delta(&b), Antichain::from_iter([Pt(0, 2)]));
        assert_eq!(a.delta(&b).join(b.clone()), a.clone().join(b));
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        let a = Antichain::from_iter([Pt(2, 0), Pt(0, 2)]);
        assert_eq!(a.count_elements(), 2);
        assert_eq!(a.size_bytes(&m), 16);
    }
}
