//! The powerset lattice `P(U)`: finite sets under union.
//!
//! This is the lattice behind GSet (paper, Fig. 2b). Join is set union,
//! `⊑` is inclusion, `⊥ = ∅`, and the decomposition rule (Appendix C) is
//! `⇓s = { {e} | e ∈ s }` — every singleton is join-irreducible, so the
//! optimal delta `Δ(a, b)` degenerates to set difference `a ∖ b`.
//!
//! A `BTreeSet` backs the state so iteration order — and therefore every
//! simulation in this workspace — is deterministic.

use std::collections::BTreeSet;

use crate::{Bottom, Decompose, Lattice, SizeModel, Sizeable, StateSize};

/// A finite set under union: the lattice `P(U)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SetLattice<E: Ord>(BTreeSet<E>);

impl<E: Ord + Clone + core::fmt::Debug> SetLattice<E> {
    /// The empty set.
    pub fn new() -> Self {
        SetLattice(BTreeSet::new())
    }

    /// Insert an element directly (full mutator `add`).
    ///
    /// Returns `true` if the element was new. For the optimal δ-mutator use
    /// [`SetLattice::add_delta`].
    pub fn insert(&mut self, e: E) -> bool {
        self.0.insert(e)
    }

    /// The optimal δ-mutator `addδ` of Fig. 2b: inserts `e` and returns the
    /// singleton `{e}` if `e` was absent, `⊥` otherwise.
    ///
    /// The original δ-mutator of \[13\] always returned `{e}`; §III-B points
    /// out that returning `⊥` for an already-present element is what makes
    /// the mutator optimal (`addδ(e, s) = Δ(add(e, s), s)`).
    #[must_use]
    pub fn add_delta(&mut self, e: E) -> Self {
        if self.0.insert(e.clone()) {
            SetLattice(BTreeSet::from_iter([e]))
        } else {
            Self::bottom()
        }
    }

    /// Membership test.
    pub fn contains(&self, e: &E) -> bool {
        self.0.contains(e)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty (`⊥`)?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.0.iter()
    }

    /// Borrow the underlying set (the `value` query of Fig. 2b).
    pub fn value(&self) -> &BTreeSet<E> {
        &self.0
    }
}

impl<E: Ord + Clone + core::fmt::Debug> FromIterator<E> for SetLattice<E> {
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        SetLattice(BTreeSet::from_iter(iter))
    }
}

impl<E: Ord + Clone + core::fmt::Debug> IntoIterator for SetLattice<E> {
    type Item = E;
    type IntoIter = std::collections::btree_set::IntoIter<E>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<E: Ord + Clone + core::fmt::Debug> Lattice for SetLattice<E> {
    fn join_assign(&mut self, other: Self) -> bool {
        let before = self.0.len();
        if other.0.len() > self.0.len() && self.0.is_empty() {
            // Cheap fast path: absorbing into an empty set.
            self.0 = other.0;
            return !self.0.is_empty();
        }
        self.0.extend(other.0);
        self.0.len() != before
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.is_subset(&other.0)
    }
}

impl<E: Ord + Clone + core::fmt::Debug> Bottom for SetLattice<E> {
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.0.is_empty()
    }
}

impl<E: Ord + Clone + core::fmt::Debug> Decompose for SetLattice<E> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        for e in &self.0 {
            f(SetLattice(BTreeSet::from_iter([e.clone()])));
        }
    }

    fn irreducible_count(&self) -> u64 {
        self.0.len() as u64
    }

    /// `Δ(a, b) = a ∖ b` — computed directly, without materializing
    /// singleton irreducibles.
    fn delta(&self, other: &Self) -> Self {
        SetLattice(self.0.difference(&other.0).cloned().collect())
    }

    fn is_irreducible(&self) -> bool {
        self.0.len() == 1
    }
}

impl<E: Ord + Clone + core::fmt::Debug + Sizeable> StateSize for SetLattice<E> {
    fn count_elements(&self) -> u64 {
        self.0.len() as u64
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.iter().map(|e| e.payload_bytes(model)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_union() {
        let mut a = SetLattice::from_iter([1, 2]);
        assert!(a.join_assign(SetLattice::from_iter([2, 3])));
        assert_eq!(a, SetLattice::from_iter([1, 2, 3]));
        assert!(!a.join_assign(SetLattice::from_iter([1])));
    }

    #[test]
    fn le_is_inclusion() {
        let a = SetLattice::from_iter([1, 2]);
        let b = SetLattice::from_iter([1, 2, 3]);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(SetLattice::<i32>::bottom().leq(&a));
    }

    #[test]
    fn add_delta_is_optimal() {
        // Fig. 2b: addδ returns {e} only when e is new.
        let mut s = SetLattice::new();
        assert_eq!(s.add_delta("a"), SetLattice::from_iter(["a"]));
        assert!(s.add_delta("a").is_bottom());
        assert!(s.contains(&"a"));
    }

    #[test]
    fn decomposition_is_singletons() {
        // Example 2: ⇓{a,b,c} = {{a},{b},{c}} (S4).
        let s = SetLattice::from_iter(["a", "b", "c"]);
        let d = s.decompose();
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|x| x.len() == 1));
        assert_eq!(s.irreducible_count(), 3);
    }

    #[test]
    fn delta_is_difference() {
        let a = SetLattice::from_iter([1, 2, 3]);
        let b = SetLattice::from_iter([2, 4]);
        assert_eq!(a.delta(&b), SetLattice::from_iter([1, 3]));
        // Δ(a,b) ⊔ b = a ⊔ b.
        assert_eq!(a.delta(&b).join(b.clone()), a.join(b));
    }

    #[test]
    fn join_with_empty_fast_path() {
        let mut a = SetLattice::<u32>::bottom();
        assert!(a.join_assign(SetLattice::from_iter([5, 6])));
        assert_eq!(a.len(), 2);
        let mut b = SetLattice::<u32>::bottom();
        assert!(!b.join_assign(SetLattice::bottom()));
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        let s = SetLattice::from_iter(["ab".to_string(), "cde".to_string()]);
        assert_eq!(s.count_elements(), 2);
        assert_eq!(s.size_bytes(&m), 5);
    }
}
