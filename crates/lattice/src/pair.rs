//! The cartesian product lattice `A × B`.
//!
//! Join and order are componentwise; `⊥ = ⟨⊥, ⊥⟩`. The decomposition rule
//! (Appendix C) embeds each component's irreducibles with the other side at
//! bottom:
//!
//! ```text
//! ⇓⟨a,b⟩ = ⇓a × {⊥}  ∪  {⊥} × ⇓b
//! ```
//!
//! PNCounter uses this composition per replica entry (`ℕ × ℕ`: increments
//! and decrements tracked separately — Appendix C's worked example).

use crate::{Bottom, Decompose, Lattice, SizeModel, StateSize};

/// The product of two lattices, ordered componentwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pair<A, B>(pub A, pub B);

impl<A, B> Pair<A, B> {
    /// Construct a pair.
    pub fn new(a: A, b: B) -> Self {
        Pair(a, b)
    }

    /// First component.
    pub fn fst(&self) -> &A {
        &self.0
    }

    /// Second component.
    pub fn snd(&self) -> &B {
        &self.1
    }
}

impl<A: Lattice, B: Lattice> Lattice for Pair<A, B> {
    fn join_assign(&mut self, other: Self) -> bool {
        // Note: `|` not `||` — both joins must run.
        self.0.join_assign(other.0) | self.1.join_assign(other.1)
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1)
    }
}

impl<A: Bottom, B: Bottom> Bottom for Pair<A, B> {
    fn bottom() -> Self {
        Pair(A::bottom(), B::bottom())
    }

    fn is_bottom(&self) -> bool {
        self.0.is_bottom() && self.1.is_bottom()
    }
}

impl<A: Decompose, B: Decompose> Decompose for Pair<A, B> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        self.0
            .for_each_irreducible(&mut |a| f(Pair(a, B::bottom())));
        self.1
            .for_each_irreducible(&mut |b| f(Pair(A::bottom(), b)));
    }

    fn irreducible_count(&self) -> u64 {
        self.0.irreducible_count() + self.1.irreducible_count()
    }

    /// Componentwise: `Δ(⟨a,b⟩, ⟨c,d⟩) = ⟨Δ(a,c), Δ(b,d)⟩`.
    fn delta(&self, other: &Self) -> Self {
        Pair(self.0.delta(&other.0), self.1.delta(&other.1))
    }

    fn is_irreducible(&self) -> bool {
        (self.1.is_bottom() && self.0.is_irreducible())
            || (self.0.is_bottom() && self.1.is_irreducible())
    }
}

impl<A: StateSize, B: StateSize> StateSize for Pair<A, B> {
    fn count_elements(&self) -> u64 {
        self.0.count_elements() + self.1.count_elements()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.size_bytes(model) + self.1.size_bytes(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_all, Max, SetLattice};

    type P = Pair<Max<u64>, SetLattice<&'static str>>;

    fn sample() -> P {
        Pair(Max::new(3), SetLattice::from_iter(["x", "y"]))
    }

    #[test]
    fn join_is_componentwise() {
        let a = sample();
        let b = Pair(Max::new(5), SetLattice::from_iter(["z"]));
        let j = a.join(b);
        assert_eq!(j.0, Max::new(5));
        assert_eq!(j.1, SetLattice::from_iter(["x", "y", "z"]));
    }

    #[test]
    fn join_assign_inflates_both_sides() {
        // Regression guard for the `|` vs `||` pitfall: the right join must
        // run even when the left one already inflated.
        let mut a = sample();
        let inflated = a.join_assign(Pair(Max::new(9), SetLattice::from_iter(["z"])));
        assert!(inflated);
        assert!(a.1.contains(&"z"));
    }

    #[test]
    fn le_requires_both() {
        let a = sample();
        let more_counter = Pair(Max::new(9), a.1.clone());
        assert!(a.leq(&more_counter));
        assert!(!more_counter.leq(&a));
        let incomparable = Pair(Max::new(9), SetLattice::bottom());
        assert!(!a.leq(&incomparable));
        assert!(!incomparable.leq(&a));
    }

    #[test]
    fn decomposition_embeds_at_bottom() {
        let a = sample();
        let d = a.decompose();
        // 1 irreducible from the chain + 2 singletons from the set.
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Pair(Max::new(3), SetLattice::bottom())));
        assert!(d.contains(&Pair(Max::bottom(), SetLattice::from_iter(["x"]))));
        assert!(d.iter().all(Decompose::is_irreducible));
        assert_eq!(join_all::<P, _>(d), a);
    }

    #[test]
    fn delta_componentwise() {
        let a = Pair(Max::new(5), SetLattice::from_iter(["x", "y"]));
        let b = Pair(Max::new(7), SetLattice::from_iter(["y"]));
        let d = a.delta(&b);
        assert_eq!(d, Pair(Max::bottom(), SetLattice::from_iter(["x"])));
        assert_eq!(d.join(b.clone()), a.join(b));
    }

    #[test]
    fn bottom_roundtrip() {
        assert!(P::bottom().is_bottom());
        assert!(!sample().is_bottom());
        assert!(P::bottom().decompose().is_empty());
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        let a = sample();
        assert_eq!(a.count_elements(), 3);
        assert_eq!(a.size_bytes(&m), 8 + 2);
    }
}
