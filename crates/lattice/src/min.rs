//! The dual chain lattice: join is `min`.
//!
//! Some replicated aggregates converge downwards — "earliest timestamp
//! seen", "cheapest offer", "shortest distance". Reversing the order of a
//! chain is still a chain, so everything from Appendix B/C applies
//! unchanged: `⇓c = {c}` for non-bottom `c`.
//!
//! Unlike [`crate::Max`], there is no natural least element inside `T`
//! (it would be `T`'s *greatest* value), so `⊥` is represented explicitly
//! as "no value yet".

use crate::{Bottom, Decompose, Lattice, SizeModel, Sizeable, StateSize, TotalOrder};

/// A totally ordered value as a join-semilattice with `⊔ = min`.
///
/// `⊥` is the absent value; the lattice order is the *reverse* of `T`'s
/// order on present values (smaller values are higher in the lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Min<T>(Option<T>);

impl<T: Ord + Clone + core::fmt::Debug> Min<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Min(Some(value))
    }

    /// The wrapped value, if any.
    pub fn get(&self) -> Option<&T> {
        self.0.as_ref()
    }
}

impl<T: Ord + Clone + core::fmt::Debug> Lattice for Min<T> {
    fn join_assign(&mut self, other: Self) -> bool {
        match (self.0.as_ref(), other.0) {
            (_, None) => false,
            (None, Some(v)) => {
                self.0 = Some(v);
                true
            }
            (Some(cur), Some(v)) => {
                if v < *cur {
                    self.0 = Some(v);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, _) => true,
            (Some(_), None) => false,
            // Reversed: a lower numeric value is higher in the lattice.
            (Some(a), Some(b)) => b <= a,
        }
    }
}

impl<T: Ord + Clone + core::fmt::Debug> Bottom for Min<T> {
    fn bottom() -> Self {
        Min(None)
    }

    fn is_bottom(&self) -> bool {
        self.0.is_none()
    }
}

impl<T: Ord + Clone + core::fmt::Debug> PartialOrd for Min<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord + Clone + core::fmt::Debug> Ord for Min<T> {
    /// Total order agreeing with the lattice order: `⊥` first, then values
    /// in *descending* `T` order.
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        match (&self.0, &other.0) {
            (None, None) => core::cmp::Ordering::Equal,
            (None, Some(_)) => core::cmp::Ordering::Less,
            (Some(_), None) => core::cmp::Ordering::Greater,
            (Some(a), Some(b)) => b.cmp(a),
        }
    }
}

impl<T: Ord + Clone + core::fmt::Debug> TotalOrder for Min<T> {}

impl<T: Ord + Clone + core::fmt::Debug> Decompose for Min<T> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        if !self.is_bottom() {
            f(self.clone());
        }
    }

    fn irreducible_count(&self) -> u64 {
        u64::from(!self.is_bottom())
    }

    fn delta(&self, other: &Self) -> Self {
        if self.leq(other) {
            Self::bottom()
        } else {
            self.clone()
        }
    }

    fn is_irreducible(&self) -> bool {
        !self.is_bottom()
    }
}

impl<T: Sizeable + Ord + Clone + core::fmt::Debug> StateSize for Min<T> {
    fn count_elements(&self) -> u64 {
        u64::from(self.0.is_some())
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.as_ref().map_or(0, |v| v.payload_bytes(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_min() {
        let mut a = Min::new(5u64);
        assert!(a.join_assign(Min::new(3)));
        assert_eq!(a, Min::new(3));
        assert!(!a.join_assign(Min::new(4)));
    }

    #[test]
    fn bottom_is_absent() {
        let mut b = Min::<u64>::bottom();
        assert!(b.is_bottom());
        assert!(b.join_assign(Min::new(9)));
        assert_eq!(b, Min::new(9));
    }

    #[test]
    fn order_is_reversed() {
        assert!(Min::new(5u64).leq(&Min::new(3)));
        assert!(!Min::new(3u64).leq(&Min::new(5)));
        assert!(Min::<u64>::bottom().leq(&Min::new(5)));
    }

    #[test]
    fn ord_agrees_with_lattice() {
        let b = Min::<u64>::bottom();
        let lo = Min::new(9u64);
        let hi = Min::new(1u64);
        assert!(b < lo);
        assert!(lo < hi);
    }

    #[test]
    fn delta_on_dual_chain() {
        let a = Min::new(2u64);
        let b = Min::new(7u64);
        assert_eq!(a.delta(&b), a);
        assert!(b.delta(&a).is_bottom());
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        assert_eq!(Min::new(1u64).size_bytes(&m), 8);
        assert_eq!(Min::<u64>::bottom().size_bytes(&m), 0);
    }
}
