//! State/size accounting used by the evaluation (paper, §V).
//!
//! The paper measures synchronization cost in two units:
//!
//! * **elements/entries** — "for GCounter and GMap K% we count the number of
//!   map entries, while for GSet, the number of set elements" (Table I).
//!   This is `|⇓x|`, surfaced as [`StateSize::count_elements`].
//! * **bytes** — for the metadata study (Fig. 9: "each node identifier has
//!   size 20B") and the Retwis study (§V-C: tweet identifiers 31 B, content
//!   270 B). Byte sizes are computed against a [`SizeModel`] so experiments
//!   can dial identifier width exactly like the paper does.

use crate::ReplicaId;

/// Parameters of the byte-size model.
///
/// Sizes are *wire-model* sizes (what a reasonable serializer would emit),
/// not Rust in-memory sizes: the paper's byte numbers are transmission and
/// buffer-content measurements, independent of any host representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeModel {
    /// Bytes per replica/node identifier. Fig. 9 uses 20 B; elsewhere the
    /// exact value only scales results uniformly.
    pub id_bytes: u64,
    /// Bytes per sequence number / integer counter value.
    pub seq_bytes: u64,
}

impl SizeModel {
    /// Model used by the metadata experiment (Fig. 9): 20 B ids, 8 B
    /// sequence numbers.
    pub const fn paper_metadata() -> Self {
        SizeModel {
            id_bytes: 20,
            seq_bytes: 8,
        }
    }

    /// Compact default: 8 B ids, 8 B sequence numbers.
    pub const fn compact() -> Self {
        SizeModel {
            id_bytes: 8,
            seq_bytes: 8,
        }
    }

    /// Size of one version-vector entry (`id ↦ seq`).
    pub const fn vector_entry_bytes(&self) -> u64 {
        self.id_bytes + self.seq_bytes
    }
}

impl Default for SizeModel {
    fn default() -> Self {
        Self::compact()
    }
}

/// Wire size of payload *scalars* — set elements, map keys, register values.
///
/// Implemented for primitives, strings, tuples and [`ReplicaId`] (which is
/// sized by the model, so Fig. 9's 20 B identifiers apply to CRDT states
/// keyed by replica, like GCounter, as well as to protocol metadata).
pub trait Sizeable {
    /// Wire size in bytes under `model`.
    fn payload_bytes(&self, model: &SizeModel) -> u64;
}

macro_rules! impl_sizeable_fixed {
    ($($t:ty),* $(,)?) => {
        $(impl Sizeable for $t {
            #[inline]
            fn payload_bytes(&self, _model: &SizeModel) -> u64 {
                core::mem::size_of::<$t>() as u64
            }
        })*
    };
}

impl_sizeable_fixed!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char);

impl Sizeable for () {
    #[inline]
    fn payload_bytes(&self, _model: &SizeModel) -> u64 {
        0
    }
}

impl Sizeable for String {
    #[inline]
    fn payload_bytes(&self, _model: &SizeModel) -> u64 {
        self.len() as u64
    }
}

impl Sizeable for &str {
    #[inline]
    fn payload_bytes(&self, _model: &SizeModel) -> u64 {
        self.len() as u64
    }
}

impl Sizeable for ReplicaId {
    #[inline]
    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        model.id_bytes
    }
}

impl<A: Sizeable, B: Sizeable> Sizeable for (A, B) {
    #[inline]
    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.0.payload_bytes(model) + self.1.payload_bytes(model)
    }
}

impl<A: Sizeable, B: Sizeable, C: Sizeable> Sizeable for (A, B, C) {
    #[inline]
    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.0.payload_bytes(model) + self.1.payload_bytes(model) + self.2.payload_bytes(model)
    }
}

impl<T: Sizeable> Sizeable for Vec<T> {
    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.iter().map(|x| x.payload_bytes(model)).sum()
    }
}

impl<T: Sizeable> Sizeable for Option<T> {
    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        1 + self.as_ref().map_or(0, |x| x.payload_bytes(model))
    }
}

/// Size of a lattice *state* (and therefore of deltas and δ-groups, which
/// are themselves lattice states).
pub trait StateSize {
    /// The paper's element/entry metric: `|⇓self|`.
    fn count_elements(&self) -> u64;

    /// Wire size in bytes under `model`.
    fn size_bytes(&self, model: &SizeModel) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_scalars() {
        let m = SizeModel::default();
        assert_eq!(7u64.payload_bytes(&m), 8);
        assert_eq!(7u32.payload_bytes(&m), 4);
        assert_eq!(true.payload_bytes(&m), 1);
    }

    #[test]
    fn strings_size_by_length() {
        let m = SizeModel::default();
        assert_eq!("hello".payload_bytes(&m), 5);
        assert_eq!(String::from("hi").payload_bytes(&m), 2);
    }

    #[test]
    fn replica_ids_follow_the_model() {
        let paper = SizeModel::paper_metadata();
        assert_eq!(ReplicaId(3).payload_bytes(&paper), 20);
        assert_eq!(ReplicaId(3).payload_bytes(&SizeModel::compact()), 8);
        assert_eq!(paper.vector_entry_bytes(), 28);
    }

    #[test]
    fn tuples_and_containers_sum() {
        let m = SizeModel::default();
        assert_eq!((1u64, "ab").payload_bytes(&m), 10);
        assert_eq!(vec![1u32, 2, 3].payload_bytes(&m), 12);
        assert_eq!(Some(1u64).payload_bytes(&m), 9);
        assert_eq!(None::<u64>.payload_bytes(&m), 1);
    }
}
