//! The lexicographic product `C ⋉ A` with a **chain** first component.
//!
//! Order: `⟨c,a⟩ ⊑ ⟨d,b⟩ ⇔ c ⊏ d ∨ (c = d ∧ a ⊑ b)`. The first component
//! acts as a version/priority: a strictly newer version *replaces* the
//! second component wholesale, an equal version joins it. This is the
//! single-writer pattern of Cassandra counters and LWW registers
//! (Appendix B).
//!
//! The paper's Table III shows the lexicographic product is distributive —
//! and so has unique irredundant decompositions — **only when the first
//! component is a chain**; Fig. 13 exhibits `P(U) ⋉ P(U)` as a
//! counterexample with several distinct irredundant decompositions. The
//! bound `C: TotalOrder` encodes that side condition in the type system.
//!
//! Decomposition (Appendix C, with the quotient-sublattice refinement of
//! Table IV): `⇓⟨c,a⟩ = {c} × ⇓a`, except that `⟨c,⊥⟩` with `c ≠ ⊥` is
//! itself join-irreducible — reaching first component `c` requires an
//! element with first component `c`, and joins of such elements have second
//! component `⊥` only if one of them is `⟨c,⊥⟩`.

use crate::{Bottom, Decompose, Lattice, SizeModel, StateSize, TotalOrder};

/// Lexicographic pair: a chain `C` versioning a payload lattice `A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lex<C, A>(pub C, pub A);

impl<C, A> Lex<C, A> {
    /// Construct a lexicographic pair.
    pub fn new(version: C, payload: A) -> Self {
        Lex(version, payload)
    }

    /// The version (first, chain) component.
    pub fn version(&self) -> &C {
        &self.0
    }

    /// The payload (second) component.
    pub fn payload(&self) -> &A {
        &self.1
    }
}

impl<C: TotalOrder, A: Lattice> Lattice for Lex<C, A> {
    fn join_assign(&mut self, other: Self) -> bool {
        match self.0.cmp(&other.0) {
            core::cmp::Ordering::Less => {
                // Strictly newer version replaces the payload wholesale.
                *self = other;
                true
            }
            core::cmp::Ordering::Equal => self.1.join_assign(other.1),
            core::cmp::Ordering::Greater => false,
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match self.0.cmp(&other.0) {
            core::cmp::Ordering::Less => true,
            core::cmp::Ordering::Equal => self.1.leq(&other.1),
            core::cmp::Ordering::Greater => false,
        }
    }
}

impl<C: TotalOrder + Bottom, A: Bottom> Bottom for Lex<C, A> {
    fn bottom() -> Self {
        Lex(C::bottom(), A::bottom())
    }

    fn is_bottom(&self) -> bool {
        self.0.is_bottom() && self.1.is_bottom()
    }
}

impl<C, A> Decompose for Lex<C, A>
where
    C: TotalOrder + Bottom,
    A: Decompose,
{
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        if self.1.is_bottom() {
            // ⟨c,⊥⟩ with c ≠ ⊥ is join-irreducible (Table IV quotient
            // argument); ⟨⊥,⊥⟩ is bottom and decomposes to ∅.
            if !self.0.is_bottom() {
                f(self.clone());
            }
        } else {
            let c = &self.0;
            self.1.for_each_irreducible(&mut |a| f(Lex(c.clone(), a)));
        }
    }

    fn irreducible_count(&self) -> u64 {
        if self.1.is_bottom() {
            u64::from(!self.0.is_bottom())
        } else {
            self.1.irreducible_count()
        }
    }

    /// Case split on versions: a lower version contributes nothing, a
    /// higher version contributes everything, an equal version recurses
    /// into the payload (within the quotient `⟨c,·⟩`).
    fn delta(&self, other: &Self) -> Self {
        match self.0.cmp(&other.0) {
            core::cmp::Ordering::Less => Self::bottom(),
            core::cmp::Ordering::Greater => self.clone(),
            core::cmp::Ordering::Equal => {
                let d = self.1.delta(&other.1);
                if d.is_bottom() {
                    Self::bottom()
                } else {
                    Lex(self.0.clone(), d)
                }
            }
        }
    }

    fn is_irreducible(&self) -> bool {
        if self.1.is_bottom() {
            !self.0.is_bottom()
        } else {
            self.1.is_irreducible()
        }
    }
}

impl<C: StateSize, A: StateSize> StateSize for Lex<C, A> {
    fn count_elements(&self) -> u64 {
        // A lex pair transmits as one versioned unit plus its payload
        // irreducibles; count the payload (or one, for a bare version bump).
        self.1.count_elements().max(1)
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.size_bytes(model) + self.1.size_bytes(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_all, Max, SetLattice};

    type L = Lex<Max<u64>, SetLattice<&'static str>>;

    #[test]
    fn newer_version_replaces() {
        let mut a = L::new(Max::new(1), SetLattice::from_iter(["old", "stuff"]));
        assert!(a.join_assign(L::new(Max::new(2), SetLattice::from_iter(["new"]))));
        assert_eq!(a, L::new(Max::new(2), SetLattice::from_iter(["new"])));
    }

    #[test]
    fn equal_version_joins_payload() {
        let mut a = L::new(Max::new(2), SetLattice::from_iter(["x"]));
        assert!(a.join_assign(L::new(Max::new(2), SetLattice::from_iter(["y"]))));
        assert_eq!(a.payload(), &SetLattice::from_iter(["x", "y"]));
    }

    #[test]
    fn older_version_is_ignored() {
        let mut a = L::new(Max::new(3), SetLattice::from_iter(["x"]));
        assert!(!a.join_assign(L::new(Max::new(1), SetLattice::from_iter(["huge", "set"]))));
        assert_eq!(a.version(), &Max::new(3));
    }

    #[test]
    fn le_is_lexicographic() {
        let lo = L::new(Max::new(1), SetLattice::from_iter(["anything"]));
        let hi = L::new(Max::new(2), SetLattice::bottom());
        assert!(lo.leq(&hi));
        assert!(!hi.leq(&lo));
    }

    #[test]
    fn decompose_shares_version() {
        let a = L::new(Max::new(2), SetLattice::from_iter(["x", "y"]));
        let d = a.decompose();
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|p| p.version() == &Max::new(2)));
        assert!(d.iter().all(Decompose::is_irreducible));
        assert_eq!(join_all::<L, _>(d), a);
    }

    #[test]
    fn bare_version_is_irreducible() {
        // ⟨c,⊥⟩, c ≠ ⊥: the Table IV edge case.
        let bare = L::new(Max::new(4), SetLattice::bottom());
        assert!(bare.is_irreducible());
        assert_eq!(bare.decompose(), vec![bare.clone()]);
        assert_eq!(join_all::<L, _>(bare.decompose()), bare);
        assert!(L::bottom().decompose().is_empty());
    }

    #[test]
    fn delta_cases() {
        let newer = L::new(Max::new(3), SetLattice::from_iter(["a"]));
        let older = L::new(Max::new(2), SetLattice::from_iter(["b", "c"]));
        // Higher version: everything is new.
        assert_eq!(newer.delta(&older), newer);
        // Lower version: nothing to send.
        assert!(older.delta(&newer).is_bottom());
        // Equal version: payload difference under the shared version.
        let a = L::new(Max::new(3), SetLattice::from_iter(["a", "z"]));
        let d = a.delta(&newer);
        assert_eq!(d, L::new(Max::new(3), SetLattice::from_iter(["z"])));
        assert_eq!(d.join(newer.clone()), a.join(newer));
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        let a = L::new(Max::new(2), SetLattice::from_iter(["ab"]));
        assert_eq!(a.size_bytes(&m), 8 + 2);
        assert_eq!(a.count_elements(), 1);
        let bare = L::new(Max::new(2), SetLattice::<&str>::bottom());
        assert_eq!(bare.count_elements(), 1);
    }
}
