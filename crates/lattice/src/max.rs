//! The max chain lattice: any totally ordered type under `max` as join.
//!
//! Chains (booleans, naturals, timestamps, …) are the base case of every
//! CRDT composition in the paper (Appendix B): GCounter is `I ↪ ℕ` with ℕ
//! the max chain, version vectors are the same shape, LWW registers put a
//! chain first in a lexicographic pair. In a chain every non-bottom element
//! is join-irreducible, so `⇓c = {c}` (Appendix C, first rule).

use crate::{Bottom, Decompose, Lattice, SizeModel, Sizeable, StateSize, TotalOrder};

/// A totally ordered value as a join-semilattice with `⊔ = max`.
///
/// `⊥` is `T::default()`; for the common instantiations (`u64`, `bool`)
/// `default` is the least value of the type, which the constructor does not
/// verify but the law tests do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Max<T>(T);

impl<T: Ord + Clone + core::fmt::Debug + Default> Max<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Max(value)
    }

    /// The wrapped value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Consume, returning the wrapped value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: Ord + Clone + core::fmt::Debug + Default> Lattice for Max<T> {
    fn join_assign(&mut self, other: Self) -> bool {
        if other.0 > self.0 {
            self.0 = other.0;
            true
        } else {
            false
        }
    }

    fn leq(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl<T: Ord + Clone + core::fmt::Debug + Default> Bottom for Max<T> {
    fn bottom() -> Self {
        Max(T::default())
    }

    fn is_bottom(&self) -> bool {
        self.0 == T::default()
    }
}

impl<T: Ord + Clone + core::fmt::Debug + Default> TotalOrder for Max<T> {}

impl<T: Ord + Clone + core::fmt::Debug + Default> Decompose for Max<T> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        if !self.is_bottom() {
            f(self.clone());
        }
    }

    fn irreducible_count(&self) -> u64 {
        u64::from(!self.is_bottom())
    }

    fn delta(&self, other: &Self) -> Self {
        if self.leq(other) {
            Self::bottom()
        } else {
            self.clone()
        }
    }

    fn is_irreducible(&self) -> bool {
        !self.is_bottom()
    }
}

impl<T: Sizeable + Ord + Clone + core::fmt::Debug + Default> StateSize for Max<T> {
    fn count_elements(&self) -> u64 {
        u64::from(self.0 != T::default())
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.payload_bytes(model)
    }
}

/// Monotone counter helpers for the ubiquitous `Max<u64>`.
impl Max<u64> {
    /// The successor state (`self + 1`), used by counter δ-mutators.
    #[must_use]
    pub fn incremented(&self) -> Self {
        Max(self.0 + 1)
    }

    /// The state increased by `n`.
    #[must_use]
    pub fn plus(&self, n: u64) -> Self {
        Max(self.0 + n)
    }

    /// Raw counter value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl<T> From<T> for Max<T> {
    fn from(value: T) -> Self {
        Max(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_max() {
        let mut a = Max::new(3u64);
        assert!(a.join_assign(Max::new(5)));
        assert_eq!(a, Max::new(5));
        assert!(!a.join_assign(Max::new(4)));
        assert_eq!(a, Max::new(5));
    }

    #[test]
    fn le_is_numeric_order() {
        assert!(Max::new(2u64).leq(&Max::new(2)));
        assert!(Max::new(2u64).leq(&Max::new(3)));
        assert!(!Max::new(3u64).leq(&Max::new(2)));
    }

    #[test]
    fn bottom_is_default() {
        assert_eq!(Max::<u64>::bottom(), Max::new(0));
        assert!(Max::<u64>::bottom().is_bottom());
        assert!(!Max::new(1u64).is_bottom());
    }

    #[test]
    fn decomposition_is_singleton_or_empty() {
        assert_eq!(Max::new(5u64).decompose(), vec![Max::new(5)]);
        assert!(Max::<u64>::bottom().decompose().is_empty());
        assert_eq!(Max::new(5u64).irreducible_count(), 1);
    }

    #[test]
    fn delta_on_chain() {
        let a = Max::new(5u64);
        let b = Max::new(3u64);
        assert_eq!(a.delta(&b), a);
        assert!(b.delta(&a).is_bottom());
        assert!(a.delta(&a).is_bottom());
    }

    #[test]
    fn counter_helpers() {
        let a = Max::new(5u64);
        assert_eq!(a.incremented().value(), 6);
        assert_eq!(a.plus(10).value(), 15);
    }

    #[test]
    fn bool_chain() {
        let mut f = Max::new(false);
        assert!(f.join_assign(Max::new(true)));
        assert_eq!(f, Max::new(true));
        assert!(Max::<bool>::bottom().is_bottom());
    }

    #[test]
    fn state_size() {
        let m = SizeModel::default();
        assert_eq!(Max::new(5u64).size_bytes(&m), 8);
        assert_eq!(Max::new(5u64).count_elements(), 1);
        assert_eq!(Max::<u64>::bottom().count_elements(), 0);
    }
}
