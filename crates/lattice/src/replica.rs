//! Replica identifiers.

/// Identifier of a replica/node (`i ∈ I` in the paper).
///
/// A plain integer in memory; its *wire* size is governed by
/// [`crate::SizeModel::id_bytes`] so experiments can model, e.g., the 20 B
/// identifiers of the paper's Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(v: u32) -> Self {
        ReplicaId(v)
    }
}

impl From<usize> for ReplicaId {
    fn from(v: usize) -> Self {
        ReplicaId(u32::try_from(v).expect("replica index fits in u32")) // lint: allow(panic) — sim-only conversion; fleets are far below u32::MAX replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let r = ReplicaId::from(3usize);
        assert_eq!(r.to_string(), "r3");
        assert_eq!(r.index(), 3);
        assert_eq!(ReplicaId::from(3u32), r);
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(ReplicaId(1) < ReplicaId(2));
    }
}
