//! Vector clocks and dots.
//!
//! A vector clock `I ↪ ℕ` is itself a lattice — the map composition over
//! the max chain, the very shape of a GCounter (paper, Fig. 2a). The
//! synchronization baselines of §V use it as *metadata*: Scuttlebutt's
//! summary vectors, the op-based middleware's causality tags, and
//! Scuttlebutt-GC's knowledge matrix. Keeping it in the lattice crate lets
//! the same decomposition/size machinery measure metadata exactly like CRDT
//! payload.

use crate::{Bottom, Decompose, Lattice, MapLattice, Max, ReplicaId, SizeModel, StateSize};

/// A single event identifier: the `⟨i, s⟩ ∈ I × ℕ` version pairs of
/// Scuttlebutt (§V-B) and of op-based causal delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dot {
    /// The replica that produced the event.
    pub replica: ReplicaId,
    /// Its per-replica sequence number, starting at 1.
    pub seq: u64,
}

impl Dot {
    /// Construct a dot.
    pub fn new(replica: ReplicaId, seq: u64) -> Self {
        Dot { replica, seq }
    }

    /// Wire size: one identifier plus one sequence number.
    pub fn size_bytes(&self, model: &SizeModel) -> u64 {
        model.vector_entry_bytes()
    }
}

impl core::fmt::Display for Dot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.replica, self.seq)
    }
}

/// A vector clock: `I ↪ ℕ` with pointwise max as join.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VClock(MapLattice<ReplicaId, Max<u64>>);

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock(MapLattice::new())
    }

    /// The sequence number known for `replica` (0 if none).
    pub fn get(&self, replica: ReplicaId) -> u64 {
        self.0.get(&replica).map_or(0, |m| m.value())
    }

    /// Advance `replica`'s entry by one, returning the new [`Dot`].
    pub fn bump(&mut self, replica: ReplicaId) -> Dot {
        let next = self.get(replica) + 1;
        self.0.join_entry(replica, Max::new(next));
        Dot::new(replica, next)
    }

    /// Record `dot` (and everything before it from the same replica, as
    /// vector clocks summarize contiguous prefixes).
    pub fn observe(&mut self, dot: Dot) -> bool {
        self.0.join_entry(dot.replica, Max::new(dot.seq))
    }

    /// Does the clock already cover `dot`?
    pub fn contains(&self, dot: &Dot) -> bool {
        self.get(dot.replica) >= dot.seq
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the zero clock?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate `(replica, seq)` pairs in replica order.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, u64)> + '_ {
        self.0.iter().map(|(r, m)| (*r, m.value()))
    }

    /// The dots in `self` that `other` has not seen: for each replica, the
    /// sequence range `(other[r], self[r]]`.
    ///
    /// This is the reconciliation core of Scuttlebutt: the reply to a
    /// received summary vector is exactly these missing versions.
    pub fn dots_after<'a>(&'a self, other: &'a VClock) -> impl Iterator<Item = Dot> + 'a {
        self.iter().flat_map(move |(r, mine)| {
            let theirs = other.get(r);
            (theirs + 1..=mine).map(move |s| Dot::new(r, s))
        })
    }
}

impl FromIterator<(ReplicaId, u64)> for VClock {
    fn from_iter<I: IntoIterator<Item = (ReplicaId, u64)>>(iter: I) -> Self {
        VClock(iter.into_iter().map(|(r, s)| (r, Max::new(s))).collect())
    }
}

impl Lattice for VClock {
    fn join_assign(&mut self, other: Self) -> bool {
        self.0.join_assign(other.0)
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0)
    }
}

impl Bottom for VClock {
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.0.is_bottom()
    }
}

impl Decompose for VClock {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        self.0.for_each_irreducible(&mut |m| f(VClock(m)));
    }

    fn irreducible_count(&self) -> u64 {
        self.0.irreducible_count()
    }

    fn delta(&self, other: &Self) -> Self {
        VClock(self.0.delta(&other.0))
    }

    fn is_irreducible(&self) -> bool {
        self.0.is_irreducible()
    }
}

impl StateSize for VClock {
    fn count_elements(&self) -> u64 {
        self.0.count_elements()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0.size_bytes(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn bump_produces_sequential_dots() {
        let mut c = VClock::new();
        assert_eq!(c.bump(A), Dot::new(A, 1));
        assert_eq!(c.bump(A), Dot::new(A, 2));
        assert_eq!(c.bump(B), Dot::new(B, 1));
        assert_eq!(c.get(A), 2);
    }

    #[test]
    fn observe_and_contains() {
        let mut c = VClock::new();
        assert!(c.observe(Dot::new(A, 3)));
        assert!(c.contains(&Dot::new(A, 2)));
        assert!(c.contains(&Dot::new(A, 3)));
        assert!(!c.contains(&Dot::new(A, 4)));
        assert!(!c.contains(&Dot::new(B, 1)));
        // Observing an older dot does not inflate.
        assert!(!c.observe(Dot::new(A, 1)));
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = VClock::from_iter([(A, 3), (B, 1)]);
        let b = VClock::from_iter([(B, 4)]);
        let j = a.join(b);
        assert_eq!(j.get(A), 3);
        assert_eq!(j.get(B), 4);
    }

    #[test]
    fn dots_after_yields_missing_range() {
        let mine = VClock::from_iter([(A, 4), (B, 1)]);
        let theirs = VClock::from_iter([(A, 2)]);
        let missing: Vec<Dot> = mine.dots_after(&theirs).collect();
        assert_eq!(
            missing,
            vec![Dot::new(A, 3), Dot::new(A, 4), Dot::new(B, 1)]
        );
        // Symmetric check: nothing missing when dominated.
        assert_eq!(theirs.dots_after(&mine).count(), 0);
    }

    #[test]
    fn lattice_structure() {
        let small = VClock::from_iter([(A, 1)]);
        let big = VClock::from_iter([(A, 2), (B, 1)]);
        assert!(small.leq(&big));
        assert!(!big.leq(&small));
        assert_eq!(big.irreducible_count(), 2);
        assert_eq!(big.delta(&small), VClock::from_iter([(A, 2), (B, 1)]));
    }

    #[test]
    fn metadata_size_matches_model() {
        let model = SizeModel::paper_metadata();
        let c = VClock::from_iter([(A, 1), (B, 2)]);
        // Two entries × (20 B id + 8 B seq).
        assert_eq!(c.size_bytes(&model), 56);
        assert_eq!(Dot::new(A, 1).size_bytes(&model), 28);
    }
}
