//! # crdt-lattice
//!
//! Join-semilattice foundations for state-based CRDTs, implementing the
//! lattice theory of *"Efficient Synchronization of State-based CRDTs"*
//! (Enes, Almeida, Baquero, Leitão — ICDE 2019):
//!
//! * the [`Lattice`]/[`Bottom`] traits (§II);
//! * **irredundant join decompositions** `⇓x` and the **optimal delta**
//!   `Δ(a, b) = ⊔{ y ∈ ⇓a | y ⋢ b }` (§III, [`Decompose`]);
//! * every lattice composition of Appendix B with its Appendix C
//!   decomposition rule: chains ([`Max`], [`Min`]), products ([`Pair`]),
//!   lexicographic products ([`Lex`], first component statically required
//!   to be a chain — the distributivity condition of Table III), linear
//!   sums ([`Sum`]), finite functions ([`MapLattice`]), powersets
//!   ([`SetLattice`]) and maximal-element antichains ([`Antichain`]);
//! * vector clocks and dots ([`VClock`], [`Dot`]) used as protocol
//!   metadata by the synchronization baselines;
//! * the element/byte accounting of the paper's evaluation
//!   ([`StateSize`], [`SizeModel`]);
//! * a reusable law harness ([`testing`]) asserting the algebraic laws the
//!   paper's correctness argument rests on.
//!
//! ## Example: optimal deltas on a GCounter-shaped lattice
//!
//! ```
//! use crdt_lattice::{Decompose, Lattice, MapLattice, Max, ReplicaId};
//!
//! type GCounter = MapLattice<ReplicaId, Max<u64>>;
//!
//! let a = GCounter::from_iter([(ReplicaId(0), Max::new(5)), (ReplicaId(1), Max::new(7))]);
//! let b = GCounter::from_iter([(ReplicaId(0), Max::new(5)), (ReplicaId(1), Max::new(3))]);
//!
//! // ⇓a = {{r0 ↦ 5}, {r1 ↦ 7}}  (Example 2 of the paper)
//! assert_eq!(a.decompose().len(), 2);
//!
//! // Δ(a, b): only r1's entry is news to b.
//! let d = a.delta(&b);
//! assert_eq!(d, GCounter::singleton(ReplicaId(1), Max::new(7)));
//! assert_eq!(d.join(b.clone()), a.join(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod antichain;
pub mod bytes;
pub mod codec;
mod decompose;
mod lex;
mod map;
mod max;
mod min;
mod pair;
mod replica;
mod set;
mod size;
mod sum;
pub mod testing;
mod traits;
mod vclock;

pub use antichain::{Antichain, Poset};
pub use bytes::{BufferPool, Bytes};
pub use codec::{CodecError, WireEncode};
pub use decompose::{optimal_delta, Decompose};
pub use lex::Lex;
pub use map::MapLattice;
pub use max::Max;
pub use min::Min;
pub use pair::Pair;
pub use replica::ReplicaId;
pub use set::SetLattice;
pub use size::{SizeModel, Sizeable, StateSize};
pub use sum::Sum;
pub use traits::{join_all, Bottom, Lattice, TotalOrder};
pub use vclock::{Dot, VClock};
