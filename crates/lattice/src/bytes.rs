//! Shared immutable byte buffers and reusable encode scratch.
//!
//! The wire path moves encoded payloads through envelopes, batches,
//! runners and stores. With `Vec<u8>` payloads every hand-off is a copy
//! and every envelope is its own heap allocation — at the paper's Retwis
//! scale (30 K objects per node) the simulator's profile becomes
//! allocation, not protocol. This module provides the two pieces that
//! make the hot path zero-copy (the workspace is offline, so both are
//! hand-rolled rather than pulled from the `bytes` crate). It lives in
//! the lattice crate — below the codec — so that
//! [`WireEncode::encode_frame`](crate::WireEncode::encode_frame) can
//! return shared frames and the flat causal states in `crdt-types` can
//! cache their encoded frame without a dependency cycle; `crdt_sync`
//! re-exports both types from its historical `bytes` path:
//!
//! * [`Bytes`] — an `Arc<[u8]>`-backed slice: cloning is a reference
//!   count bump, and [`Bytes::slice`] carves sub-ranges (an envelope
//!   payload out of a batch frame) without copying;
//! * [`BufferPool`] — recycled `Vec<u8>` encode scratch. Engines encode
//!   a whole sync step into one scratch buffer, freeze it into a single
//!   shared [`Bytes`] allocation, and the scratch (capacity intact)
//!   returns to the pool for the next round — steady-state rounds stop
//!   allocating for payload bytes altogether.

use std::ops::{Deref, Range};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, sliceable, immutable byte buffer
/// (`Arc<[u8]>`-backed).
///
/// Equality, ordering and hashing are by content, so swapping a
/// `Vec<u8>` payload field for `Bytes` preserves derived semantics.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

/// The shared backing of every empty [`Bytes`]: empty payloads are
/// common (acks, probes) and must not cost an allocation each.
fn empty_arc() -> &'static Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..]))
}

impl Bytes {
    /// An empty buffer (no allocation beyond a process-wide shared one).
    pub fn new() -> Self {
        Bytes {
            data: Arc::clone(empty_arc()),
            start: 0,
            len: 0,
        }
    }

    /// Copy a slice into a fresh shared buffer (one allocation).
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            return Bytes::new();
        }
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            len: bytes.len(),
        }
    }

    /// Length of the viewed range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the viewed range empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// If `range` is out of bounds of this view.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds of a {}-byte view",
            self.len
        );
        if range.is_empty() {
            return Bytes::new();
        }
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Does `sub` point into this view's memory? When it does, returns
    /// `sub`'s offset relative to the view start — the basis for
    /// zero-copy decoding: a decoder holding the frame as `Bytes` and a
    /// cursor `&[u8]` into it can turn any cursor sub-slice back into a
    /// shared [`Bytes::slice`] instead of copying it out.
    pub fn offset_of(&self, sub: &[u8]) -> Option<usize> {
        let view = self.as_slice().as_ptr() as usize;
        let ptr = sub.as_ptr() as usize;
        (ptr >= view && ptr + sub.len() <= view + self.len).then(|| ptr - view)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl core::hash::Hash for Bytes {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bytes({} B)", self.len)
    }
}

/// Recycled encode scratch buffers.
///
/// [`BufferPool::take`] hands out a cleared `Vec<u8>` whose capacity
/// survived earlier rounds; [`BufferPool::freeze`] converts the filled
/// scratch into one shared [`Bytes`] allocation and returns the scratch
/// to the pool. Buffers rotate round-robin (taken from the front,
/// returned to the back), so a pool shared by alternating phases keeps
/// every buffer warm instead of growing one and never touching the rest.
///
/// Pools are plain mutable state — per worker, per node, or per replica;
/// they are deliberately not synchronized (the runners' phase model
/// already gives each worker exclusive state).
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
}

impl BufferPool {
    /// An empty pool (buffers materialize on first use).
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// A cleared scratch buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.is_empty() {
            true => Vec::new(),
            false => self.free.remove(0),
        }
    }

    /// Return a scratch buffer to the pool (cleared, capacity kept).
    pub fn give(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Freeze `scratch` into one shared [`Bytes`] and recycle the
    /// scratch. Empty scratch freezes to the shared empty buffer — no
    /// allocation.
    pub fn freeze(&mut self, scratch: Vec<u8>) -> Bytes {
        let frame = Bytes::copy_from_slice(&scratch);
        self.give(scratch);
        frame
    }

    /// Buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_content_equal() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        // The sub-view shares the parent's allocation.
        assert_eq!(b.offset_of(&s), Some(1));
        let ss = s.slice(1..2);
        assert_eq!(&ss[..], &[3]);
        assert_eq!(b.offset_of(&ss), Some(2));
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![9u8, 8]);
        let b = Bytes::from(vec![0u8, 9, 8, 1]).slice(1..3);
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8, 8]);
        assert_ne!(a, Bytes::new());
        assert_eq!(Bytes::new(), Bytes::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_are_checked() {
        let _ = Bytes::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn offset_of_rejects_foreign_slices() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let other = [1u8, 2, 3];
        assert_eq!(b.offset_of(&other), None);
        let cursor = &b.as_slice()[2..];
        assert_eq!(b.offset_of(cursor), Some(2));
    }

    #[test]
    fn pool_recycles_capacity() {
        let mut pool = BufferPool::new();
        let mut s = pool.take();
        s.extend_from_slice(&[1, 2, 3]);
        let cap = s.capacity();
        let frame = pool.freeze(s);
        assert_eq!(&frame[..], &[1, 2, 3]);
        assert_eq!(pool.pooled(), 1);
        let s2 = pool.take();
        assert!(s2.is_empty());
        assert_eq!(s2.capacity(), cap, "capacity survives the freeze");
    }

    #[test]
    fn empty_freeze_shares_the_static_empty() {
        let mut pool = BufferPool::new();
        let scratch = pool.take();
        let frame = pool.freeze(scratch);
        assert!(frame.is_empty());
    }

    /// An empty slice taken exactly at the end of the view is legal and
    /// collapses to the shared empty buffer, not a dangling sub-view.
    #[test]
    fn empty_slice_at_end_is_the_empty_buffer() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let end = b.slice(3..3);
        assert!(end.is_empty());
        assert_eq!(end, Bytes::new());
        // It does not alias the parent: offset_of on the shared empty
        // backing finds nothing inside `b`.
        assert_eq!(b.offset_of(&end), None);
        // Same for an empty slice of an empty buffer.
        assert!(Bytes::new().slice(0..0).is_empty());
    }

    /// A full-range slice is content-identical to the original and still
    /// shares the original's allocation (identity, not a copy).
    #[test]
    fn full_range_slice_is_identity() {
        let b = Bytes::from(vec![5u8, 6, 7, 8]);
        let whole = b.slice(0..b.len());
        assert_eq!(whole, b);
        assert_eq!(whole.len(), b.len());
        assert_eq!(
            b.offset_of(&whole),
            Some(0),
            "full-range slice shares the parent allocation"
        );
        // Slicing the identity again behaves like slicing the parent.
        assert_eq!(whole.slice(1..3), b.slice(1..3));
    }

    /// A pool behind a mutex serves concurrent checkout/freeze/return
    /// from many threads without losing or corrupting buffers — the
    /// shape `crdt-net` uses when socket readers and the anti-entropy
    /// scheduler share one node's pool.
    #[test]
    fn pool_survives_concurrent_checkout_and_return() {
        use std::sync::{Arc, Mutex};

        let pool = Arc::new(Mutex::new(BufferPool::new()));
        let threads = 8;
        let rounds = 200;
        let frames: Vec<_> = (0..threads)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut produced = Vec::new();
                    for i in 0..rounds {
                        let mut scratch = pool.lock().unwrap().take();
                        assert!(scratch.is_empty(), "pooled scratch arrives cleared");
                        let marker = (t * rounds + i) as u32;
                        scratch.extend_from_slice(&marker.to_le_bytes());
                        let frame = pool.lock().unwrap().freeze(scratch);
                        produced.push((marker, frame));
                        // Every other round, also cycle a raw give/take.
                        if i % 2 == 0 {
                            let extra = pool.lock().unwrap().take();
                            pool.lock().unwrap().give(extra);
                        }
                    }
                    produced
                })
            })
            .collect();
        let mut total = 0;
        for handle in frames {
            for (marker, frame) in handle.join().unwrap() {
                assert_eq!(
                    frame.as_slice(),
                    marker.to_le_bytes(),
                    "frozen frames keep their content under contention"
                );
                total += 1;
            }
        }
        assert_eq!(total, threads * rounds);
        let pooled = pool.lock().unwrap().pooled();
        assert!(
            pooled >= 1 && pooled <= threads * 2,
            "pool holds a bounded set of recycled buffers, got {pooled}"
        );
    }
}
