//! Irredundant join decompositions and optimal deltas (paper, §III and
//! Appendices A–C).
//!
//! A state `x` is **join-irreducible** if it cannot be obtained as the join
//! of a finite set of states not containing it (Definition 1). For a
//! distributive lattice satisfying the descending chain condition, every
//! element has a *unique irredundant* join decomposition `⇓x` — the maximals
//! of the join-irreducibles below `x` (Birkhoff; Propositions 1–2).
//!
//! From `⇓` the paper derives the **optimal delta** between two states
//! (§III-B):
//!
//! ```text
//! Δ(a, b) = ⊔ { y ∈ ⇓a | y ⋢ b }
//! ```
//!
//! which is the *minimum* state that joined with `b` yields `a ⊔ b`. Optimal
//! δ-mutators follow as `mδ(x) = Δ(m(x), x)`, and the RR optimization of
//! Algorithm 1 is `d' = Δ(d, xᵢ)` applied to every received δ-group.

use crate::Bottom;

/// Lattices supporting the unique irredundant join decomposition `⇓x`.
///
/// Implementations follow the per-composition rules of Appendix C; see the
/// table below (where `C` is a chain, `U` an unordered set, `A`, `B`
/// lattices and `P` a poset):
///
/// ```text
/// c ∈ C:          ⇓c      = {c}                      (c ≠ ⊥)
/// ⟨a,b⟩ ∈ A×B:    ⇓⟨a,b⟩  = ⇓a × {⊥} ∪ {⊥} × ⇓b
/// ⟨c,a⟩ ∈ C⋉A:    ⇓⟨c,a⟩  = {c} × ⇓a                 (plus ⟨c,⊥⟩ if a = ⊥ ≠ c)
/// Left a ∈ A⊕B:   ⇓Left a  = { Left v | v ∈ ⇓a }
/// Right b ∈ A⊕B:  ⇓Right b = { Right v | v ∈ ⇓b }    (plus Right ⊥ if b = ⊥)
/// f ∈ U↪A:        ⇓f      = { {k ↦ v} | k ∈ dom f, v ∈ ⇓f(k) }
/// s ∈ P(U):       ⇓s      = { {e} | e ∈ s }
/// s ∈ M(P):       ⇓s      = { {e} | e ∈ s }
/// ```
///
/// Laws (checked by [`crate::testing::check_decompose_laws`]):
///
/// * **reconstruction**: `⊔ ⇓x = x`
/// * **irredundancy**: for every `y ∈ ⇓x`, `⊔ (⇓x ∖ {y}) ⊏ x`
/// * **irreducibility**: every `y ∈ ⇓x` satisfies `⇓y = {y}`
/// * **delta correctness**: `Δ(a,b) ⊔ b = a ⊔ b`
/// * **delta minimality**: `c ⊔ b = a ⊔ b ⇒ Δ(a,b) ⊑ c`
pub trait Decompose: Bottom {
    /// Visit every element of `⇓self` exactly once.
    ///
    /// The visitor style avoids allocating the decomposition when the caller
    /// only folds over it (as [`Decompose::delta`] does). `⇓⊥ = ∅`, so the
    /// visitor is never called on bottom.
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self));

    /// Materialize `⇓self` as a vector.
    fn decompose(&self) -> Vec<Self> {
        let mut out = Vec::new();
        self.for_each_irreducible(&mut |y| out.push(y));
        out
    }

    /// `|⇓self|` — the number of join-irreducibles in the decomposition.
    ///
    /// This is exactly the paper's transmission/memory metric: "number of
    /// entries in the map" for GCounter/GMap and "number of elements in the
    /// set" for GSet (Table I). Override with a closed form when available.
    fn irreducible_count(&self) -> u64 {
        let mut n = 0;
        self.for_each_irreducible(&mut |_| n += 1);
        n
    }

    /// The optimal delta `Δ(self, other) = ⊔ { y ∈ ⇓self | y ⋢ other }`.
    ///
    /// `Δ(a,b)` is the least state that, joined with `b`, produces `a ⊔ b`.
    /// The generic implementation folds over the decomposition; compositions
    /// override it with direct recursive forms that avoid materializing
    /// irreducibles (e.g. set difference for powersets).
    fn delta(&self, other: &Self) -> Self {
        let mut acc = Self::bottom();
        self.for_each_irreducible(&mut |y| {
            if !y.leq(other) {
                acc.join_assign(y);
            }
        });
        acc
    }

    /// Is `self` itself join-irreducible (`self ∈ J(L)`)?
    ///
    /// Default: the decomposition is the singleton `{self}`.
    fn is_irreducible(&self) -> bool {
        let mut n = 0u32;
        let mut only_self = true;
        self.for_each_irreducible(&mut |y| {
            n += 1;
            if y != *self {
                only_self = false;
            }
        });
        n == 1 && only_self
    }
}

/// Derive the optimal δ-mutator output from a full mutator application
/// (paper §III-B: `mδ(x) = Δ(m(x), x)`).
///
/// `before` is the state prior to the mutation, `after` the state the full
/// mutator produced. The result is the smallest delta `d` with
/// `d ⊔ before = after` (mutators are inflations, so `after ⊒ before`).
pub fn optimal_delta<L: Decompose>(after: &L, before: &L) -> L {
    after.delta(before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_all, Max, SetLattice};

    #[test]
    fn optimal_delta_matches_manual() {
        let mut before: SetLattice<u32> = SetLattice::bottom();
        before.insert(1);
        before.insert(2);
        let mut after = before.clone();
        after.insert(3);
        let d = optimal_delta(&after, &before);
        assert_eq!(d, SetLattice::from_iter([3]));
    }

    #[test]
    fn delta_of_bottom_is_bottom() {
        let a: Max<u64> = Max::bottom();
        let b = Max::new(7);
        assert!(a.delta(&b).is_bottom());
        assert!(a.delta(&a).is_bottom());
    }

    #[test]
    fn reconstruction_via_default_visitor() {
        let s = SetLattice::from_iter(["a", "b", "c"]);
        let rebuilt: SetLattice<&str> = join_all(s.decompose());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn is_irreducible_on_singletons() {
        assert!(SetLattice::from_iter([1]).is_irreducible());
        assert!(!SetLattice::from_iter([1, 2]).is_irreducible());
        assert!(!SetLattice::<u32>::bottom().is_irreducible());
    }
}
