//! The finite-function lattice `U ↪ A`: maps from keys to a value lattice.
//!
//! This is the composition behind GCounter (`I ↪ ℕ`, paper Fig. 2a), GMap,
//! PNCounter (`I ↪ ℕ×ℕ`), version vectors, and the Retwis object store.
//! Join is pointwise, a missing key reads as `⊥`, and the decomposition rule
//! (Appendix C) is
//!
//! ```text
//! ⇓f = { {k ↦ v} | k ∈ dom f, v ∈ ⇓f(k) }
//! ```
//!
//! **Canonical-form invariant:** no stored value is `⊥`. `{k ↦ ⊥}` and the
//! map without `k` denote the same lattice element; keeping only the latter
//! makes `Eq` coincide with lattice equality. All mutating entry points
//! normalize.

use std::collections::BTreeMap;

use crate::{Bottom, Decompose, Lattice, SizeModel, Sizeable, StateSize};

/// A finite map into a lattice, itself a lattice under pointwise join.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MapLattice<K: Ord, V>(BTreeMap<K, V>);

impl<K: Ord, V> Default for MapLattice<K, V> {
    fn default() -> Self {
        MapLattice(BTreeMap::new())
    }
}

impl<K, V> MapLattice<K, V>
where
    K: Ord + Clone + core::fmt::Debug,
    V: Bottom,
{
    /// The empty map (`⊥`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the value at `k`; `None` means `⊥`.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.0.get(k)
    }

    /// Read the value at `k`, materializing `⊥` for missing keys.
    pub fn get_or_bottom(&self, k: &K) -> V {
        self.0.get(k).cloned().unwrap_or_else(V::bottom)
    }

    /// Join `v` into the entry at `k` (the map-level `join` restricted to a
    /// single key). Returns `true` on strict inflation.
    pub fn join_entry(&mut self, k: K, v: V) -> bool {
        if v.is_bottom() {
            return false;
        }
        match self.0.entry(k) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(v);
                true
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().join_assign(v),
        }
    }

    /// Apply a mutation to the entry at `k` (starting from `⊥` if missing)
    /// and return the resulting **map-level delta** `{k ↦ d}` where `d` is
    /// the delta returned by `f`.
    ///
    /// This is how δ-mutators of composed CRDTs are built: the entry-level
    /// δ-mutator runs inside `f` and the map re-wraps its delta under the
    /// same key (the paper's `incδᵢ(p) = {i ↦ p(i)+1}` is exactly this for
    /// GCounter).
    ///
    /// The entry is removed again if the mutation left it at `⊥`
    /// (preserving the canonical-form invariant).
    #[must_use]
    pub fn mutate_entry(&mut self, k: K, f: impl FnOnce(&mut V) -> V) -> Self {
        let mut slot = self.0.remove(&k).unwrap_or_else(V::bottom);
        let delta = f(&mut slot);
        if !slot.is_bottom() {
            self.0.insert(k.clone(), slot);
        }
        if delta.is_bottom() {
            Self::new()
        } else {
            let mut out = BTreeMap::new();
            out.insert(k, delta);
            MapLattice(out)
        }
    }

    /// Build a singleton map `{k ↦ v}` (normalizing `⊥` to the empty map).
    pub fn singleton(k: K, v: V) -> Self {
        let mut m = BTreeMap::new();
        if !v.is_bottom() {
            m.insert(k, v);
        }
        MapLattice(m)
    }

    /// Number of (non-`⊥`) entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the map empty (`⊥`)?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Does `k` have a non-`⊥` value?
    pub fn contains_key(&self, k: &K) -> bool {
        self.0.contains_key(k)
    }

    /// Iterate over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.0.iter()
    }

    /// Iterate over keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.0.keys()
    }

    /// Iterate over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.0.values()
    }
}

impl<K, V> FromIterator<(K, V)> for MapLattice<K, V>
where
    K: Ord + Clone + core::fmt::Debug,
    V: Bottom,
{
    /// Collects entries, **joining** values on duplicate keys and dropping
    /// `⊥` values (canonical form).
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (k, v) in iter {
            m.join_entry(k, v);
        }
        m
    }
}

impl<K, V> IntoIterator for MapLattice<K, V>
where
    K: Ord,
{
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<K, V> Lattice for MapLattice<K, V>
where
    K: Ord + Clone + core::fmt::Debug,
    V: Bottom,
{
    fn join_assign(&mut self, other: Self) -> bool {
        let mut inflated = false;
        for (k, v) in other.0 {
            inflated |= self.join_entry(k, v);
        }
        inflated
    }

    fn leq(&self, other: &Self) -> bool {
        // Canonical form ⇒ a stored value is never ⊥, so a key missing from
        // `other` immediately refutes the order.
        self.0
            .iter()
            .all(|(k, v)| other.0.get(k).is_some_and(|w| v.leq(w)))
    }
}

impl<K, V> Bottom for MapLattice<K, V>
where
    K: Ord + Clone + core::fmt::Debug,
    V: Bottom,
{
    fn bottom() -> Self {
        Self::new()
    }

    fn is_bottom(&self) -> bool {
        self.0.is_empty()
    }
}

impl<K, V> Decompose for MapLattice<K, V>
where
    K: Ord + Clone + core::fmt::Debug,
    V: Decompose,
{
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        for (k, v) in &self.0 {
            v.for_each_irreducible(&mut |w| {
                let mut m = BTreeMap::new();
                m.insert(k.clone(), w);
                f(MapLattice(m));
            });
        }
    }

    fn irreducible_count(&self) -> u64 {
        self.0.values().map(Decompose::irreducible_count).sum()
    }

    /// Per-key recursion: `Δ(f, g) = { k ↦ Δ(f(k), g(k)) | k ∈ dom f }`
    /// with `g(k) = ⊥` for missing keys and `⊥` results dropped.
    fn delta(&self, other: &Self) -> Self {
        let mut out = BTreeMap::new();
        for (k, v) in &self.0 {
            let d = match other.0.get(k) {
                Some(w) => v.delta(w),
                None => v.clone(),
            };
            if !d.is_bottom() {
                out.insert(k.clone(), d);
            }
        }
        MapLattice(out)
    }

    fn is_irreducible(&self) -> bool {
        self.0.len() == 1
            && self
                .0
                .values()
                .next()
                .is_some_and(Decompose::is_irreducible)
    }
}

impl<K, V> StateSize for MapLattice<K, V>
where
    K: Ord + Clone + core::fmt::Debug + Sizeable,
    V: Bottom + StateSize,
{
    /// Paper metric: for flat value lattices (GCounter, GMap over
    /// registers) this is the number of map entries; for nested lattices it
    /// generalizes to the total irreducible count.
    fn count_elements(&self) -> u64 {
        self.0.values().map(StateSize::count_elements).sum()
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        self.0
            .iter()
            .map(|(k, v)| k.payload_bytes(model) + v.size_bytes(model))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_all, Max};

    type Counter = MapLattice<&'static str, Max<u64>>;

    #[test]
    fn join_is_pointwise_max() {
        // GCounter join (Fig. 2a): per-key max.
        let a = Counter::from_iter([("a", Max::new(5)), ("b", Max::new(1))]);
        let b = Counter::from_iter([("b", Max::new(7))]);
        let j = a.join(b);
        assert_eq!(j.get(&"a"), Some(&Max::new(5)));
        assert_eq!(j.get(&"b"), Some(&Max::new(7)));
    }

    #[test]
    fn le_handles_missing_keys() {
        let small = Counter::from_iter([("a", Max::new(3))]);
        let big = Counter::from_iter([("a", Max::new(5)), ("b", Max::new(1))]);
        assert!(small.leq(&big));
        assert!(!big.leq(&small));
        assert!(Counter::bottom().leq(&small));
    }

    #[test]
    fn canonical_form_drops_bottoms() {
        let m = Counter::from_iter([("a", Max::bottom())]);
        assert!(m.is_bottom());
        assert_eq!(m, Counter::bottom());
        assert_eq!(Counter::singleton("a", Max::bottom()), Counter::bottom());
    }

    #[test]
    fn mutate_entry_returns_map_delta() {
        // incδ for a GCounter: {i ↦ p(i)+1}.
        let mut p = Counter::from_iter([("a", Max::new(4))]);
        let d = p.mutate_entry("a", |v| {
            let next = v.incremented();
            v.join_assign(next);
            next
        });
        assert_eq!(d, Counter::singleton("a", Max::new(5)));
        assert_eq!(p.get(&"a"), Some(&Max::new(5)));
    }

    #[test]
    fn decomposition_is_per_entry() {
        // Example: ⇓{A5, B7} = {{A5}, {B7}} (P4 of Example 2).
        let p = Counter::from_iter([("A", Max::new(5)), ("B", Max::new(7))]);
        let d = p.decompose();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&Counter::singleton("A", Max::new(5))));
        assert!(d.contains(&Counter::singleton("B", Max::new(7))));
        assert_eq!(join_all::<Counter, _>(d), p);
    }

    #[test]
    fn delta_recurses_per_key() {
        let a = Counter::from_iter([("A", Max::new(5)), ("B", Max::new(7)), ("C", Max::new(2))]);
        let b = Counter::from_iter([("A", Max::new(5)), ("B", Max::new(3))]);
        let d = a.delta(&b);
        assert_eq!(
            d,
            Counter::from_iter([("B", Max::new(7)), ("C", Max::new(2))])
        );
        assert_eq!(d.join(b.clone()), a.join(b));
    }

    #[test]
    fn nested_maps_decompose_deeply() {
        type Nested = MapLattice<u8, MapLattice<u8, Max<u64>>>;
        let n = Nested::from_iter([(
            1,
            MapLattice::from_iter([(10, Max::new(2)), (11, Max::new(3))]),
        )]);
        assert_eq!(n.irreducible_count(), 2);
        assert_eq!(n.decompose().len(), 2);
        assert!(n.decompose().iter().all(Decompose::is_irreducible));
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        let p = MapLattice::<u32, Max<u64>>::from_iter([(1, Max::new(5)), (2, Max::new(9))]);
        assert_eq!(p.count_elements(), 2);
        assert_eq!(p.size_bytes(&m), 2 * (4 + 8));
    }
}
