//! Core lattice traits: [`Lattice`], [`Bottom`] and the [`TotalOrder`]
//! marker.
//!
//! A state-based CRDT is a triple `(L, ⊑, ⊔)` where `L` is a
//! join-semilattice, `⊑` a partial order and `⊔` a binary join computing the
//! least upper bound of any two elements (paper, §II). The partial order is
//! always derivable from the join: `x ⊑ y ⇔ x ⊔ y = y`, but implementations
//! provide a direct (cheaper) [`Lattice::le`] and the law harness in
//! [`crate::testing`] checks consistency between the two.

use core::fmt::Debug;

/// A join-semilattice.
///
/// Laws (checked by [`crate::testing::check_lattice_laws`]):
///
/// * **idempotence**: `x ⊔ x = x`
/// * **commutativity**: `x ⊔ y = y ⊔ x`
/// * **associativity**: `(x ⊔ y) ⊔ z = x ⊔ (y ⊔ z)`
/// * **order consistency**: `x.leq(&y) ⇔ x ⊔ y = y`
///
/// The trait requires `Eq` because convergence of replicas — the whole point
/// of a CRDT — is defined as state equality, and `Clone` because join
/// decompositions (see [`crate::Decompose`]) produce owned fragments of the
/// state.
pub trait Lattice: Clone + Eq + Debug {
    /// In-place join: `self = self ⊔ other`.
    ///
    /// Returns `true` iff `self` **strictly inflated**, i.e. the join
    /// changed `self`. This flag is exactly the inflation check on line 16
    /// of the paper's Algorithm 1 (`d ⋢ xᵢ`), so synchronization algorithms
    /// get it for free without a second comparison.
    fn join_assign(&mut self, other: Self) -> bool;

    /// Owned join: `self ⊔ other`.
    #[must_use]
    fn join(mut self, other: Self) -> Self {
        self.join_assign(other);
        self
    }

    /// Partial order test `self ⊑ other`.
    ///
    /// Must agree with the join-induced order: `x ⊑ y ⇔ x ⊔ y = y`.
    fn leq(&self, other: &Self) -> bool;

    /// Strict partial order test `self ⊏ other`.
    fn lneq(&self, other: &Self) -> bool {
        self.leq(other) && self != other
    }

    /// Would joining `self` into `base` strictly inflate `base`?
    ///
    /// Equivalent to `!self.leq(base)`; named for readability at call sites
    /// in the synchronization algorithms.
    fn inflates(&self, base: &Self) -> bool {
        !self.leq(base)
    }
}

/// A lattice with a least element `⊥`.
///
/// All CRDT lattices in the paper are *bounded below*: replicas start from
/// `⊥` and mutators are inflations. `⊥` is the identity of `⊔` and is, by
/// definition, never join-irreducible (it is the join of the empty set).
pub trait Bottom: Lattice {
    /// The least element `⊥`.
    fn bottom() -> Self;

    /// Is this element `⊥`?
    ///
    /// Override when a cheaper check than structural equality exists
    /// (e.g. `is_empty` on collections).
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }
}

/// Marker for lattices that are **chains** (totally ordered).
///
/// Appendix B of the paper shows that the lexicographic product `C ⋉ A`
/// is distributive **only when the first component is a chain** (Table III;
/// Fig. 13 gives the non-distributive counterexample `P(U) ⋉ P(U)`).
/// Distributivity in turn is what guarantees a *unique* irredundant join
/// decomposition (Proposition 1). Encoding the condition as a trait bound
/// on [`crate::Lex`] makes the paper's side condition machine-checked.
///
/// Implementors must guarantee `x ⊑ y ∨ y ⊑ x` for all `x, y`, and that
/// `Ord` agrees with the lattice order.
pub trait TotalOrder: Lattice + Ord {}

/// Joins an iterator of lattice elements, starting from `⊥`.
///
/// `⊔ ∅ = ⊥`, matching the paper's convention that bottom is the join over
/// the empty set.
pub fn join_all<L, I>(iter: I) -> L
where
    L: Bottom,
    I: IntoIterator<Item = L>,
{
    let mut acc = L::bottom();
    for x in iter {
        acc.join_assign(x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Max;

    #[test]
    fn join_all_empty_is_bottom() {
        let x: Max<u64> = join_all(std::iter::empty());
        assert!(x.is_bottom());
    }

    #[test]
    fn join_all_folds() {
        let x: Max<u64> = join_all([Max::new(3), Max::new(9), Max::new(1)]);
        assert_eq!(x, Max::new(9));
    }

    #[test]
    fn inflates_is_not_le() {
        let a = Max::new(5u64);
        let b = Max::new(3u64);
        assert!(a.inflates(&b));
        assert!(!b.inflates(&a));
    }

    #[test]
    fn lt_is_strict() {
        let a = Max::new(5u64);
        assert!(!a.lneq(&a));
        assert!(Max::new(3u64).lneq(&a));
    }
}
