//! A compact binary wire codec for lattice states.
//!
//! The evaluation accounts transmission through the analytic
//! [`crate::SizeModel`] ("what a reasonable serializer would emit"). This
//! module *is* such a serializer: varint-based, schema-less, with no
//! framing beyond length prefixes — so the tests can cross-check that the
//! byte model tracks an actual encoding (`codec` tests assert encoded
//! sizes never exceed the model's prediction for the compact model, and
//! stay within a small constant of it).
//!
//! The codec is deliberately dependency-free (no serde): protocol
//! messages are shaped like lattice states, and every lattice composition
//! encodes by structural recursion, mirroring the decomposition rules of
//! Appendix C.
//!
//! ## Format
//!
//! * unsigned integers — LEB128 varints;
//! * signed integers — zigzag, then LEB128;
//! * strings / byte payloads — varint length prefix + bytes;
//! * maps / sets — varint cardinality + ordered entries;
//! * [`Sum`] — 1 discriminant byte + payload;
//! * compositions (`Pair`, `Lex`, `Max`, …) — concatenation of parts.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Dot, Lex, MapLattice, Max, Min, Pair, ReplicaId, SetLattice, Sum, VClock};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a value.
    UnexpectedEnd,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// An enum discriminant byte was not recognised.
    BadDiscriminant(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A complete-buffer decode ([`WireEncode::from_bytes`]) left input
    /// behind: the frame carries garbage past the value, which a framed
    /// transport must treat as corruption, not slack.
    TrailingBytes,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "input ended mid-value"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::BadDiscriminant(d) => write!(f, "bad discriminant byte {d}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string payload"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after a complete value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append an LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint.
pub fn get_uvarint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed integer.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zigzag-decode.
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Binary encoding for a value that rides in protocol messages.
pub trait WireEncode: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a complete buffer. The value must consume the buffer
    /// exactly — trailing bytes are corruption
    /// ([`CodecError::TrailingBytes`]), never silently accepted slack;
    /// use [`WireEncode::decode`] for streaming several values out of
    /// one buffer.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, CodecError> {
        let value = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(value)
    }

    /// Encode into a shared, immutable frame.
    ///
    /// The default builds a fresh [`Bytes`](crate::Bytes) each call.
    /// Types that cache their encoded frame (the flat causal states in
    /// `crdt-types`) override this to return the cached frame when the
    /// value is unmutated since the last encode — a reference-count bump
    /// instead of a re-encode. Byte content is always identical to
    /// [`WireEncode::to_bytes`].
    fn encode_frame(&self) -> crate::Bytes {
        crate::Bytes::from(self.to_bytes())
    }
}

macro_rules! impl_wire_uint {
    ($($t:ty),*) => {
        $(impl WireEncode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                put_uvarint(out, u64::from(*self));
            }

            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let v = get_uvarint(input)?;
                <$t>::try_from(v).map_err(|_| CodecError::VarintOverflow)
            }
        })*
    };
}

impl_wire_uint!(u8, u16, u32, u64);

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, *self as u64);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        usize::try_from(get_uvarint(input)?).map_err(|_| CodecError::VarintOverflow)
    }
}

impl WireEncode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, zigzag(*self));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(unzigzag(get_uvarint(input)?))
    }
}

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&b, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if input.len() < len {
            return Err(CodecError::UnexpectedEnd);
        }
        let (bytes, rest) = input.split_at(len);
        *input = rest;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

impl WireEncode for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match bool::decode(input)? {
            false => Ok(None),
            true => Ok(Some(T::decode(input)?)),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        // Guard against hostile length prefixes: each element consumes at
        // least one byte, so `len` can never exceed the remaining input.
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode + Ord> WireEncode for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<K: WireEncode + Ord, V: WireEncode> WireEncode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Lattice compositions
// ---------------------------------------------------------------------------

impl WireEncode for ReplicaId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(ReplicaId(u32::decode(input)?))
    }
}

impl WireEncode for Dot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.replica.encode(out);
        self.seq.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Dot::new(ReplicaId::decode(input)?, u64::decode(input)?))
    }
}

impl<T: WireEncode> WireEncode for Max<T>
where
    T: Ord + Clone + core::fmt::Debug + Default,
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Max::new(T::decode(input)?))
    }
}

impl<T: WireEncode> WireEncode for Min<T>
where
    T: Ord + Clone + core::fmt::Debug,
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().cloned().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match Option::<T>::decode(input)? {
            None => crate::Bottom::bottom(),
            Some(v) => Min::new(v),
        })
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for Pair<A, B> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Pair(A::decode(input)?, B::decode(input)?))
    }
}

impl<C: WireEncode, A: WireEncode> WireEncode for Lex<C, A> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Lex(C::decode(input)?, A::decode(input)?))
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for Sum<A, B> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Sum::Left(a) => {
                out.push(0);
                a.encode(out);
            }
            Sum::Right(b) => {
                out.push(1);
                b.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(Sum::Left(A::decode(input)?)),
            1 => Ok(Sum::Right(B::decode(input)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<K, V> WireEncode for MapLattice<K, V>
where
    K: WireEncode + Ord + Clone + core::fmt::Debug,
    V: WireEncode + crate::Lattice + crate::Bottom,
{
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for (k, v) in self.iter() {
            k.encode(out);
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            entries.push((k, v));
        }
        Ok(entries.into_iter().collect())
    }
}

impl<E> WireEncode for SetLattice<E>
where
    E: WireEncode + Ord + Clone + core::fmt::Debug,
{
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for e in self.iter() {
            e.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push(E::decode(input)?);
        }
        Ok(entries.into_iter().collect())
    }
}

impl WireEncode for VClock {
    fn encode(&self, out: &mut Vec<u8>) {
        let entries: Vec<(ReplicaId, u64)> = self.iter().collect();
        entries.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Vec::<(ReplicaId, u64)>::decode(input)?
            .into_iter()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SizeModel, StateSize};

    fn roundtrip<T: WireEncode + PartialEq + core::fmt::Debug>(v: &T) -> usize {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
        bytes.len()
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(get_uvarint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_width_is_minimal() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = "hello".to_string().to_bytes();
        assert_eq!(
            String::from_bytes(&bytes[..3]),
            Err(CodecError::UnexpectedEnd)
        );
        assert_eq!(u64::from_bytes(&[0x80]), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Claims 2^40 elements with 1 byte of payload.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1 << 40);
        buf.push(7);
        assert_eq!(Vec::<u64>::from_bytes(&buf), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn zigzag_roundtrips_negative() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            roundtrip(&v);
        }
        // Small magnitudes stay small on the wire.
        assert_eq!((-1i64).to_bytes().len(), 1);
    }

    #[test]
    fn scalar_and_composite_roundtrips() {
        roundtrip(&true);
        roundtrip(&"hello κόσμος".to_string());
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&BTreeSet::from([1u8, 5, 9]));
        roundtrip(&BTreeMap::from([
            (1u8, "a".to_string()),
            (2, "b".to_string()),
        ]));
        roundtrip(&ReplicaId(7));
        roundtrip(&Dot::new(ReplicaId(3), 99));
    }

    #[test]
    fn lattice_roundtrips() {
        roundtrip(&Max::new(17u64));
        roundtrip(&Min::new(3u32));
        roundtrip(&<Min<u32> as crate::Bottom>::bottom());
        roundtrip(&Pair(Max::new(1u64), SetLattice::from_iter([1u8, 2])));
        roundtrip(&Lex(Max::new(4u64), Max::new(9u64)));
        roundtrip(&Sum::<Max<u64>, SetLattice<u8>>::Left(Max::new(2)));
        roundtrip(&Sum::<Max<u64>, SetLattice<u8>>::Right(
            SetLattice::from_iter([1]),
        ));
        roundtrip(&SetLattice::from_iter(["a".to_string(), "bc".to_string()]));
        roundtrip(&MapLattice::from_iter([
            (ReplicaId(0), Max::new(5u64)),
            (ReplicaId(2), Max::new(1u64)),
        ]));
        roundtrip(&VClock::from_iter([(ReplicaId(0), 4), (ReplicaId(9), 2)]));
    }

    #[test]
    fn bad_discriminants_error() {
        assert_eq!(
            Sum::<Max<u64>, Max<u64>>::from_bytes(&[9]),
            Err(CodecError::BadDiscriminant(9))
        );
        assert_eq!(bool::from_bytes(&[2]), Err(CodecError::BadDiscriminant(2)));
    }

    /// The analytic byte model upper-bounds the real encoding: varints
    /// never exceed the model's fixed widths for in-range values, so for
    /// every state the codec emits, `encoded ≤ model + small framing`.
    #[test]
    fn size_model_tracks_real_encoding() {
        let model = SizeModel::compact();
        // A GCounter-shaped state: 6 replicas with u64 counters.
        let gcounter: MapLattice<ReplicaId, Max<u64>> = (0..6u32)
            .map(|i| (ReplicaId(i), Max::new(1000 + u64::from(i))))
            .collect();
        let encoded = gcounter.to_bytes().len() as u64;
        let modeled = gcounter.size_bytes(&model);
        assert!(
            encoded <= modeled + 9,
            "encoded {encoded} should not exceed modeled {modeled} + framing"
        );

        // With values that actually exercise the model's fixed widths
        // (large ids, near-max counters), the model is also *tight*: the
        // encoding lands within 2x of it.
        let big: MapLattice<ReplicaId, Max<u64>> = (0..6u32)
            .map(|i| (ReplicaId(u32::MAX - i), Max::new(u64::MAX - u64::from(i))))
            .collect();
        let encoded = big.to_bytes().len() as u64;
        let modeled = big.size_bytes(&model);
        assert!(encoded <= modeled + 9);
        assert!(
            encoded * 2 >= modeled,
            "model more than 2x the encoding ({encoded} vs {modeled})"
        );

        // A GSet-shaped state.
        let gset: SetLattice<String> = (0..40).map(|i| format!("element-{i:04}")).collect();
        let encoded = gset.to_bytes().len() as u64;
        let modeled = gset.size_bytes(&model);
        assert!(encoded <= modeled + 9 + 40);
    }
}
