//! The linear sum lattice `A ⊕ B`: all of `B` stacked above all of `A`.
//!
//! Order: `Left a ⊑ Left a'` iff `a ⊑ a'`, `Right b ⊑ Right b'` iff
//! `b ⊑ b'`, and `Left a ⊑ Right b` always. The sum models irreversible
//! phase transitions — e.g. a "tombstone" phase that dominates a "live"
//! phase. `⊥ = Left ⊥_A`.
//!
//! Decomposition (Appendix C): variants decompose within themselves, with
//! the Table IV refinement that `Right ⊥_B` is join-irreducible (it sits
//! strictly above all of `A` but its decomposition within `B` would be
//! empty — the quotient `x/⟨Right,⊥⟩` is the finite sublattice to use).

use crate::{Bottom, Decompose, Lattice, SizeModel, StateSize};

/// Linear sum of two lattices; `Right` values dominate all `Left` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sum<A, B> {
    /// The lower summand.
    Left(A),
    /// The upper summand; dominates every `Left` value.
    Right(B),
}

impl<A, B> Sum<A, B> {
    /// Is this a `Left` value?
    pub fn is_left(&self) -> bool {
        matches!(self, Sum::Left(_))
    }

    /// Is this a `Right` value?
    pub fn is_right(&self) -> bool {
        matches!(self, Sum::Right(_))
    }
}

impl<A: Lattice, B: Lattice> Lattice for Sum<A, B> {
    fn join_assign(&mut self, other: Self) -> bool {
        match (&mut *self, other) {
            (Sum::Left(a), Sum::Left(a2)) => a.join_assign(a2),
            (Sum::Right(b), Sum::Right(b2)) => b.join_assign(b2),
            (Sum::Left(_), Sum::Right(b2)) => {
                *self = Sum::Right(b2);
                true
            }
            (Sum::Right(_), Sum::Left(_)) => false,
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Sum::Left(a), Sum::Left(a2)) => a.leq(a2),
            (Sum::Right(b), Sum::Right(b2)) => b.leq(b2),
            (Sum::Left(_), Sum::Right(_)) => true,
            (Sum::Right(_), Sum::Left(_)) => false,
        }
    }
}

impl<A: Bottom, B: Lattice> Bottom for Sum<A, B> {
    fn bottom() -> Self {
        Sum::Left(A::bottom())
    }

    fn is_bottom(&self) -> bool {
        matches!(self, Sum::Left(a) if a.is_bottom())
    }
}

impl<A: Decompose, B: Decompose> Decompose for Sum<A, B> {
    fn for_each_irreducible(&self, f: &mut dyn FnMut(Self)) {
        match self {
            Sum::Left(a) => a.for_each_irreducible(&mut |v| f(Sum::Left(v))),
            Sum::Right(b) => {
                if b.is_bottom() {
                    // Right ⊥ dominates all of A yet has no proper parts:
                    // join-irreducible (Table IV).
                    f(Sum::Right(B::bottom()));
                } else {
                    b.for_each_irreducible(&mut |v| f(Sum::Right(v)));
                }
            }
        }
    }

    fn irreducible_count(&self) -> u64 {
        match self {
            Sum::Left(a) => a.irreducible_count(),
            Sum::Right(b) => {
                if b.is_bottom() {
                    1
                } else {
                    b.irreducible_count()
                }
            }
        }
    }

    fn delta(&self, other: &Self) -> Self {
        match (self, other) {
            (Sum::Left(a), Sum::Left(a2)) => Sum::Left(a.delta(a2)),
            // `other` is strictly above every Left: nothing to send.
            (Sum::Left(_), Sum::Right(_)) => Self::bottom(),
            // Everything in a Right is new to a Left holder.
            (Sum::Right(_), Sum::Left(_)) => self.clone(),
            (Sum::Right(b), Sum::Right(b2)) => {
                let d = b.delta(b2);
                if d.is_bottom() {
                    Self::bottom()
                } else {
                    Sum::Right(d)
                }
            }
        }
    }

    fn is_irreducible(&self) -> bool {
        match self {
            Sum::Left(a) => a.is_irreducible(),
            Sum::Right(b) => b.is_bottom() || b.is_irreducible(),
        }
    }
}

impl<A: StateSize, B: StateSize> StateSize for Sum<A, B> {
    fn count_elements(&self) -> u64 {
        match self {
            Sum::Left(a) => a.count_elements(),
            Sum::Right(b) => b.count_elements().max(1),
        }
    }

    fn size_bytes(&self, model: &SizeModel) -> u64 {
        // One tag byte plus the summand payload.
        1 + match self {
            Sum::Left(a) => a.size_bytes(model),
            Sum::Right(b) => b.size_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_all, Max, SetLattice};

    type S = Sum<SetLattice<u32>, Max<u64>>;

    #[test]
    fn right_dominates_left() {
        let mut a = S::Left(SetLattice::from_iter([1, 2, 3]));
        assert!(a.join_assign(S::Right(Max::new(1))));
        assert_eq!(a, S::Right(Max::new(1)));
        // And stays there.
        assert!(!a.join_assign(S::Left(SetLattice::from_iter([9]))));
    }

    #[test]
    fn within_variant_joins() {
        let mut a = S::Left(SetLattice::from_iter([1]));
        assert!(a.join_assign(S::Left(SetLattice::from_iter([2]))));
        assert_eq!(a, S::Left(SetLattice::from_iter([1, 2])));
    }

    #[test]
    fn le_across_variants() {
        let l = S::Left(SetLattice::from_iter([1, 2, 3]));
        let r = S::Right(Max::bottom());
        assert!(l.leq(&r));
        assert!(!r.leq(&l));
    }

    #[test]
    fn bottom_is_left_bottom() {
        assert!(S::bottom().is_bottom());
        assert!(!S::Right(Max::bottom()).is_bottom());
    }

    #[test]
    fn right_bottom_is_irreducible() {
        let r = S::Right(Max::<u64>::bottom());
        assert!(r.is_irreducible());
        assert_eq!(r.decompose(), vec![r.clone()]);
        assert_eq!(join_all::<S, _>(r.decompose()), r);
    }

    #[test]
    fn decompose_within_variant() {
        let l = S::Left(SetLattice::from_iter([1, 2]));
        assert_eq!(l.decompose().len(), 2);
        assert_eq!(join_all::<S, _>(l.decompose()), l);
        let r = S::Right(Max::new(5));
        assert_eq!(r.decompose(), vec![r.clone()]);
    }

    #[test]
    fn delta_cases() {
        let l = S::Left(SetLattice::from_iter([1, 2]));
        let l2 = S::Left(SetLattice::from_iter([2]));
        assert_eq!(l.delta(&l2), S::Left(SetLattice::from_iter([1])));
        let r = S::Right(Max::new(3));
        // Left vs Right: nothing to send.
        assert!(l.delta(&r).is_bottom());
        // Right vs Left: send everything.
        assert_eq!(r.delta(&l), r);
        // Right vs Right recurses.
        assert!(r.delta(&S::Right(Max::new(5))).is_bottom());
        // Δ(a,b) ⊔ b = a ⊔ b on a mixed case.
        assert_eq!(r.delta(&l).join(l.clone()), r.join(l));
    }

    #[test]
    fn size_accounting() {
        let m = SizeModel::default();
        assert_eq!(S::Right(Max::new(5)).size_bytes(&m), 9);
        assert_eq!(S::Left(SetLattice::from_iter([1u32])).size_bytes(&m), 5);
    }
}
