//! Property-based testing of the wire codec: every encodable value
//! round-trips, decoding is a prefix-respecting stream (values decode in
//! sequence from one buffer), and the analytic byte model upper-bounds
//! the real encoding for model-conformant value ranges.

use crdt_lattice::codec::{get_uvarint, put_uvarint};
use crdt_lattice::{
    Lex, MapLattice, Max, Min, Pair, ReplicaId, SetLattice, SizeModel, StateSize, Sum, VClock,
    WireEncode,
};
use proptest::collection::{btree_map, btree_set, vec as pvec};
use proptest::prelude::*;

fn roundtrip<T: WireEncode + PartialEq + core::fmt::Debug>(v: &T) {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes).expect("decode");
    assert_eq!(&back, v);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn uvarint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut s = buf.as_slice();
        prop_assert_eq!(get_uvarint(&mut s).unwrap(), v);
        prop_assert!(s.is_empty());
    }

    #[test]
    fn scalars_roundtrip(a in any::<u64>(), b in any::<i64>(), s in ".{0,40}") {
        roundtrip(&a);
        roundtrip(&b);
        roundtrip(&s.to_string());
    }

    #[test]
    fn collections_roundtrip(
        v in pvec(any::<u32>(), 0..20),
        set in btree_set(any::<u16>(), 0..20),
        map in btree_map(any::<u8>(), ".{0,8}", 0..12),
    ) {
        roundtrip(&v);
        roundtrip(&set);
        let map: std::collections::BTreeMap<u8, String> = map;
        roundtrip(&map);
    }

    #[test]
    fn lattices_roundtrip(
        entries in pvec((0u32..64, any::<u64>()), 0..16),
        elems in btree_set(".{0,12}", 0..10),
        lex in (any::<u64>(), any::<u64>()),
        sum_left in any::<bool>(),
        payload in any::<u64>(),
    ) {
        let gcounter: MapLattice<ReplicaId, Max<u64>> = entries
            .iter()
            .map(|(r, v)| (ReplicaId(*r), Max::new(*v)))
            .collect();
        roundtrip(&gcounter);

        let gset: SetLattice<String> = elems.into_iter().collect();
        roundtrip(&gset);

        roundtrip(&Lex(Max::new(lex.0), Max::new(lex.1)));
        roundtrip(&Pair(Max::new(lex.0), Min::new(lex.1)));

        let sum: Sum<Max<u64>, SetLattice<u8>> = if sum_left {
            Sum::Left(Max::new(payload))
        } else {
            Sum::Right(SetLattice::from_iter([(payload % 251) as u8]))
        };
        roundtrip(&sum);

        let vclock: VClock = entries.iter().map(|(r, v)| (ReplicaId(*r), *v)).collect();
        roundtrip(&vclock);
    }

    /// Several values encoded back-to-back decode in sequence — the codec
    /// is self-delimiting, as a message framing layer needs.
    #[test]
    fn stream_decoding(a in any::<u64>(), s in ".{0,16}", v in pvec(any::<u16>(), 0..8)) {
        let mut buf = Vec::new();
        a.encode(&mut buf);
        s.to_string().encode(&mut buf);
        v.encode(&mut buf);
        let mut input = buf.as_slice();
        prop_assert_eq!(u64::decode(&mut input).unwrap(), a);
        prop_assert_eq!(String::decode(&mut input).unwrap(), s);
        prop_assert_eq!(Vec::<u16>::decode(&mut input).unwrap(), v);
        prop_assert!(input.is_empty());
    }

    /// Decoding arbitrary bytes never panics — it returns a value or an
    /// error (fuzzing the deserializer).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in pvec(any::<u8>(), 0..64)) {
        let _ = MapLattice::<ReplicaId, Max<u64>>::from_bytes(&bytes);
        let _ = SetLattice::<String>::from_bytes(&bytes);
        let _ = VClock::from_bytes(&bytes);
        let _ = Sum::<Max<u64>, SetLattice<u8>>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
    }

    /// For values inside the model's fixed widths, the encoding never
    /// exceeds the analytic size plus per-message framing.
    #[test]
    fn model_upper_bounds_encoding(entries in pvec((0u32..1000, any::<u64>()), 0..24)) {
        let model = SizeModel::compact();
        let state: MapLattice<ReplicaId, Max<u64>> = entries
            .iter()
            .map(|(r, v)| (ReplicaId(*r), Max::new(*v)))
            .collect();
        let encoded = state.to_bytes().len() as u64;
        let modeled = state.size_bytes(&model);
        // Varint ids ≤ 8B model ids; varint u64 ≤ 10B vs 8B model, but the
        // id slack (8 vs ≤2 here) strictly dominates the value overshoot.
        prop_assert!(encoded <= modeled + 10, "{encoded} > {modeled} + frame");
    }
}
