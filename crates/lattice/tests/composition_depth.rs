//! Deep-composition integration tests: the Appendix C rules must compose
//! arbitrarily (the paper: "more complex states by lattice composition"),
//! so decomposition/delta laws are exercised on towers of combinators that
//! no single module test builds.

use crdt_lattice::testing::check_all_laws;
use crdt_lattice::{
    join_all, Bottom, Decompose, Lattice, Lex, MapLattice, Max, Min, Pair, SetLattice, Sum,
};

/// `Sum<Sum<…>, …>`: a three-phase state machine (draft → review →
/// published), each phase with its own lattice.
type ThreePhase = Sum<SetLattice<u8>, Sum<MapLattice<u8, Max<u64>>, Max<u64>>>;

#[test]
fn sum_of_sums_phases() {
    let draft = ThreePhase::Left(SetLattice::from_iter([1, 2]));
    let review = ThreePhase::Right(Sum::Left(MapLattice::singleton(1, Max::new(3))));
    let published = ThreePhase::Right(Sum::Right(Max::new(9)));

    // Later phases dominate earlier ones, transitively.
    assert!(draft.leq(&review));
    assert!(review.leq(&published));
    assert!(draft.leq(&published));
    assert_eq!(draft.clone().join(published.clone()), published);

    check_all_laws(&[
        ThreePhase::bottom(),
        draft,
        review,
        ThreePhase::Right(Sum::Left(MapLattice::singleton(2, Max::new(1)))),
        published,
    ]);
}

/// `Pair<Lex<…>, Map<…>>`: a versioned document with per-section edit
/// counters.
type VersionedDoc = Pair<Lex<Max<u64>, SetLattice<&'static str>>, MapLattice<u8, Max<u64>>>;

#[test]
fn pair_of_lex_document() {
    let v1 = VersionedDoc::new(
        Lex::new(Max::new(1), SetLattice::from_iter(["intro"])),
        MapLattice::singleton(0, Max::new(2)),
    );
    let v2 = VersionedDoc::new(
        Lex::new(Max::new(2), SetLattice::from_iter(["rewrite"])),
        MapLattice::singleton(1, Max::new(1)),
    );
    let j = v1.clone().join(v2.clone());
    // Lex side replaced wholesale; map side merged pointwise.
    assert_eq!(j.fst().payload(), &SetLattice::from_iter(["rewrite"]));
    assert_eq!(j.snd().len(), 2);

    // Decomposition: 1 lex irreducible + 2 map entries.
    assert_eq!(j.irreducible_count(), 3);
    assert_eq!(join_all::<VersionedDoc, _>(j.decompose()), j);

    check_all_laws(&[VersionedDoc::bottom(), v1, v2, j]);
}

/// `Map<…, Pair<Set, Lex>>`: a store of (tags, versioned body) records —
/// the fully general GMap shape.
type RecordStore = MapLattice<u8, Pair<SetLattice<u8>, Lex<Max<u64>, Max<u64>>>>;

#[test]
fn map_of_pairs_of_lex() {
    let a = RecordStore::from_iter([
        (
            1,
            Pair(
                SetLattice::from_iter([10, 11]),
                Lex::new(Max::new(1), Max::new(7)),
            ),
        ),
        (2, Pair(SetLattice::from_iter([20]), Lex::bottom())),
    ]);
    let b = RecordStore::from_iter([(
        1,
        Pair(
            SetLattice::from_iter([12]),
            Lex::new(Max::new(2), Max::new(9)),
        ),
    )]);

    // Δ(a, b): everything of key 2, plus key 1's tags (the lex side lost
    // to b's newer version).
    let d = a.delta(&b);
    assert!(d.contains_key(&2));
    let k1 = d.get(&1).expect("tag news under key 1");
    assert_eq!(k1.fst(), &SetLattice::from_iter([10, 11]));
    assert!(k1.snd().is_bottom(), "older lex version must not ship");
    assert_eq!(d.clone().join(b.clone()), a.clone().join(b.clone()));

    check_all_laws(&[RecordStore::bottom(), a, b, d]);
}

/// `Min` composed under a map: "shortest observed latency per route".
type LatencyTable = MapLattice<&'static str, Min<u64>>;

#[test]
fn map_of_min_latencies() {
    let mut a = LatencyTable::new();
    assert!(a.join_entry("eu-west", Min::new(120)));
    assert!(
        a.join_entry("eu-west", Min::new(80)),
        "lower is an inflation"
    );
    assert!(
        !a.join_entry("eu-west", Min::new(200)),
        "higher is absorbed"
    );
    let b = LatencyTable::from_iter([("us-east", Min::new(40))]);
    let j = a.clone().join(b.clone());
    assert_eq!(j.get(&"eu-west"), Some(&Min::new(80)));
    assert_eq!(j.irreducible_count(), 2);
    check_all_laws(&[LatencyTable::bottom(), a, b, j]);
}

/// Decomposition counts multiply correctly through three layers of maps.
#[test]
fn triple_nested_map_counts() {
    type L3 = MapLattice<u8, MapLattice<u8, MapLattice<u8, Max<u64>>>>;
    let mut x = L3::bottom();
    for i in 0..3u8 {
        for j in 0..2u8 {
            for k in 0..2u8 {
                x.join_entry(
                    i,
                    MapLattice::singleton(
                        j,
                        MapLattice::singleton(k, Max::new(u64::from(i + j + k) + 1)),
                    ),
                );
            }
        }
    }
    assert_eq!(x.irreducible_count(), 3 * 2 * 2);
    let parts = x.decompose();
    assert_eq!(parts.len(), 12);
    assert!(parts.iter().all(Decompose::is_irreducible));
    assert_eq!(join_all::<L3, _>(parts), x);
}

/// The Fig. 14 shape: `ℕ ⋉ P(U)` — infinite ideals, finite quotients.
/// Decomposition and Δ behave exactly as the Table IV argument predicts.
#[test]
fn lex_over_powerset_quotient_behavior() {
    type NP = Lex<Max<u64>, SetLattice<char>>;
    let n1 = NP::new(Max::new(1), SetLattice::from_iter(['a', 'b']));
    // ⇓⟨1,{a,b}⟩ = {⟨1,{a}⟩, ⟨1,{b}⟩} — within the quotient ⟨1,·⟩.
    let parts = n1.decompose();
    assert_eq!(parts.len(), 2);
    assert!(parts.iter().all(|p| p.version() == &Max::new(1)));

    // Bumping the version with an empty payload is the ⟨n,⊥⟩ irreducible.
    let n2 = NP::new(Max::new(2), SetLattice::bottom());
    assert!(n2.is_irreducible());
    assert!(n1.leq(&n2), "lex order ignores the payload across versions");
    assert_eq!(n1.delta(&n2), NP::bottom(), "nothing to send upward");
    assert_eq!(n2.delta(&n1), n2, "the version bump itself is the delta");
}
