//! Property-based law checking for every lattice composition.
//!
//! Strategy: generate small random sample sets of each lattice type and run
//! the full law battery from `crdt_lattice::testing` on them. Randomized
//! samples catch interactions (e.g. partially overlapping maps, equal-key
//! different-value entries) that hand-picked fixtures miss.

use crdt_lattice::testing::{check_all_laws, check_delta_mutation};
use crdt_lattice::{
    Antichain, Bottom, Lattice, Lex, MapLattice, Max, Min, Pair, Poset, ReplicaId, SetLattice, Sum,
    VClock,
};
use proptest::collection::{btree_map, btree_set, vec as pvec};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn max_u64() -> impl Strategy<Value = Max<u64>> {
    (0u64..6).prop_map(Max::new)
}

fn min_u64() -> impl Strategy<Value = Min<u64>> {
    prop_oneof![Just(Min::bottom()), (0u64..6).prop_map(Min::new),]
}

fn set_u8() -> impl Strategy<Value = SetLattice<u8>> {
    btree_set(0u8..6, 0..4).prop_map(|s| s.into_iter().collect())
}

fn map_counter() -> impl Strategy<Value = MapLattice<u8, Max<u64>>> {
    btree_map(0u8..4, 0u64..5, 0..4)
        .prop_map(|m| m.into_iter().map(|(k, v)| (k, Max::new(v))).collect())
}

fn pair_lat() -> impl Strategy<Value = Pair<Max<u64>, SetLattice<u8>>> {
    (max_u64(), set_u8()).prop_map(|(a, b)| Pair(a, b))
}

fn lex_lat() -> impl Strategy<Value = Lex<Max<u64>, SetLattice<u8>>> {
    ((0u64..4).prop_map(Max::new), set_u8()).prop_map(|(c, a)| Lex(c, a))
}

fn sum_lat() -> impl Strategy<Value = Sum<Max<u64>, SetLattice<u8>>> {
    prop_oneof![max_u64().prop_map(Sum::Left), set_u8().prop_map(Sum::Right),]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Pt(u8, u8);

impl Poset for Pt {
    fn poset_le(&self, other: &Self) -> bool {
        self.0 <= other.0 && self.1 <= other.1
    }
}

fn antichain_lat() -> impl Strategy<Value = Antichain<Pt>> {
    pvec((0u8..4, 0u8..4).prop_map(|(a, b)| Pt(a, b)), 0..4).prop_map(|v| v.into_iter().collect())
}

fn vclock_lat() -> impl Strategy<Value = VClock> {
    btree_map(0u32..4, 1u64..5, 0..4)
        .prop_map(|m| m.into_iter().map(|(r, s)| (ReplicaId(r), s)).collect())
}

fn nested_map() -> impl Strategy<Value = MapLattice<u8, MapLattice<u8, Max<u64>>>> {
    btree_map(0u8..3, btree_map(0u8..3, 1u64..4, 0..3), 0..3).prop_map(|outer| {
        outer
            .into_iter()
            .map(|(k, inner)| {
                (
                    k,
                    inner
                        .into_iter()
                        .map(|(k2, v)| (k2, Max::new(v)))
                        .collect::<MapLattice<u8, Max<u64>>>(),
                )
            })
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Law batteries (4 samples each keeps the O(n³) harness fast)
// ---------------------------------------------------------------------------

macro_rules! law_battery {
    ($name:ident, $strat:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(samples in pvec($strat, 1..5)) {
                check_all_laws(&samples);
            }
        }
    };
}

law_battery!(max_laws, max_u64());
law_battery!(min_laws, min_u64());
law_battery!(set_laws, set_u8());
law_battery!(map_laws, map_counter());
law_battery!(pair_laws, pair_lat());
law_battery!(lex_laws, lex_lat());
law_battery!(sum_laws, sum_lat());
law_battery!(antichain_laws, antichain_lat());
law_battery!(vclock_laws, vclock_lat());
law_battery!(nested_map_laws, nested_map());

// Deep composition: the Retwis-store shape (map of lex pairs of sets).
law_battery!(
    deep_composition_laws,
    btree_map(0u8..3, ((0u64..3).prop_map(Max::new), set_u8()), 0..3).prop_map(|m| {
        m.into_iter()
            .map(|(k, (c, s))| (k, Lex(c, s)))
            .collect::<MapLattice<u8, Lex<Max<u64>, SetLattice<u8>>>>()
    })
);

// PNCounter shape: map of pairs of max chains (Appendix C example).
law_battery!(
    pncounter_shape_laws,
    btree_map(0u32..3, (0u64..4, 0u64..4), 0..3).prop_map(|m| {
        m.into_iter()
            .map(|(r, (p, n))| (ReplicaId(r), Pair(Max::new(p), Max::new(n))))
            .collect::<MapLattice<ReplicaId, Pair<Max<u64>, Max<u64>>>>()
    })
);

// ---------------------------------------------------------------------------
// Mutator / delta-specific properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// addδ is always the optimal delta of add (§III-B contract).
    #[test]
    fn gset_add_delta_is_optimal(s in set_u8(), e in 0u8..8) {
        let before = s.clone();
        let mut after = s;
        let delta = after.add_delta(e);
        check_delta_mutation(&before, &after, &delta);
    }

    /// mutate_entry wraps the entry delta under the key and stays optimal.
    #[test]
    fn map_mutate_entry_is_optimal(m in map_counter(), k in 0u8..4, by in 1u64..4) {
        let before = m.clone();
        let mut after = m;
        let delta = after.mutate_entry(k, |v| {
            let next = v.plus(by);
            v.join_assign(next);
            next
        });
        check_delta_mutation(&before, &after, &delta);
    }

    /// Δ(a,b) transmitted instead of a loses nothing: b ⊔ Δ(a,b) ⊒ a ⊓-free
    /// formulation — joining the delta catches b up to a ⊔ b.
    #[test]
    fn delta_repairs_divergence(a in map_counter(), b in map_counter()) {
        use crdt_lattice::Decompose;
        let d = a.delta(&b);
        let repaired = d.join(b.clone());
        prop_assert_eq!(repaired, a.join(b));
    }

    /// Decomposition size is monotone under join (|⇓(a⊔b)| ≥ |⇓a| for
    /// distributive lattices built here).
    #[test]
    fn irreducible_count_monotone(a in map_counter(), b in map_counter()) {
        use crdt_lattice::Decompose;
        let na = a.irreducible_count();
        let j = a.join(b);
        prop_assert!(j.irreducible_count() >= na);
    }

    /// VClock::dots_after returns exactly the dots missing from `other`.
    #[test]
    fn vclock_dots_after_exact(a in vclock_lat(), b in vclock_lat()) {
        let missing: Vec<_> = a.dots_after(&b).collect();
        for d in &missing {
            prop_assert!(a.contains(d));
            prop_assert!(!b.contains(d));
        }
        // Completeness: every dot of a not in b is listed.
        for (r, s) in a.iter() {
            for seq in 1..=s {
                let dot = crdt_lattice::Dot::new(r, seq);
                if !b.contains(&dot) {
                    prop_assert!(missing.contains(&dot));
                }
            }
        }
    }
}
