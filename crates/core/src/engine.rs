//! The type-erased engine layer: runtime-selectable synchronization over
//! a unified wire envelope.
//!
//! [`Protocol`] is deliberately *not* object-safe — it has an associated
//! `Msg` type and a `const NAME` — so every consumer must be
//! monomorphized per protocol. That is the right shape for experiments
//! (zero dispatch overhead, exact message types), but a production system
//! wants one replica/network substrate serving *any* of the paper's
//! protocols, chosen at deploy time. This module provides that shape:
//!
//! * [`SyncEngine`] — an object-safe mirror of [`Protocol`] whose
//!   messages are one concrete type, [`WireEnvelope`]: real encoded bytes
//!   (via [`crdt_lattice::WireEncode`]) plus a [`WireAccounting`] block
//!   carrying both the paper's [`SizeModel`]-based numbers and the true
//!   encoded length;
//! * [`EngineAdapter`] — the blanket bridge wrapping any
//!   `P: Protocol<C>` whose messages and operations are wire-encodable;
//! * [`ProtocolKind`] — the closed set of the paper's protocols, parsed
//!   from strings (`"bp_rr"`, `"scuttlebutt-gc"`, …) for CLI/runtime
//!   selection;
//! * [`build_engine`] — the factory producing a `Box<dyn SyncEngine>`
//!   for any kind over any wire-encodable CRDT.
//!
//! Generic and erased paths are behaviorally identical — the parity
//! property test in `tests/engine_parity.rs` drives both through the same
//! schedule and asserts identical lattice states and element counts. See
//! `ARCHITECTURE.md` for when to use which.

use core::cell::Cell;
use core::fmt;
use std::any::Any;
use std::marker::PhantomData;
use std::str::FromStr;

use crdt_lattice::codec::{get_uvarint, put_uvarint};
use crdt_lattice::{CodecError, ReplicaId, SizeModel, WireEncode};
use crdt_types::Crdt;

use crate::acked::AckedDeltaSync;
use crate::bytes::{BufferPool, Bytes};
use crate::delta::{BpDelta, BpRrDelta, ClassicDelta, RrDelta};
use crate::opbased::OpBased;
use crate::proto::{Measured, MemoryUsage, Params, Protocol};
use crate::scuttlebutt::{Scuttlebutt, ScuttlebuttGc};
use crate::state::StateSync;

/// Deterministic 64-bit hash of a lattice state: `DefaultHasher` over
/// the `Debug` rendering — the same convention the §VI digest uses for
/// join-irreducibles. `Debug` for the workspace's lattice types is a
/// faithful canonical form (ordered containers), and `DefaultHasher`'s
/// keys are constants, so the hash agrees across replicas, threads, and
/// processes — the property Merkle anti-entropy and the net probe
/// reports both rely on.
pub fn state_hash_of<C: fmt::Debug>(state: &C) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{state:?}").hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// ProtocolKind
// ---------------------------------------------------------------------------

/// The paper's protocol suite as a runtime value.
///
/// Parsed from strings for CLI selection; [`ProtocolKind::name`] matches
/// the `Protocol::NAME` labels used in experiment output, so figures keyed
/// by either agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Classic delta-based synchronization (`"delta"`).
    Classic,
    /// Delta + avoid back-propagation (`"delta+BP"`).
    Bp,
    /// Delta + remove redundant received state (`"delta+RR"`).
    Rr,
    /// Both optimizations — the paper's proposal (`"delta+BP+RR"`).
    BpRr,
    /// Full-state gossip baseline (`"state"`).
    State,
    /// Scuttlebutt anti-entropy (`"scuttlebutt"`).
    Scuttlebutt,
    /// Scuttlebutt with safe delta deletion (`"scuttlebutt-gc"`).
    ScuttlebuttGc,
    /// Op-based causal middleware baseline (`"op-based"`).
    OpBased,
    /// Acked delta variant for lossy channels (`"delta+BP+RR (acked)"`).
    Acked,
}

impl ProtocolKind {
    /// Every kind, in the order the paper's figures list them.
    pub const ALL: [ProtocolKind; 9] = [
        ProtocolKind::State,
        ProtocolKind::Classic,
        ProtocolKind::Bp,
        ProtocolKind::Rr,
        ProtocolKind::BpRr,
        ProtocolKind::Scuttlebutt,
        ProtocolKind::ScuttlebuttGc,
        ProtocolKind::OpBased,
        ProtocolKind::Acked,
    ];

    /// Display label, identical to the wrapped `Protocol::NAME`.
    pub const fn name(self) -> &'static str {
        match self {
            ProtocolKind::Classic => "delta",
            ProtocolKind::Bp => "delta+BP",
            ProtocolKind::Rr => "delta+RR",
            ProtocolKind::BpRr => "delta+BP+RR",
            ProtocolKind::State => "state",
            ProtocolKind::Scuttlebutt => "scuttlebutt",
            ProtocolKind::ScuttlebuttGc => "scuttlebutt-gc",
            ProtocolKind::OpBased => "op-based",
            ProtocolKind::Acked => "delta+BP+RR (acked)",
        }
    }

    /// CLI-friendly identifier (`snake_case`, accepted by [`FromStr`]).
    pub const fn id(self) -> &'static str {
        match self {
            ProtocolKind::Classic => "classic",
            ProtocolKind::Bp => "bp",
            ProtocolKind::Rr => "rr",
            ProtocolKind::BpRr => "bp_rr",
            ProtocolKind::State => "state",
            ProtocolKind::Scuttlebutt => "scuttlebutt",
            ProtocolKind::ScuttlebuttGc => "scuttlebutt_gc",
            ProtocolKind::OpBased => "op_based",
            ProtocolKind::Acked => "acked",
        }
    }

    /// Is this one of the four Algorithm-1 delta variants (whose wire
    /// message is a bare δ-group)? `state` shares that message shape.
    pub const fn is_delta_family(self) -> bool {
        matches!(
            self,
            ProtocolKind::Classic | ProtocolKind::Bp | ProtocolKind::Rr | ProtocolKind::BpRr
        )
    }

    /// Does the engine's wire message decode as a bare δ-group
    /// ([`crate::DeltaMsg`])? True for the delta family and `state`, the
    /// kinds eligible for digest-driven repair injection.
    pub const fn accepts_raw_delta(self) -> bool {
        self.is_delta_family() || matches!(self, ProtocolKind::State)
    }

    /// Does the protocol *detect and recover* lost messages on its own?
    ///
    /// True for the kinds that carry recovery metadata: Scuttlebutt's
    /// summary vectors re-request anything a dropped message carried, and
    /// the acked variant retransmits until acknowledged. Everything else
    /// assumes reliable channels — the Algorithm-1 delta family clears
    /// its δ-buffer after sending, `state` relies on a dirty flag that a
    /// lost send can strand, and the op-based middleware prunes its
    /// transmission buffer on sync — so after a partition, crash, or
    /// lossy-link episode those kinds need out-of-band repair
    /// (digest-driven or bootstrap; see `crdt-sim`'s scenario layer).
    pub const fn recovers_from_loss(self) -> bool {
        matches!(
            self,
            ProtocolKind::Scuttlebutt | ProtocolKind::ScuttlebuttGc | ProtocolKind::Acked
        )
    }

    const fn wire_tag(self) -> u8 {
        match self {
            ProtocolKind::Classic => 0,
            ProtocolKind::Bp => 1,
            ProtocolKind::Rr => 2,
            ProtocolKind::BpRr => 3,
            ProtocolKind::State => 4,
            ProtocolKind::Scuttlebutt => 5,
            ProtocolKind::ScuttlebuttGc => 6,
            ProtocolKind::OpBased => 7,
            ProtocolKind::Acked => 8,
        }
    }

    const fn from_wire_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ProtocolKind::Classic,
            1 => ProtocolKind::Bp,
            2 => ProtocolKind::Rr,
            3 => ProtocolKind::BpRr,
            4 => ProtocolKind::State,
            5 => ProtocolKind::Scuttlebutt,
            6 => ProtocolKind::ScuttlebuttGc,
            7 => ProtocolKind::OpBased,
            8 => ProtocolKind::Acked,
            _ => return None,
        })
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl WireEncode for ProtocolKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.wire_tag());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        ProtocolKind::from_wire_tag(tag).ok_or(CodecError::BadDiscriminant(tag))
    }
}

/// Failure to parse a [`ProtocolKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProtocol(pub String);

impl fmt::Display for UnknownProtocol {
    /// Lists every accepted spelling — both the CLI ids and the paper's
    /// figure labels — so a typoed `--protocol` flag teaches its own fix.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protocol {:?} (expected one of: ", self.0)?;
        for (i, k) in ProtocolKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} [{}]", k.id(), k.name())?;
        }
        f.write_str("; matching is case-insensitive)")
    }
}

impl std::error::Error for UnknownProtocol {}

impl FromStr for ProtocolKind {
    type Err = UnknownProtocol;

    /// Accepts the CLI ids (`bp_rr`), the figure labels (`delta+BP+RR`),
    /// and common separators/case variants (`BP-RR`, `bprr`).
    fn from_str(s: &str) -> Result<Self, UnknownProtocol> {
        let norm: String = s
            .chars()
            .filter(|c| !matches!(c, '_' | '-' | '+' | ' ' | '(' | ')'))
            .collect::<String>()
            .to_ascii_lowercase();
        Ok(match norm.as_str() {
            "classic" | "delta" | "classicdelta" => ProtocolKind::Classic,
            "bp" | "deltabp" | "bpdelta" => ProtocolKind::Bp,
            "rr" | "deltarr" | "rrdelta" => ProtocolKind::Rr,
            "bprr" | "deltabprr" | "bprrdelta" => ProtocolKind::BpRr,
            "state" | "statesync" | "statebased" => ProtocolKind::State,
            "scuttlebutt" | "sb" => ProtocolKind::Scuttlebutt,
            "scuttlebuttgc" | "sbgc" => ProtocolKind::ScuttlebuttGc,
            "opbased" | "op" => ProtocolKind::OpBased,
            "acked" | "deltabprracked" | "ackeddelta" => ProtocolKind::Acked,
            _ => return Err(UnknownProtocol(s.to_string())),
        })
    }
}

// ---------------------------------------------------------------------------
// Wire envelope
// ---------------------------------------------------------------------------

/// Transmission accounting attached to a [`WireEnvelope`].
///
/// Carries *both* cost views: the paper's analytic [`SizeModel`] numbers
/// (`payload_bytes`/`metadata_bytes`, for reproducing the figures'
/// shapes) and the honest length of the encoded payload as it would cross
/// a socket (`encoded_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireAccounting {
    /// Lattice elements (join-irreducibles) of CRDT payload.
    pub payload_elements: u64,
    /// Bytes of CRDT payload under the engine's [`SizeModel`].
    pub payload_bytes: u64,
    /// Bytes of synchronization metadata under the engine's [`SizeModel`].
    pub metadata_bytes: u64,
    /// Actual length of [`WireEnvelope::payload`] — what a byte transport
    /// really ships.
    pub encoded_bytes: u64,
}

impl WireAccounting {
    /// Model-view total (payload + metadata), the paper's transmission
    /// metric.
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.metadata_bytes
    }
}

/// The single concrete message type of the engine layer.
///
/// `payload` is the wrapped protocol's message, truly encoded through
/// [`WireEncode`] — not a boxed value — so a deployment can hand
/// envelopes to any byte transport, and `accounting.encoded_bytes` is a
/// measurement, not a model.
///
/// The payload is a shared [`Bytes`] slice: cloning an envelope (or
/// fanning a batch out into per-object envelopes) bumps a reference
/// count instead of copying the encoded message, and engines produced by
/// [`EngineAdapter`] encode a whole sync step into **one** pooled buffer
/// that every resulting envelope slices (see [`BufferPool`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEnvelope {
    /// Sending replica.
    pub from: ReplicaId,
    /// Destination replica.
    pub to: ReplicaId,
    /// Which protocol's message the payload encodes.
    pub kind: ProtocolKind,
    /// The encoded protocol message (shared, zero-copy slice).
    pub payload: Bytes,
    /// Cost accounting (model view + encoded view).
    pub accounting: WireAccounting,
}

/// A borrowed view of a [`WireEnvelope`], decoded straight off a
/// received byte frame without copying the payload out.
///
/// This is the receive-path mirror of the shared-[`Bytes`] payload: a
/// transport that holds an incoming frame can [`WireEnvelopeRef::decode`]
/// views whose `payload` borrows the frame, hand them to
/// [`SyncEngine::on_msg_ref`] (which decodes the protocol message
/// directly from the borrow), and never materialize an owned envelope at
/// all. When an owned envelope *is* needed, [`WireEnvelopeRef::shared`]
/// produces one whose payload is a zero-copy slice of the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEnvelopeRef<'a> {
    /// Sending replica.
    pub from: ReplicaId,
    /// Destination replica.
    pub to: ReplicaId,
    /// Which protocol's message the payload encodes.
    pub kind: ProtocolKind,
    /// The encoded protocol message, borrowed from the frame.
    pub payload: &'a [u8],
    /// Cost accounting (model view + encoded view).
    pub accounting: WireAccounting,
}

impl<'a> WireEnvelopeRef<'a> {
    /// Decode one envelope view from the front of `input`, advancing it.
    /// The payload is borrowed, not copied; corrupt length fields error
    /// out before any allocation.
    pub fn decode(input: &mut &'a [u8]) -> Result<Self, CodecError> {
        let from = ReplicaId::decode(input)?;
        let to = ReplicaId::decode(input)?;
        let kind = ProtocolKind::decode(input)?;
        let len = usize::decode(input)?;
        if input.len() < len {
            return Err(CodecError::UnexpectedEnd);
        }
        let (payload, rest) = input.split_at(len);
        *input = rest;
        Ok(WireEnvelopeRef {
            from,
            to,
            kind,
            payload,
            accounting: WireAccounting::decode(input)?,
        })
    }

    /// An owned envelope, copying the payload into a fresh buffer.
    pub fn to_envelope(self) -> WireEnvelope {
        WireEnvelope {
            from: self.from,
            to: self.to,
            kind: self.kind,
            payload: Bytes::copy_from_slice(self.payload),
            accounting: self.accounting,
        }
    }

    /// An owned envelope whose payload **shares** `frame`'s allocation
    /// when this view borrows from it (the zero-copy path); falls back to
    /// a copy for foreign borrows.
    pub fn shared(self, frame: &Bytes) -> WireEnvelope {
        let payload = match frame.offset_of(self.payload) {
            Some(off) => frame.slice(off..off + self.payload.len()),
            None => Bytes::copy_from_slice(self.payload),
        };
        WireEnvelope {
            from: self.from,
            to: self.to,
            kind: self.kind,
            payload,
            accounting: self.accounting,
        }
    }
}

impl WireEnvelope {
    /// A borrowed view of this envelope.
    pub fn view(&self) -> WireEnvelopeRef<'_> {
        WireEnvelopeRef {
            from: self.from,
            to: self.to,
            kind: self.kind,
            payload: &self.payload,
            accounting: self.accounting,
        }
    }

    /// Decode one envelope from a cursor into `frame`, advancing the
    /// cursor; the payload is a zero-copy slice of `frame`. `input` must
    /// be a sub-slice of `frame` (as produced by iterating over
    /// `&frame[..]`); cursors into other buffers degrade to a copy.
    pub fn decode_shared(frame: &Bytes, input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WireEnvelopeRef::decode(input)?.shared(frame))
    }
}

impl WireEncode for WireAccounting {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.payload_elements);
        put_uvarint(out, self.payload_bytes);
        put_uvarint(out, self.metadata_bytes);
        put_uvarint(out, self.encoded_bytes);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WireAccounting {
            payload_elements: get_uvarint(input)?,
            payload_bytes: get_uvarint(input)?,
            metadata_bytes: get_uvarint(input)?,
            encoded_bytes: get_uvarint(input)?,
        })
    }
}

impl WireEncode for WireEnvelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        out.push(self.kind.wire_tag());
        self.payload.len().encode(out);
        out.extend_from_slice(&self.payload);
        self.accounting.encode(out);
    }

    /// Streaming decode; the payload is copied out of `input` (the
    /// cursor's backing buffer is unknown here). Transports holding the
    /// frame as [`Bytes`] should use [`WireEnvelope::decode_shared`]
    /// (zero-copy) or [`WireEnvelopeRef::decode`] (borrowed) instead.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WireEnvelopeRef::decode(input)?.to_envelope())
    }
}

impl Measured for WireEnvelope {
    fn payload_elements(&self) -> u64 {
        self.accounting.payload_elements
    }

    /// Model-view bytes (the accounting was computed by the producing
    /// engine under *its* model; the `model` argument is ignored).
    fn payload_bytes(&self, _model: &SizeModel) -> u64 {
        self.accounting.payload_bytes
    }

    fn metadata_bytes(&self, _model: &SizeModel) -> u64 {
        self.accounting.metadata_bytes
    }
}

// ---------------------------------------------------------------------------
// Batch envelope
// ---------------------------------------------------------------------------

/// A per-destination synchronization batch: every object's
/// [`WireEnvelope`] bound for one recipient, coalesced into a single wire
/// frame.
///
/// Sharded deployments (the paper's Retwis setup replicates 30 K
/// *independent* objects) would otherwise put one message per object on
/// the fabric every round. A batch is one replica talking to one
/// neighbor under one configured protocol, so `from`/`to`/`kind` are
/// identical across its envelopes and the frame encodes them **once**
/// (after the count, when non-empty), then `(key, payload, accounting)`
/// per entry — ~10 B per object saved at 30 K-object granularity versus
/// re-encoding the full envelope each time, and message count drops to
/// O(links), independent of object count.
///
/// Consumers: `delta-store`'s `StoreMsg` (its `Transport` moves these
/// between replicas) and `crdt-sim`'s `ShardedEngineRunner` (one frame
/// per (src, dst) pair per round).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEnvelope<K> {
    /// `(object key, envelope)` pairs. Objects with nothing new are
    /// simply absent.
    pub entries: Vec<(K, WireEnvelope)>,
}

impl<K> BatchEnvelope<K> {
    /// An empty batch.
    pub fn new() -> Self {
        BatchEnvelope {
            entries: Vec::new(),
        }
    }

    /// Number of objects in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Does the batch carry nothing?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one object's envelope.
    pub fn push(&mut self, key: K, env: WireEnvelope) {
        debug_assert!(
            self.route()
                .is_none_or(|(from, to, kind)| (from, to, kind) == (env.from, env.to, env.kind)),
            "a batch spans one (from, to, kind) route"
        );
        self.entries.push((key, env));
    }

    /// The batch's `(from, to, kind)` route; `None` when empty.
    pub fn route(&self) -> Option<(ReplicaId, ReplicaId, ProtocolKind)> {
        self.entries.first().map(|(_, e)| (e.from, e.to, e.kind))
    }
}

impl<K> Default for BatchEnvelope<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: crdt_lattice::Sizeable> Measured for BatchEnvelope<K> {
    fn payload_elements(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, e)| e.accounting.payload_elements)
            .sum()
    }

    fn payload_bytes(&self, _model: &SizeModel) -> u64 {
        self.entries
            .iter()
            .map(|(_, e)| e.accounting.payload_bytes)
            .sum()
    }

    /// Object keys are addressing metadata (exactly like the per-object
    /// identifiers of the paper's Retwis measurements), on top of
    /// whatever protocol metadata the envelopes carry.
    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        self.entries
            .iter()
            .map(|(k, e)| k.payload_bytes(model) + e.accounting.metadata_bytes)
            .sum()
    }
}

impl<K: WireEncode> WireEncode for BatchEnvelope<K> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.entries.len() as u64);
        let Some((_, first)) = self.entries.first() else {
            return;
        };
        debug_assert!(
            self.entries
                .iter()
                .all(|(_, e)| (e.from, e.to, e.kind) == (first.from, first.to, first.kind)),
            "a batch spans one (from, to, kind) route"
        );
        first.from.encode(out);
        first.to.encode(out);
        first.kind.encode(out);
        for (k, e) in &self.entries {
            k.encode(out);
            e.payload.len().encode(out);
            out.extend_from_slice(&e.payload);
            e.accounting.encode(out);
        }
    }

    /// Streaming decode; entry payloads are copied out of `input`.
    /// Transports holding the frame as [`Bytes`] should use
    /// [`BatchEnvelope::decode_shared`] (every entry payload a zero-copy
    /// slice of the frame) or iterate [`BatchEntries`] (fully borrowed).
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let mut iter = BatchEntries::<K>::parse(input)?;
        // lint: allow(capacity) — entry count validated against the input length in BatchEntries::parse
        let mut entries = Vec::with_capacity(iter.remaining());
        for item in &mut iter {
            let (k, env) = item?;
            entries.push((k, env.to_envelope()));
        }
        *input = iter.rest();
        Ok(BatchEnvelope { entries })
    }
}

impl<K: WireEncode> BatchEnvelope<K> {
    /// Decode one received batch frame, zero-copy: every entry's payload
    /// is a shared slice of `frame`, so fanning a 30 K-object batch out
    /// to its per-object engines re-vectors nothing. The frame must
    /// contain exactly one batch ([`CodecError::TrailingBytes`]
    /// otherwise — a transport frame is the unit of transmission).
    pub fn decode_shared(frame: &Bytes) -> Result<Self, CodecError> {
        let mut input: &[u8] = frame;
        let mut iter = BatchEntries::<K>::parse(&mut input)?;
        // lint: allow(capacity) — entry count validated against the input length in BatchEntries::parse
        let mut entries = Vec::with_capacity(iter.remaining());
        for item in &mut iter {
            let (k, env) = item?;
            entries.push((k, env.shared(frame)));
        }
        if !iter.rest().is_empty() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(BatchEnvelope { entries })
    }
}

/// A borrowed, lazily-decoded iterator over a batch frame's entries:
/// yields `(key, envelope view)` pairs whose payloads borrow the frame —
/// no per-entry copy, no up-front `Vec` of entries.
///
/// Obtained from [`BatchEntries::parse`]. Decoding errors surface as the
/// iterator's `Err` item (after which iteration stops); corrupt length
/// fields are rejected before any proportional allocation.
#[derive(Debug)]
pub struct BatchEntries<'a, K> {
    remaining: usize,
    route: Option<(ReplicaId, ReplicaId, ProtocolKind)>,
    cursor: &'a [u8],
    _key: PhantomData<fn() -> K>,
}

impl<'a, K: WireEncode> BatchEntries<'a, K> {
    /// Parse the batch header from the front of `input`, advancing it
    /// past the header; the returned iterator consumes the entries.
    pub fn parse(input: &mut &'a [u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        // Hostile count guard: every entry costs ≥ 1 byte, so a count
        // beyond the remaining input cannot be honest — reject before
        // anyone trusts it for a preallocation.
        if len > input.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let route = if len == 0 {
            None
        } else {
            let from = ReplicaId::decode(input)?;
            let to = ReplicaId::decode(input)?;
            let kind = ProtocolKind::decode(input)?;
            Some((from, to, kind))
        };
        let iter = BatchEntries {
            remaining: len,
            route,
            cursor: input,
            _key: PhantomData,
        };
        Ok(iter)
    }

    /// The batch's shared `(from, to, kind)` header; `None` when empty.
    pub fn route(&self) -> Option<(ReplicaId, ReplicaId, ProtocolKind)> {
        self.route
    }

    /// Entries not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The unconsumed input after the last yielded entry. Only the whole
    /// batch's worth once the iterator is exhausted.
    pub fn rest(&self) -> &'a [u8] {
        self.cursor
    }

    fn next_entry(&mut self) -> Result<(K, WireEnvelopeRef<'a>), CodecError> {
        let (from, to, kind) = self.route.expect("non-empty batch has a route");
        let input = &mut self.cursor;
        let k = K::decode(input)?;
        let payload_len = usize::decode(input)?;
        if input.len() < payload_len {
            return Err(CodecError::UnexpectedEnd);
        }
        let (payload, rest) = input.split_at(payload_len);
        *input = rest;
        let accounting = WireAccounting::decode(input)?;
        Ok((
            k,
            WireEnvelopeRef {
                from,
                to,
                kind,
                payload,
                accounting,
            },
        ))
    }
}

impl<'a, K: WireEncode> Iterator for BatchEntries<'a, K> {
    type Item = Result<(K, WireEnvelopeRef<'a>), CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let item = self.next_entry();
        if item.is_err() {
            // A corrupt entry poisons the rest of the frame.
            self.remaining = 0;
        }
        Some(item)
    }
}

/// An operation, encoded for the type-erased boundary.
///
/// Produced by [`OpBytes::encode`] from any wire-encodable `C::Op`; the
/// engine's adapter decodes it back to the concrete type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBytes(pub Vec<u8>);

impl OpBytes {
    /// Encode a typed operation.
    pub fn encode<O: WireEncode>(op: &O) -> Self {
        OpBytes(op.to_bytes())
    }

    /// Decode back to a typed operation.
    pub fn decode<O: WireEncode>(&self) -> Result<O, CodecError> {
        O::from_bytes(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure at the type-erased boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A payload failed to decode.
    Codec(CodecError),
    /// An envelope of one protocol was handed to an engine of another.
    ProtocolMismatch {
        /// The receiving engine's protocol.
        expected: ProtocolKind,
        /// The envelope's protocol.
        got: ProtocolKind,
    },
    /// A bootstrap source is not an engine of the same concrete protocol
    /// and CRDT, so its snapshot (state **and** protocol metadata) cannot
    /// be adopted.
    BootstrapMismatch,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Codec(e) => write!(f, "payload decode failed: {e}"),
            EngineError::ProtocolMismatch { expected, got } => {
                write!(
                    f,
                    "protocol mismatch: engine runs {expected}, envelope carries {got}"
                )
            }
            EngineError::BootstrapMismatch => {
                f.write_str("bootstrap source is not the same protocol/CRDT as this engine")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

// ---------------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------------

/// Registry-backed counters an engine bumps as it synchronizes. One
/// set per node/replica (register against that node's
/// [`crdt_obs::Registry`]); cheap to clone, cells are shared.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// `engine.sync.frames` — envelopes produced by sync steps and
    /// push-pull replies.
    pub sync_frames: crdt_obs::Counter,
    /// `engine.sync.bytes` — encoded payload bytes of those envelopes.
    pub sync_bytes: crdt_obs::Counter,
    /// `engine.absorb.frames` — incoming envelopes absorbed.
    pub absorb_frames: crdt_obs::Counter,
    /// `engine.ops` — local update operations applied.
    pub ops: crdt_obs::Counter,
    /// `engine.compact.pruned` — causally-stable metadata entries
    /// pruned by compaction.
    pub compact_pruned: crdt_obs::Counter,
}

impl EngineMetrics {
    /// Register (or look up) the engine cells in `reg`.
    pub fn register(reg: &crdt_obs::Registry) -> Self {
        EngineMetrics {
            sync_frames: crdt_obs::register_counter!(
                reg,
                "engine.sync.frames",
                "envelopes produced by sync steps and push-pull replies"
            ),
            sync_bytes: crdt_obs::register_counter!(
                reg,
                "engine.sync.bytes",
                "encoded payload bytes of produced envelopes"
            ),
            absorb_frames: crdt_obs::register_counter!(
                reg,
                "engine.absorb.frames",
                "incoming envelopes absorbed"
            ),
            ops: crdt_obs::register_counter!(reg, "engine.ops", "local update operations applied"),
            compact_pruned: crdt_obs::register_counter!(
                reg,
                "engine.compact.pruned",
                "causally-stable metadata entries pruned by compaction"
            ),
        }
    }
}

/// Object-safe synchronization engine: one replica of one protocol over
/// the unified [`WireEnvelope`] wire format.
///
/// The mirror of [`Protocol`] with every associated item erased, so
/// `Box<dyn SyncEngine>` instances of *different* protocols (or over
/// different CRDTs) share one runner, store, or transport. Obtain one
/// from [`build_engine`] (runtime selection) or wrap a concrete protocol
/// with [`EngineAdapter`].
pub trait SyncEngine: fmt::Debug {
    /// The replica this engine lives at.
    fn id(&self) -> ReplicaId;

    /// Which protocol this engine runs.
    fn kind(&self) -> ProtocolKind;

    /// Human-readable protocol name (matches `Protocol::NAME`).
    fn protocol_name(&self) -> &'static str {
        self.kind().name()
    }

    /// Handle a local update operation (encoded; see [`OpBytes`]).
    fn on_op(&mut self, op: &OpBytes) -> Result<(), EngineError>;

    /// Periodic synchronization step towards `neighbors`, encoding
    /// through `pool`'s recycled scratch: the whole step's messages land
    /// in **one** shared payload allocation (zero when nothing is sent),
    /// and the scratch buffer returns to the pool for the next round.
    /// This is the hot-path primitive every runner calls.
    fn on_sync_pooled(
        &mut self,
        neighbors: &[ReplicaId],
        pool: &mut BufferPool,
    ) -> Vec<WireEnvelope>;

    /// Handle an incoming envelope *view* — the payload is decoded
    /// straight from the borrowed frame slice, never copied into an
    /// owned buffer first. Replies (push-pull protocols) encode through
    /// `pool` like [`SyncEngine::on_sync_pooled`].
    fn on_msg_ref(
        &mut self,
        env: WireEnvelopeRef<'_>,
        pool: &mut BufferPool,
    ) -> Result<Vec<WireEnvelope>, EngineError>;

    /// Periodic synchronization step towards `neighbors` (convenience:
    /// throwaway scratch; prefer [`SyncEngine::on_sync_pooled`] in
    /// per-round loops).
    fn on_sync(&mut self, neighbors: &[ReplicaId]) -> Vec<WireEnvelope> {
        self.on_sync_pooled(neighbors, &mut BufferPool::new())
    }

    /// Handle an incoming envelope with pooled reply encoding. The
    /// envelope's payload is already a shared [`Bytes`] slice, so
    /// passing it by value is reference-count cheap.
    fn on_msg_pooled(
        &mut self,
        env: WireEnvelope,
        pool: &mut BufferPool,
    ) -> Result<Vec<WireEnvelope>, EngineError> {
        self.on_msg_ref(env.view(), pool)
    }

    /// Handle an incoming envelope; may return replies (push-pull
    /// protocols). Convenience with throwaway scratch; prefer
    /// [`SyncEngine::on_msg_pooled`] or [`SyncEngine::on_msg_ref`] in
    /// per-round loops.
    fn on_msg(&mut self, env: WireEnvelope) -> Result<Vec<WireEnvelope>, EngineError> {
        self.on_msg_pooled(env, &mut BufferPool::new())
    }

    /// Memory snapshot under the engine's size model.
    fn memory(&self) -> MemoryUsage;

    /// Elements in the replica's CRDT lattice state.
    fn state_elements(&self) -> u64;

    /// Deterministic 64-bit hash of the lattice state (same across
    /// replicas and processes) — the per-object summary a keyspace
    /// Merkle tree aggregates. Equal states hash equal; protocol
    /// metadata (buffers, clocks) is deliberately excluded, so two
    /// replicas agreeing on every state hash agree on every value.
    fn state_hash(&self) -> u64;

    /// Prune causally stable synchronization metadata (see
    /// [`Protocol::compact`]); returns the number of pruned entries.
    /// Never changes the lattice state.
    fn compact(&mut self) -> u64 {
        0
    }

    /// The lattice state as `Any`, for typed access by callers that know
    /// the CRDT (`engine.state_any().downcast_ref::<C>()`).
    fn state_any(&self) -> &dyn Any;

    /// Do two engines hold the same lattice state? `false` when the
    /// underlying CRDT types differ.
    fn state_eq(&self, other: &dyn SyncEngine) -> bool;

    /// The engine itself as `Any` — lets [`SyncEngine::bootstrap_from`]
    /// recover a same-typed peer and adopt protocol metadata, not just
    /// lattice state.
    fn as_any(&self) -> &dyn Any;

    /// Discard all protocol state, returning the engine to the freshly
    /// constructed `⊥` replica — the semantics of a **non-durable crash**.
    /// Pair with [`SyncEngine::bootstrap_from`] to rejoin from a live
    /// peer.
    fn reset(&mut self);

    /// The cluster grew (or shrank) to `n_nodes` replicas. Drivers call
    /// this on every existing engine when a replica joins; protocols
    /// whose safety depends on the system size react through
    /// [`Protocol::on_params_change`] (Scuttlebutt-GC must not prune
    /// deltas the joiner has not seen).
    fn set_system_size(&mut self, n_nodes: usize);

    /// Out-of-band state transfer from a peer engine (crash recovery and
    /// join-with-bootstrap): adopt `source`'s lattice state plus whatever
    /// protocol metadata the wrapped [`Protocol::bootstrap`] carries over
    /// (δ-buffers, version vectors, delivery clocks, …).
    ///
    /// Returns the accounting of the shipped snapshot — a full-state
    /// transfer under this engine's size model — so fault-scenario
    /// drivers can charge recovery traffic honestly.
    ///
    /// # Errors
    ///
    /// [`EngineError::BootstrapMismatch`] when `source` is not an engine
    /// of the same concrete protocol and CRDT.
    fn bootstrap_from(&mut self, source: &dyn SyncEngine) -> Result<WireAccounting, EngineError>;

    /// Attach registry-backed counters; the engine bumps them from the
    /// next step onward. Default is a no-op so hand-rolled engines and
    /// test doubles stay source-compatible.
    fn set_metrics(&mut self, _metrics: &EngineMetrics) {}
}

// ---------------------------------------------------------------------------
// EngineAdapter
// ---------------------------------------------------------------------------

/// Blanket bridge from the generic world to the erased one: wraps any
/// `P: Protocol<C>` whose messages and operations are wire-encodable.
///
/// Construction derives the [`ProtocolKind`] from `P::NAME`, so adapters
/// for the paper's suite need no extra annotation:
///
/// ```
/// use crdt_lattice::ReplicaId;
/// use crdt_sync::{BpRrDelta, EngineAdapter, OpBytes, Params, SyncEngine};
/// use crdt_types::{GSet, GSetOp};
///
/// let params = Params::new(2);
/// let mut engine: Box<dyn SyncEngine> = Box::new(
///     EngineAdapter::<GSet<u64>, BpRrDelta<GSet<u64>>>::new(ReplicaId(0), &params),
/// );
/// engine.on_op(&OpBytes::encode(&GSetOp::Add(7u64))).unwrap();
/// let out = engine.on_sync(&[ReplicaId(1)]);
/// assert_eq!(out[0].accounting.payload_elements, 1);
/// ```
pub struct EngineAdapter<C: Crdt, P: Protocol<C>> {
    id: ReplicaId,
    kind: ProtocolKind,
    inner: P,
    model: SizeModel,
    /// Construction parameters, retained so [`SyncEngine::reset`] can
    /// rebuild the wrapped protocol from scratch.
    params: Params,
    /// `(mutation_epoch, hash)` memo for [`SyncEngine::state_hash`], valid
    /// only for CRDTs reporting a [`Crdt::mutation_epoch`]: equal epochs
    /// imply equal state, so the `Debug`-walk hash can be reused until the
    /// state actually changes (convergence checks poll the hash far more
    /// often than states mutate).
    hash_cache: Cell<Option<(u64, u64)>>,
    /// Registry-backed counters, attached via [`SyncEngine::set_metrics`];
    /// `None` (the default) costs one branch per step.
    metrics: Option<EngineMetrics>,
    _crdt: PhantomData<fn() -> C>,
}

impl<C: Crdt, P: Protocol<C>> fmt::Debug for EngineAdapter<C, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineAdapter")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<C: Crdt, P: Protocol<C>> EngineAdapter<C, P> {
    /// Wrap a fresh `P` replica; the kind is derived from `P::NAME`.
    ///
    /// # Panics
    ///
    /// If `P::NAME` is not one of the paper suite's labels — wrap custom
    /// protocols with [`EngineAdapter::with_kind`] instead.
    pub fn new(id: ReplicaId, params: &Params) -> Self {
        let kind = P::NAME
            .parse()
            .unwrap_or_else(|_| panic!("protocol {:?} is not a built-in kind", P::NAME));
        Self::with_kind(kind, id, params, SizeModel::default())
    }

    /// Wrap a fresh `P` replica under an explicit kind and size model.
    pub fn with_kind(kind: ProtocolKind, id: ReplicaId, params: &Params, model: SizeModel) -> Self {
        EngineAdapter {
            id,
            kind,
            inner: P::new(id, params),
            model,
            params: *params,
            hash_cache: Cell::new(None),
            metrics: None,
            _crdt: PhantomData,
        }
    }

    /// The wrapped protocol instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Charge produced envelopes to the attached counters, if any.
    fn charge_outgoing(&self, envs: &[WireEnvelope]) {
        if let Some(m) = &self.metrics {
            m.sync_frames.add(envs.len() as u64);
            m.sync_bytes
                .add(envs.iter().map(|e| e.accounting.encoded_bytes).sum());
        }
    }

    /// Encode a step's `(to, msg)` output through the pool's scratch:
    /// one shared frame allocation for the whole step, each envelope's
    /// payload a zero-copy slice of it.
    fn seal(&self, msgs: &[(ReplicaId, P::Msg)], pool: &mut BufferPool) -> Vec<WireEnvelope>
    where
        P::Msg: WireEncode,
    {
        if msgs.is_empty() {
            return Vec::new();
        }
        let mut scratch = pool.take();
        let mut pending = Vec::with_capacity(msgs.len());
        for (to, msg) in msgs {
            let start = scratch.len();
            msg.encode(&mut scratch);
            let accounting = WireAccounting {
                payload_elements: msg.payload_elements(),
                payload_bytes: msg.payload_bytes(&self.model),
                metadata_bytes: msg.metadata_bytes(&self.model),
                encoded_bytes: (scratch.len() - start) as u64,
            };
            pending.push((*to, start..scratch.len(), accounting));
        }
        let frame = pool.freeze(scratch);
        pending
            .into_iter()
            .map(|(to, range, accounting)| WireEnvelope {
                from: self.id,
                to,
                kind: self.kind,
                payload: frame.slice(range),
                accounting,
            })
            .collect()
    }
}

impl<C, P> SyncEngine for EngineAdapter<C, P>
where
    C: Crdt + 'static,
    C::Op: WireEncode,
    P: Protocol<C> + 'static,
    P::Msg: WireEncode,
{
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn kind(&self) -> ProtocolKind {
        self.kind
    }

    fn protocol_name(&self) -> &'static str {
        P::NAME
    }

    fn on_op(&mut self, op: &OpBytes) -> Result<(), EngineError> {
        let op: C::Op = op.decode()?;
        self.inner.on_op(&op);
        if let Some(m) = &self.metrics {
            m.ops.inc();
        }
        Ok(())
    }

    fn on_sync_pooled(
        &mut self,
        neighbors: &[ReplicaId],
        pool: &mut BufferPool,
    ) -> Vec<WireEnvelope> {
        let mut out = Vec::new();
        self.inner.on_sync(neighbors, &mut out);
        let sealed = self.seal(&out, pool);
        self.charge_outgoing(&sealed);
        sealed
    }

    fn on_msg_ref(
        &mut self,
        env: WireEnvelopeRef<'_>,
        pool: &mut BufferPool,
    ) -> Result<Vec<WireEnvelope>, EngineError> {
        if env.kind != self.kind {
            return Err(EngineError::ProtocolMismatch {
                expected: self.kind,
                got: env.kind,
            });
        }
        let msg = P::Msg::from_bytes(env.payload)?;
        if let Some(m) = &self.metrics {
            m.absorb_frames.inc();
        }
        let mut out = Vec::new();
        self.inner.on_msg(env.from, msg, &mut out);
        let sealed = self.seal(&out, pool);
        self.charge_outgoing(&sealed);
        Ok(sealed)
    }

    fn memory(&self) -> MemoryUsage {
        self.inner.memory(&self.model)
    }

    fn state_elements(&self) -> u64 {
        self.inner.state().count_elements()
    }

    fn state_hash(&self) -> u64 {
        let state = self.inner.state();
        match state.mutation_epoch() {
            Some(epoch) => {
                if let Some((cached_epoch, hash)) = self.hash_cache.get() {
                    if cached_epoch == epoch {
                        return hash;
                    }
                }
                let hash = state_hash_of(state);
                self.hash_cache.set(Some((epoch, hash)));
                hash
            }
            None => state_hash_of(state),
        }
    }

    fn compact(&mut self) -> u64 {
        let pruned = self.inner.compact();
        if let Some(m) = &self.metrics {
            m.compact_pruned.add(pruned);
        }
        pruned
    }

    fn state_any(&self) -> &dyn Any {
        self.inner.state()
    }

    fn state_eq(&self, other: &dyn SyncEngine) -> bool {
        other
            .state_any()
            .downcast_ref::<C>()
            .is_some_and(|s| s == self.inner.state())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn reset(&mut self) {
        self.inner = P::new(self.id, &self.params);
    }

    fn set_system_size(&mut self, n_nodes: usize) {
        self.params.n_nodes = n_nodes;
        self.inner.on_params_change(&self.params);
    }

    fn bootstrap_from(&mut self, source: &dyn SyncEngine) -> Result<WireAccounting, EngineError> {
        let peer = source
            .as_any()
            .downcast_ref::<Self>()
            .ok_or(EngineError::BootstrapMismatch)?;
        let snapshot = peer.inner.state();
        let accounting = WireAccounting {
            payload_elements: snapshot.count_elements(),
            payload_bytes: snapshot.size_bytes(&self.model),
            metadata_bytes: 0,
            encoded_bytes: 0,
        };
        self.inner.bootstrap(&peer.inner);
        Ok(accounting)
    }

    fn set_metrics(&mut self, metrics: &EngineMetrics) {
        self.metrics = Some(metrics.clone());
    }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

/// Build a type-erased engine for `kind` at replica `id`, using the
/// default (compact) size model.
///
/// ```
/// use crdt_lattice::ReplicaId;
/// use crdt_sync::{build_engine, OpBytes, Params, ProtocolKind};
/// use crdt_types::{GSet, GSetOp};
///
/// let params = Params::new(3);
/// let kind: ProtocolKind = "bp_rr".parse().unwrap();
/// let mut engine = build_engine::<GSet<u64>>(kind, ReplicaId(0), &params);
/// engine.on_op(&OpBytes::encode(&GSetOp::Add(1u64))).unwrap();
/// assert_eq!(engine.protocol_name(), "delta+BP+RR");
/// assert_eq!(engine.state_elements(), 1);
/// ```
pub fn build_engine<C>(kind: ProtocolKind, id: ReplicaId, params: &Params) -> Box<dyn SyncEngine>
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    build_engine_with_model::<C>(kind, id, params, SizeModel::default())
}

/// One match arm per kind; the produced `Box<EngineAdapter<..>>` coerces
/// to whichever trait-object box the calling function returns
/// (`dyn SyncEngine` or `dyn SyncEngine + Send`).
macro_rules! engine_for_kind {
    ($C:ty, $kind:expr, $id:expr, $params:expr, $model:expr) => {
        match $kind {
            ProtocolKind::Classic => Box::new(EngineAdapter::<$C, ClassicDelta<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::Bp => Box::new(EngineAdapter::<$C, BpDelta<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::Rr => Box::new(EngineAdapter::<$C, RrDelta<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::BpRr => Box::new(EngineAdapter::<$C, BpRrDelta<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::State => Box::new(EngineAdapter::<$C, StateSync<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::Scuttlebutt => Box::new(EngineAdapter::<$C, Scuttlebutt<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::ScuttlebuttGc => Box::new(
                EngineAdapter::<$C, ScuttlebuttGc<$C>>::with_kind($kind, $id, $params, $model),
            ),
            ProtocolKind::OpBased => Box::new(EngineAdapter::<$C, OpBased<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
            ProtocolKind::Acked => Box::new(EngineAdapter::<$C, AckedDeltaSync<$C>>::with_kind(
                $kind, $id, $params, $model,
            )),
        }
    };
}

/// [`build_engine`] with an explicit size model (the model feeds the
/// envelopes' [`WireAccounting`] and [`SyncEngine::memory`]).
pub fn build_engine_with_model<C>(
    kind: ProtocolKind,
    id: ReplicaId,
    params: &Params,
    model: SizeModel,
) -> Box<dyn SyncEngine>
where
    C: Crdt + WireEncode + 'static,
    C::Op: WireEncode + 'static,
{
    engine_for_kind!(C, kind, id, params, model)
}

/// [`build_engine`] for thread-parallel drivers: the same engines, boxed
/// as `dyn SyncEngine + Send` so shard maps can move across scoped
/// threads (`crdt-sim`'s `ShardedEngineRunner` phase model). Requires the
/// CRDT and its operations to be `Send` — true for every in-tree type.
pub fn build_engine_send<C>(
    kind: ProtocolKind,
    id: ReplicaId,
    params: &Params,
) -> Box<dyn SyncEngine + Send>
where
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    build_engine_send_with_model::<C>(kind, id, params, SizeModel::default())
}

/// [`build_engine_send`] with an explicit size model.
pub fn build_engine_send_with_model<C>(
    kind: ProtocolKind,
    id: ReplicaId,
    params: &Params,
    model: SizeModel,
) -> Box<dyn SyncEngine + Send>
where
    C: Crdt + WireEncode + Send + 'static,
    C::Op: WireEncode + Send + 'static,
{
    engine_for_kind!(C, kind, id, params, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaMsg;
    use crdt_types::{GCounter, GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn kind_parsing_accepts_ids_and_labels() {
        for kind in ProtocolKind::ALL {
            assert_eq!(kind.id().parse::<ProtocolKind>().unwrap(), kind);
            assert_eq!(kind.name().parse::<ProtocolKind>().unwrap(), kind);
        }
        assert_eq!("BP-RR".parse::<ProtocolKind>().unwrap(), ProtocolKind::BpRr);
        assert_eq!(
            "Scuttlebutt-GC".parse::<ProtocolKind>().unwrap(),
            ProtocolKind::ScuttlebuttGc
        );
        assert!("bogus".parse::<ProtocolKind>().is_err());
    }

    /// Parsing ignores case entirely: every id and label round-trips in
    /// UPPER and MiXeD case (a shell-happy `--protocol CLASSIC` works).
    #[test]
    fn kind_parsing_is_case_insensitive() {
        for kind in ProtocolKind::ALL {
            assert_eq!(
                kind.id().to_ascii_uppercase().parse::<ProtocolKind>(),
                Ok(kind),
                "uppercase id for {kind}"
            );
            assert_eq!(
                kind.name().to_ascii_uppercase().parse::<ProtocolKind>(),
                Ok(kind),
                "uppercase label for {kind}"
            );
        }
        assert_eq!(
            "Op_Based".parse::<ProtocolKind>(),
            Ok(ProtocolKind::OpBased)
        );
        assert_eq!("STATE".parse::<ProtocolKind>(), Ok(ProtocolKind::State));
    }

    /// The parse error names every accepted kind, ids and labels both —
    /// the `--protocol` flag's UX depends on it.
    #[test]
    fn unknown_protocol_error_lists_all_kinds() {
        let err = "bogus".parse::<ProtocolKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"bogus\""), "{msg}");
        for kind in ProtocolKind::ALL {
            assert!(msg.contains(kind.id()), "missing id {} in {msg}", kind.id());
            assert!(
                msg.contains(kind.name()),
                "missing label {} in {msg}",
                kind.name()
            );
        }
        assert!(msg.contains("case-insensitive"), "{msg}");
    }

    #[test]
    fn envelope_roundtrips_through_bytes() {
        let env = WireEnvelope {
            from: A,
            to: B,
            kind: ProtocolKind::BpRr,
            payload: Bytes::from(vec![1, 2, 3]),
            accounting: WireAccounting {
                payload_elements: 3,
                payload_bytes: 24,
                metadata_bytes: 0,
                encoded_bytes: 3,
            },
        };
        let back = WireEnvelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn factory_builds_every_kind() {
        let params = Params::new(4);
        for kind in ProtocolKind::ALL {
            let engine = build_engine::<GSet<u64>>(kind, A, &params);
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.protocol_name(), kind.name());
            assert_eq!(engine.id(), A);
        }
    }

    /// Two engines of any kind, driven through envelopes, converge — and
    /// the envelope payloads are genuine bytes (decode checks).
    #[test]
    fn two_engines_converge_over_envelopes() {
        let params = Params::new(2);
        for kind in ProtocolKind::ALL {
            let mut a = build_engine::<GSet<u64>>(kind, A, &params);
            let mut b = build_engine::<GSet<u64>>(kind, B, &params);
            a.on_op(&OpBytes::encode(&GSetOp::Add(1u64))).unwrap();
            b.on_op(&OpBytes::encode(&GSetOp::Add(2u64))).unwrap();

            // Drive rounds until quiescence (push-pull kinds reply).
            for _ in 0..4 {
                let mut in_flight: Vec<WireEnvelope> = Vec::new();
                in_flight.extend(a.on_sync(&[B]));
                in_flight.extend(b.on_sync(&[A]));
                while let Some(env) = in_flight.pop() {
                    let target = if env.to == A { &mut a } else { &mut b };
                    in_flight.extend(target.on_msg(env).unwrap());
                }
            }
            assert!(a.state_eq(b.as_ref()), "{kind} diverged");
            assert_eq!(a.state_elements(), 2, "{kind} lost elements");
        }
    }

    #[test]
    fn mismatched_envelope_is_rejected() {
        let params = Params::new(2);
        let mut bp_rr = build_engine::<GSet<u64>>(ProtocolKind::BpRr, A, &params);
        let env = WireEnvelope {
            from: B,
            to: A,
            kind: ProtocolKind::Scuttlebutt,
            payload: Bytes::new(),
            accounting: WireAccounting::default(),
        };
        assert_eq!(
            bp_rr.on_msg(env),
            Err(EngineError::ProtocolMismatch {
                expected: ProtocolKind::BpRr,
                got: ProtocolKind::Scuttlebutt,
            })
        );
    }

    #[test]
    fn accounting_matches_measured_and_encoding() {
        let params = Params::new(2);
        let model = SizeModel::compact();
        let mut a = build_engine_with_model::<GSet<u64>>(ProtocolKind::BpRr, A, &params, model);
        for e in 0..5u64 {
            a.on_op(&OpBytes::encode(&GSetOp::Add(e))).unwrap();
        }
        let out = a.on_sync(&[B]);
        assert_eq!(out.len(), 1);
        let env = &out[0];
        // Model view agrees with the generic Measured path…
        let msg = DeltaMsg::<GSet<u64>>::from_bytes(&env.payload).unwrap();
        assert_eq!(env.accounting.payload_elements, msg.payload_elements());
        assert_eq!(env.accounting.payload_bytes, msg.payload_bytes(&model));
        // …and the encoded view is the literal payload length.
        assert_eq!(env.accounting.encoded_bytes, env.payload.len() as u64);
        assert!(env.accounting.encoded_bytes > 0);
    }

    /// Drive envelopes between two engines to quiescence for `rounds`
    /// sync rounds.
    fn pump(a: &mut Box<dyn SyncEngine>, b: &mut Box<dyn SyncEngine>, rounds: usize) {
        for _ in 0..rounds {
            let mut in_flight: Vec<WireEnvelope> = Vec::new();
            in_flight.extend(a.on_sync(&[B]));
            in_flight.extend(b.on_sync(&[A]));
            while let Some(env) = in_flight.pop() {
                let target = if env.to == A { &mut *a } else { &mut *b };
                in_flight.extend(target.on_msg(env).unwrap());
            }
        }
    }

    /// A join must raise Scuttlebutt-GC's safe-delete bar on *existing*
    /// engines before the joiner is heard from — otherwise deltas the
    /// joiner has not seen are pruned beyond recovery (Scuttlebutt never
    /// re-ships pruned entries).
    #[test]
    fn set_system_size_blocks_premature_gc_prune() {
        let params = Params::new(2);
        let mut a = build_engine::<GSet<u64>>(ProtocolKind::ScuttlebuttGc, A, &params);
        let mut b = build_engine::<GSet<u64>>(ProtocolKind::ScuttlebuttGc, B, &params);
        a.on_op(&OpBytes::encode(&GSetOp::Add(1u64))).unwrap();
        pump(&mut a, &mut b, 3);
        // Two-node membership complete: the delta was safely pruned.
        assert_eq!(a.memory().meta_elements, 0, "2-node GC prunes");

        // A third replica is joining; existing engines learn first.
        a.set_system_size(3);
        b.set_system_size(3);
        a.on_op(&OpBytes::encode(&GSetOp::Add(2u64))).unwrap();
        pump(&mut a, &mut b, 3);
        assert!(a.state_eq(b.as_ref()));
        // The new delta must be *retained*: the joiner has not seen it.
        assert!(
            a.memory().meta_elements >= 1 && b.memory().meta_elements >= 1,
            "3-node bar keeps the delta for the joiner"
        );
    }

    #[test]
    fn state_eq_is_type_aware() {
        let params = Params::new(2);
        let set = build_engine::<GSet<u64>>(ProtocolKind::BpRr, A, &params);
        let counter = build_engine::<GCounter>(ProtocolKind::BpRr, A, &params);
        assert!(
            !set.state_eq(counter.as_ref()),
            "different CRDTs never compare equal"
        );
    }

    #[test]
    fn bad_payload_reports_codec_error() {
        let params = Params::new(2);
        let mut engine = build_engine::<GSet<String>>(ProtocolKind::BpRr, A, &params);
        let env = WireEnvelope {
            from: B,
            to: A,
            kind: ProtocolKind::BpRr,
            // Claims 2^40 set elements with no bytes behind them.
            payload: Bytes::from(vec![0x80, 0x80, 0x80, 0x80, 0x80, 0x01]),
            accounting: WireAccounting::default(),
        };
        assert!(matches!(engine.on_msg(env), Err(EngineError::Codec(_))));
    }
}
