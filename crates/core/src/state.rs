//! State-based synchronization (paper, §II): the baseline that
//! periodically ships the **full local state** to every neighbor.
//!
//! Correct under message drop/duplication/reordering with zero metadata —
//! which is why it is optimal in the memory study (Fig. 10) — but its
//! transmission grows with the state itself, the problem motivating deltas
//! (Fig. 1).

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_types::Crdt;

use crate::delta::DeltaMsg;
use crate::proto::{MemoryUsage, Params, Protocol};

/// State-based synchronization at one replica.
#[derive(Debug, Clone)]
pub struct StateSync<C> {
    id: ReplicaId,
    state: C,
    /// Dirty flag: full states are only sent when something changed since
    /// the last synchronization (otherwise a quiescent system would
    /// transmit forever, which no practical deployment does).
    dirty: bool,
}

impl<C: Crdt> StateSync<C> {
    /// The replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }
}

impl<C: Crdt> Protocol<C> for StateSync<C> {
    type Msg = DeltaMsg<C>;

    const NAME: &'static str = "state";

    fn new(id: ReplicaId, _params: &Params) -> Self {
        StateSync {
            id,
            state: C::bottom(),
            dirty: false,
        }
    }

    fn on_op(&mut self, op: &C::Op) {
        let _ = self.state.apply(op);
        self.dirty = true;
    }

    fn on_sync(&mut self, neighbors: &[ReplicaId], out: &mut Vec<(ReplicaId, Self::Msg)>) {
        if !self.dirty {
            return;
        }
        for &j in neighbors {
            out.push((j, DeltaMsg(self.state.clone())));
        }
        self.dirty = false;
    }

    fn on_msg(&mut self, _from: ReplicaId, msg: Self::Msg, _out: &mut Vec<(ReplicaId, Self::Msg)>) {
        if self.state.join_assign(msg.0) {
            // The merged-in remote state is news; propagate it onward at
            // the next synchronization (full-state gossip).
            self.dirty = true;
        }
    }

    fn state(&self) -> &C {
        &self.state
    }

    fn memory(&self, model: &SizeModel) -> MemoryUsage {
        MemoryUsage {
            crdt_elements: self.state.count_elements(),
            crdt_bytes: self.state.size_bytes(model),
            // No synchronization metadata at all — the Fig. 10 optimum.
            meta_elements: 0,
            meta_bytes: 0,
        }
    }

    fn bootstrap(&mut self, source: &Self) {
        if self.state.join_assign(source.state.clone()) {
            // The snapshot was news: re-gossip it like any received state.
            self.dirty = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Measured;
    use crdt_lattice::SizeModel;
    use crdt_types::{GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const P: Params = Params::new(2);

    #[test]
    fn sends_full_state_each_round() {
        let mut a: StateSync<GSet<u32>> = StateSync::new(A, &P);
        let mut out = Vec::new();
        for i in 0..5 {
            a.on_op(&GSetOp::Add(i));
            a.on_sync(&[B], &mut out);
        }
        // Rounds send 1, 2, 3, 4, 5 elements: the growth of Fig. 1.
        let sizes: Vec<u64> = out.iter().map(|(_, m)| m.payload_elements()).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn quiescent_replica_stops_sending() {
        let mut a: StateSync<GSet<u32>> = StateSync::new(A, &P);
        a.on_op(&GSetOp::Add(1));
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1);
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1, "no change ⇒ no send");
    }

    #[test]
    fn received_news_is_forwarded() {
        let mut a: StateSync<GSet<u32>> = StateSync::new(A, &P);
        let mut out = Vec::new();
        a.on_msg(B, DeltaMsg(GSet::from_iter([7])), &mut out);
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1, "remote news re-gossiped");
        // Stale delivery does not re-arm the dirty flag.
        a.on_msg(B, DeltaMsg(GSet::from_iter([7])), &mut out);
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tolerates_duplication_and_reordering() {
        let mut a: StateSync<GSet<u32>> = StateSync::new(A, &P);
        let m1 = DeltaMsg(GSet::from_iter([1]));
        let m2 = DeltaMsg(GSet::from_iter([1, 2]));
        let mut out = Vec::new();
        // Reordered + duplicated delivery.
        a.on_msg(B, m2.clone(), &mut out);
        a.on_msg(B, m1.clone(), &mut out);
        a.on_msg(B, m2, &mut out);
        a.on_msg(B, m1, &mut out);
        assert_eq!(a.state().len(), 2);
    }

    #[test]
    fn zero_metadata_memory() {
        let model = SizeModel::compact();
        let mut a: StateSync<GSet<u32>> = StateSync::new(A, &P);
        a.on_op(&GSetOp::Add(1));
        let m = a.memory(&model);
        assert_eq!(m.meta_bytes, 0);
        assert_eq!(m.crdt_elements, 1);
    }
}
