//! State-driven and digest-driven pairwise synchronization (paper, §VI;
//! introduced in \[30\], built on the same join decompositions).
//!
//! These repair a *pair* of replicas after a partition, avoiding
//! bidirectional full-state transfer:
//!
//! * **state-driven** (2 messages): `A` sends its full state `x_A`; `B`
//!   computes `Δ(x_B, x_A)` — exactly the updates `A` missed — and sends
//!   it back. One full state crosses the wire instead of two.
//! * **digest-driven** (3 messages): `A` sends a *digest* of `x_A`
//!   (smaller than the state); `B` uses it to compute a delta for `A`, and
//!   piggybacks its own digest so `A` can compute a delta for `B`. No full
//!   state crosses the wire at all.
//!
//! The digest here is the set of 64-bit hashes of the state's
//! join-irreducibles. This is **sound** (every irreducible the peer lacks
//! is sent, so both sides converge to `x_A ⊔ x_B`) and exact for set-like
//! decompositions; for chain-valued entries (e.g. GCounter cells) a hash
//! cannot express "I hold a *smaller* entry", so a peer may send an
//! irreducible the other side already dominates. That over-send is safe —
//! joins are idempotent — and bounded by one irreducible per stale entry.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use crdt_lattice::{join_all, CodecError, Decompose, SizeModel, StateSize, WireEncode};

/// A state digest: hashes of the join-irreducibles of `⇓x`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Digest {
    hashes: BTreeSet<u64>,
}

impl Digest {
    /// Digest of a decomposable state.
    pub fn of<C: Decompose>(state: &C) -> Self {
        let mut hashes = BTreeSet::new();
        state.for_each_irreducible(&mut |y| {
            hashes.insert(hash_irreducible(&y));
        });
        Digest { hashes }
    }

    /// Does the digest cover this irreducible?
    pub fn covers<C: Decompose>(&self, irreducible: &C) -> bool {
        self.hashes.contains(&hash_irreducible(irreducible))
    }

    /// Number of summarized irreducibles.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Is the digest empty?
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Wire size: 8 bytes per hash.
    pub fn size_bytes(&self) -> u64 {
        8 * self.hashes.len() as u64
    }
}

/// Digests cross real transports (`crdt-net`'s repair handshake runs the
/// 3-message protocol of §VI over sockets), so they encode like any
/// other wire value: the sorted hash set, varint-framed.
impl WireEncode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hashes.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Digest {
            hashes: BTreeSet::decode(input)?,
        })
    }
}

/// Hash one join-irreducible.
///
/// Uses the deterministic `DefaultHasher` over the `Debug` rendering:
/// irreducibles are small (single entries/elements), `Debug` for the
/// lattice types in this workspace is a faithful canonical form (ordered
/// containers), and determinism across replicas is required for digests
/// to be comparable.
fn hash_irreducible<C: Decompose>(y: &C) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{y:?}").hash(&mut h);
    h.finish()
}

/// The irreducibles of `state` not covered by `digest`, joined.
pub fn delta_for_digest<C: Decompose>(state: &C, digest: &Digest) -> C {
    let mut missing = Vec::new();
    state.for_each_irreducible(&mut |y| {
        if !digest.covers(&y) {
            missing.push(y);
        }
    });
    join_all(missing)
}

/// Transmission statistics of a pairwise synchronization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairSyncStats {
    /// Messages exchanged (2 for state-driven, 3 for digest-driven).
    pub messages: u32,
    /// Lattice elements shipped (full states count their elements).
    pub payload_elements: u64,
    /// Payload bytes shipped.
    pub payload_bytes: u64,
    /// Digest/metadata bytes shipped.
    pub metadata_bytes: u64,
}

/// State-driven synchronization of two replicas (2 messages).
///
/// After the call both states equal `a ⊔ b`.
pub fn state_driven_sync<C: Decompose + StateSize>(
    a: &mut C,
    b: &mut C,
    model: &SizeModel,
) -> PairSyncStats {
    let mut stats = PairSyncStats::default();

    // Message 1: A → B, full state.
    let x_a = a.clone();
    stats.messages += 1;
    stats.payload_elements += x_a.count_elements();
    stats.payload_bytes += x_a.size_bytes(model);

    // B computes what A missed *before* merging, then merges.
    let delta_for_a = b.delta(&x_a);
    b.join_assign(x_a);

    // Message 2: B → A, the delta.
    stats.messages += 1;
    stats.payload_elements += delta_for_a.count_elements();
    stats.payload_bytes += delta_for_a.size_bytes(model);
    a.join_assign(delta_for_a);

    stats
}

/// Digest-driven synchronization of two replicas (3 messages).
///
/// After the call both states equal `a ⊔ b`.
pub fn digest_driven_sync<C: Decompose + StateSize>(
    a: &mut C,
    b: &mut C,
    model: &SizeModel,
) -> PairSyncStats {
    let mut stats = PairSyncStats::default();

    // Message 1: A → B, digest(x_A).
    let digest_a = Digest::of(a);
    stats.messages += 1;
    stats.metadata_bytes += digest_a.size_bytes();

    // Message 2: B → A, delta for A + digest(x_B before merge).
    let delta_for_a = delta_for_digest(b, &digest_a);
    let digest_b = Digest::of(b);
    stats.messages += 1;
    stats.payload_elements += delta_for_a.count_elements();
    stats.payload_bytes += delta_for_a.size_bytes(model);
    stats.metadata_bytes += digest_b.size_bytes();
    a.join_assign(delta_for_a);

    // Message 3: A → B, delta for B (computed against B's digest).
    let delta_for_b = delta_for_digest(a, &digest_b);
    stats.messages += 1;
    stats.payload_elements += delta_for_b.count_elements();
    stats.payload_bytes += delta_for_b.size_bytes(model);
    b.join_assign(delta_for_b);

    stats
}

/// Digest-driven pairwise repair **by reference**: compute the δ-groups
/// each replica is missing from the other, without mutating (or
/// requiring ownership of) either input state.
///
/// Every repair-capable driver in the workspace used to open-code the
/// same four-clone dance — clone both states out of `self`, clone both
/// again into scratch for [`digest_driven_sync`], then diff the merged
/// scratch against the originals. This helper is that dance, once:
/// callers pass `&xa, &xb` and get back
/// `(delta_for_a, delta_for_b, stats)` where each delta is exactly what
/// the scratch-based formulation injected (`(x ⊔ received).delta(&x)` —
/// bottom when the side was already current), and `stats` is
/// byte-identical to [`digest_driven_sync`]'s three-message accounting.
/// Only the two intermediate merges are materialized internally; the
/// call site clones nothing.
pub fn digest_repair_deltas<C: Decompose + StateSize>(
    xa: &C,
    xb: &C,
    model: &SizeModel,
) -> (C, C, PairSyncStats) {
    let mut stats = PairSyncStats::default();

    // Message 1: A → B, digest(x_A).
    let digest_a = Digest::of(xa);
    stats.messages += 1;
    stats.metadata_bytes += digest_a.size_bytes();

    // Message 2: B → A, delta for A + digest(x_B before merge).
    let received_a = delta_for_digest(xb, &digest_a);
    let digest_b = Digest::of(xb);
    stats.messages += 1;
    stats.payload_elements += received_a.count_elements();
    stats.payload_bytes += received_a.size_bytes(model);
    stats.metadata_bytes += digest_b.size_bytes();
    let merged_a = xa.clone().join(received_a);

    // Message 3: A → B, delta for B (computed against B's digest, from
    // A's merged state).
    let received_b = delta_for_digest(&merged_a, &digest_b);
    stats.messages += 1;
    stats.payload_elements += received_b.count_elements();
    stats.payload_bytes += received_b.size_bytes(model);
    let merged_b = xb.clone().join(received_b);

    (merged_a.delta(xa), merged_b.delta(xb), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::{Bottom, Lattice, MapLattice, Max, ReplicaId, SetLattice};

    type S = SetLattice<u32>;
    type GC = MapLattice<ReplicaId, Max<u64>>;

    #[test]
    fn state_driven_converges_in_two_messages() {
        let model = SizeModel::compact();
        let mut a = S::from_iter([1, 2, 3]);
        let mut b = S::from_iter([3, 4]);
        let expect = a.clone().join(b.clone());
        let stats = state_driven_sync(&mut a, &mut b, &model);
        assert_eq!(a, expect);
        assert_eq!(b, expect);
        assert_eq!(stats.messages, 2);
        // 3 elements over, 2 elements ({4} would be 1... Δ(b,a) = {4}) back.
        assert_eq!(stats.payload_elements, 3 + 1);
    }

    #[test]
    fn digest_driven_converges_in_three_messages() {
        let model = SizeModel::compact();
        let mut a = S::from_iter([1, 2, 3]);
        let mut b = S::from_iter([3, 4]);
        let expect = a.clone().join(b.clone());
        let stats = digest_driven_sync(&mut a, &mut b, &model);
        assert_eq!(a, expect);
        assert_eq!(b, expect);
        assert_eq!(stats.messages, 3);
        // Payload: {4} to A, {1,2} to B — no full state crossed the wire.
        assert_eq!(stats.payload_elements, 1 + 2);
        // Metadata: two digests (3 + 2 hashes).
        assert_eq!(stats.metadata_bytes, 8 * 5);
    }

    #[test]
    fn digest_driven_ships_less_payload_when_mostly_shared() {
        let model = SizeModel::compact();
        let shared: Vec<u32> = (0..100).collect();
        let mut a = S::from_iter(shared.iter().copied());
        let mut b = S::from_iter(shared.iter().copied().chain([1000]));
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let sd = state_driven_sync(&mut a, &mut b, &model);
        let dd = digest_driven_sync(&mut a2, &mut b2, &model);
        assert_eq!(a, a2);
        assert!(
            dd.payload_bytes < sd.payload_bytes,
            "digest-driven payload {} must beat state-driven {}",
            dd.payload_bytes,
            sd.payload_bytes
        );
    }

    #[test]
    fn gcounter_digest_sync_converges_with_bounded_oversend() {
        let model = SizeModel::compact();
        let a0 = GC::from_iter([(ReplicaId(0), Max::new(5)), (ReplicaId(1), Max::new(2))]);
        let b0 = GC::from_iter([(ReplicaId(0), Max::new(3)), (ReplicaId(2), Max::new(7))]);
        let expect = a0.clone().join(b0.clone());
        let mut a = a0;
        let mut b = b0;
        let stats = digest_driven_sync(&mut a, &mut b, &model);
        assert_eq!(a, expect);
        assert_eq!(b, expect);
        // Over-send is bounded: at most one irreducible per entry per side.
        assert!(stats.payload_elements <= 4);
    }

    #[test]
    fn digest_covers_its_own_parts() {
        let s = S::from_iter([1, 2, 3]);
        let d = Digest::of(&s);
        assert_eq!(d.len(), 3);
        s.for_each_irreducible(&mut |y| assert!(d.covers(&y)));
        assert!(!d.covers(&S::from_iter([9])));
        assert!(Digest::of(&S::bottom()).is_empty());
    }

    /// The by-reference helper must be indistinguishable from the
    /// scratch-based formulation every runner used to open-code: same
    /// three-message stats, same injected deltas, inputs untouched.
    #[test]
    fn repair_deltas_match_the_scratch_formulation() {
        let model = SizeModel::compact();
        let cases: Vec<(S, S)> = vec![
            (S::from_iter([1, 2, 3]), S::from_iter([3, 4])),
            (S::from_iter([1]), S::from_iter([1])),
            (S::bottom(), S::from_iter([7, 8])),
            (S::bottom(), S::bottom()),
        ];
        for (xa, xb) in cases {
            let (mut ca, mut cb) = (xa.clone(), xb.clone());
            let scratch_stats = digest_driven_sync(&mut ca, &mut cb, &model);
            let (da, db, stats) = digest_repair_deltas(&xa, &xb, &model);
            assert_eq!(stats, scratch_stats);
            assert_eq!(da, ca.delta(&xa));
            assert_eq!(db, cb.delta(&xb));
            assert_eq!(xa.clone().join(da), ca, "A side converges identically");
            assert_eq!(xb.clone().join(db), cb, "B side converges identically");
        }
        // Chain-valued entries (the over-send corner): still identical.
        let ga = GC::from_iter([(ReplicaId(0), Max::new(5)), (ReplicaId(1), Max::new(2))]);
        let gb = GC::from_iter([(ReplicaId(0), Max::new(3)), (ReplicaId(2), Max::new(7))]);
        let (mut ca, mut cb) = (ga.clone(), gb.clone());
        let scratch_stats = digest_driven_sync(&mut ca, &mut cb, &model);
        let (da, db, stats) = digest_repair_deltas(&ga, &gb, &model);
        assert_eq!(stats, scratch_stats);
        assert_eq!(da, ca.delta(&ga));
        assert_eq!(db, cb.delta(&gb));
    }

    #[test]
    fn sync_of_equal_states_ships_nothing() {
        let model = SizeModel::compact();
        let mut a = S::from_iter([1, 2]);
        let mut b = a.clone();
        let stats = digest_driven_sync(&mut a, &mut b, &model);
        assert_eq!(stats.payload_elements, 0);
        let stats = state_driven_sync(&mut a, &mut b, &model);
        // State-driven always ships the initiator's full state.
        assert_eq!(stats.payload_elements, 2);
    }

    /// Two ⊥ replicas still cross the full 3-message handshake — the
    /// digests are what tell them there is nothing to ship — but zero
    /// payload and only empty-digest metadata.
    #[test]
    fn repair_of_two_bottom_states_ships_nothing() {
        let model = SizeModel::compact();
        let (da, db, stats) = digest_repair_deltas(&S::bottom(), &S::bottom(), &model);
        assert!(da.is_bottom() && db.is_bottom());
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.payload_elements, 0);
        assert_eq!(stats.payload_bytes, 0);
        assert_eq!(
            stats.metadata_bytes,
            2 * Digest::of(&S::bottom()).size_bytes(),
            "both empty digests still crossed"
        );
    }

    /// One side ⊥: a pure one-way transfer — the populated side learns
    /// nothing and the empty side receives exactly the full state.
    #[test]
    fn repair_against_an_empty_side_is_a_one_way_transfer() {
        let model = SizeModel::compact();
        let a = S::from_iter([1, 2, 3]);
        let (da, db, stats) = digest_repair_deltas(&a, &S::bottom(), &model);
        assert!(da.is_bottom(), "the populated side must learn nothing");
        assert_eq!(S::bottom().join(db), a);
        assert_eq!(stats.payload_elements, 3);
    }

    /// The minimal divergence: one irreducible on each side. Exactly
    /// two payload elements cross (one per direction), none redundant.
    #[test]
    fn repair_of_single_irreducible_divergence_is_exact() {
        let model = SizeModel::compact();
        let a = S::from_iter([1, 2]);
        let b = S::from_iter([1, 3]);
        let (da, db, stats) = digest_repair_deltas(&a, &b, &model);
        assert_eq!(da, S::from_iter([3]));
        assert_eq!(db, S::from_iter([2]));
        assert_eq!(stats.payload_elements, 2);
    }
}
