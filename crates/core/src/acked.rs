//! Delta-based synchronization over **lossy** channels.
//!
//! Algorithm 1 clears the δ-buffer after each synchronization step, which
//! is only sound when channels never drop messages. The paper notes (§IV):
//! "This assumption can be removed by simply tagging each entry in the
//! δ-buffer with a unique sequence number, and by exchanging acks between
//! replicas: once an entry has been acknowledged by every neighbour, it is
//! removed from the δ-buffer, as originally proposed in \[13\]."
//!
//! This module is that variant, with BP and RR retained: entries carry
//! `(seq, origin)`; each δ-group message carries the highest sequence it
//! covers; receivers ack; entries are garbage-collected once every
//! neighbor's ack covers them.

use std::collections::BTreeMap;

use crdt_lattice::{join_all, ReplicaId, SizeModel, StateSize};
use crdt_types::Crdt;

use crate::buffer::Origin;
use crate::delta::DeltaConfig;
use crate::proto::{Measured, MemoryUsage, Params, Protocol};

/// Wire messages of the acked variant.
#[derive(Debug, Clone)]
pub enum AckedMsg<C> {
    /// A δ-group covering buffer entries up to `seq`.
    Delta {
        /// The joined δ-group.
        group: C,
        /// Highest buffer sequence number included.
        seq: u64,
    },
    /// Acknowledgement: "I have received your entries up to `seq`".
    Ack {
        /// Highest sequence acknowledged.
        seq: u64,
    },
}

impl<C: StateSize> Measured for AckedMsg<C> {
    fn payload_elements(&self) -> u64 {
        match self {
            AckedMsg::Delta { group, .. } => group.count_elements(),
            AckedMsg::Ack { .. } => 0,
        }
    }

    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        match self {
            AckedMsg::Delta { group, .. } => group.size_bytes(model),
            AckedMsg::Ack { .. } => 0,
        }
    }

    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        // One sequence number either way.
        model.seq_bytes
    }
}

/// Delta-based synchronization tolerating message loss.
#[derive(Debug, Clone)]
pub struct AckedDeltaSync<C> {
    id: ReplicaId,
    cfg: DeltaConfig,
    /// System size, for the causal-stability compaction rule
    /// (`usize::MAX` = unknown, never compacts).
    n_nodes: usize,
    state: C,
    /// Sequence-tagged δ-buffer (not cleared on sync).
    buffer: BTreeMap<u64, (C, Origin)>,
    next_seq: u64,
    /// Per-neighbor highest acked sequence.
    acked: BTreeMap<ReplicaId, u64>,
}

impl<C: Crdt> AckedDeltaSync<C> {
    /// Create replica `id` with the given optimizations.
    pub fn with_config(id: ReplicaId, cfg: DeltaConfig) -> Self {
        AckedDeltaSync {
            id,
            cfg,
            n_nodes: usize::MAX,
            state: C::bottom(),
            buffer: BTreeMap::new(),
            next_seq: 0,
            acked: BTreeMap::new(),
        }
    }

    fn store(&mut self, s: C, o: Origin) {
        self.state.join_assign(s.clone());
        self.buffer.insert(self.next_seq, (s, o));
        self.next_seq += 1;
    }

    /// Garbage-collect entries acked by every neighbor.
    fn prune(&mut self, neighbors: &[ReplicaId]) {
        let min_acked = neighbors
            .iter()
            .map(|j| self.acked.get(j).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        self.buffer.retain(|&seq, _| seq >= min_acked);
    }

    /// Buffered entry count (test/metrics hook).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }
}

impl<C: Crdt> Protocol<C> for AckedDeltaSync<C> {
    type Msg = AckedMsg<C>;

    const NAME: &'static str = "delta+BP+RR (acked)";

    fn new(id: ReplicaId, params: &Params) -> Self {
        let mut p = Self::with_config(id, DeltaConfig::BP_RR);
        p.n_nodes = params.n_nodes;
        p
    }

    fn on_op(&mut self, op: &C::Op) {
        let delta = self.state.apply(op);
        if !delta.is_bottom() {
            self.buffer.insert(self.next_seq, (delta, Origin::Local));
            self.next_seq += 1;
        }
    }

    fn on_sync(&mut self, neighbors: &[ReplicaId], out: &mut Vec<(ReplicaId, Self::Msg)>) {
        self.prune(neighbors);
        for &j in neighbors {
            let from_seq = self.acked.get(&j).copied().unwrap_or(0);
            let group: C = join_all(
                self.buffer
                    .range(from_seq..)
                    .filter(|(_, (_, o))| !self.cfg.bp || o.sendable_to(j))
                    .map(|(_, (d, _))| d.clone()),
            );
            if !group.is_bottom() {
                out.push((
                    j,
                    AckedMsg::Delta {
                        group,
                        seq: self.next_seq,
                    },
                ));
            }
        }
    }

    fn on_msg(&mut self, from: ReplicaId, msg: Self::Msg, out: &mut Vec<(ReplicaId, Self::Msg)>) {
        match msg {
            AckedMsg::Delta { group, seq } => {
                if self.cfg.rr {
                    let d = group.delta(&self.state);
                    if !d.is_bottom() {
                        self.store(d, Origin::From(from));
                    }
                } else if group.inflates(&self.state) {
                    self.store(group, Origin::From(from));
                }
                // Ack even when redundant: the sender may be retrying.
                out.push((from, AckedMsg::Ack { seq }));
            }
            AckedMsg::Ack { seq } => {
                let e = self.acked.entry(from).or_insert(0);
                *e = (*e).max(seq);
            }
        }
    }

    fn state(&self) -> &C {
        &self.state
    }

    fn on_params_change(&mut self, params: &Params) {
        self.n_nodes = params.n_nodes;
    }

    /// Prune entries acked by **every** peer in the system — the global
    /// stability rule, usable without knowing the current neighbor set
    /// (the per-sync [`prune`](Self::prune) only sees its neighbors).
    /// Requires acks on record from all `n_nodes - 1` peers; with fewer,
    /// an unheard-from peer might still need everything.
    fn compact(&mut self) -> u64 {
        if self.n_nodes == usize::MAX || self.acked.len() + 1 < self.n_nodes {
            return 0;
        }
        let min_acked = if self.n_nodes == 1 {
            self.next_seq
        } else {
            self.acked.values().copied().min().unwrap_or(0)
        };
        let before = self.buffer.len();
        self.buffer.retain(|&seq, _| seq >= min_acked);
        (before - self.buffer.len()) as u64
    }

    fn bootstrap(&mut self, source: &Self) {
        // Absorb the novelty of the peer snapshot through the ordinary
        // store path: it gets a fresh sequence number and is retained
        // (and retransmitted) until every neighbor acks it. A replica
        // restarted from scratch also restarts its sequence space; peers'
        // recorded acks index *their own* buffers, so stale ack state
        // cannot wedge retransmission — the lost content arrives here.
        if self.cfg.rr {
            let d = source.state.delta(&self.state);
            if !d.is_bottom() {
                self.store(d, Origin::From(source.id));
            }
        } else if source.state.inflates(&self.state) {
            self.store(source.state.clone(), Origin::From(source.id));
        }
    }

    fn memory(&self, model: &SizeModel) -> MemoryUsage {
        let buf_elems: u64 = self.buffer.values().map(|(d, _)| d.count_elements()).sum();
        let buf_bytes: u64 = self
            .buffer
            .values()
            .map(|(d, _)| d.size_bytes(model) + model.seq_bytes + model.id_bytes)
            .sum();
        MemoryUsage {
            crdt_elements: self.state.count_elements(),
            crdt_bytes: self.state.size_bytes(model),
            meta_elements: buf_elems,
            meta_bytes: buf_bytes + self.acked.len() as u64 * model.vector_entry_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const PARAMS: Params = Params::new(2);

    type P = AckedDeltaSync<GSet<u32>>;

    #[test]
    fn retransmits_until_acked() {
        let mut a: P = Protocol::new(A, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        let mut out = Vec::new();
        // First send: dropped by the network (we simply discard it).
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // No ack arrived: the entry is still buffered and re-sent.
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1, "retransmission after loss");
    }

    #[test]
    fn ack_stops_retransmission() {
        let mut a: P = Protocol::new(A, &PARAMS);
        let mut b: P = Protocol::new(B, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        let (_, delta) = out.pop().unwrap();
        let mut acks = Vec::new();
        b.on_msg(A, delta, &mut acks);
        let (_, ack) = acks.pop().unwrap();
        a.on_msg(B, ack, &mut Vec::new());
        // Entry acked by the only neighbor: pruned, nothing re-sent.
        a.on_sync(&[B], &mut out);
        assert!(out.is_empty());
        assert_eq!(a.buffered(), 0);
        assert_eq!(b.state().len(), 1);
    }

    #[test]
    fn converges_despite_heavy_loss() {
        let mut a: P = Protocol::new(A, &PARAMS);
        let mut b: P = Protocol::new(B, &PARAMS);
        for i in 0..10 {
            a.on_op(&GSetOp::Add(i));
            b.on_op(&GSetOp::Add(100 + i));
        }
        // Drop every message of the first three rounds; deliver the
        // fourth round fully.
        for round in 0..4 {
            let mut msgs = Vec::new();
            a.on_sync(&[B], &mut msgs);
            b.on_sync(&[A], &mut msgs);
            if round < 3 {
                continue; // network drops everything
            }
            let mut replies = Vec::new();
            for (to, m) in msgs {
                if to == A {
                    a.on_msg(B, m, &mut replies);
                } else {
                    b.on_msg(A, m, &mut replies);
                }
            }
            for (to, m) in replies {
                if to == A {
                    a.on_msg(B, m, &mut Vec::new());
                } else {
                    b.on_msg(A, m, &mut Vec::new());
                }
            }
        }
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().len(), 20);
    }

    #[test]
    fn duplicate_deltas_are_ignored_and_reacked() {
        let mut a: P = Protocol::new(A, &PARAMS);
        let mut b: P = Protocol::new(B, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        let (_, delta) = out.pop().unwrap();
        let mut acks = Vec::new();
        b.on_msg(A, delta.clone(), &mut acks);
        b.on_msg(A, delta, &mut acks);
        // Both deliveries acked, state correct, nothing buffered twice.
        assert_eq!(acks.len(), 2);
        assert_eq!(b.state().len(), 1);
        assert_eq!(b.buffered(), 1, "RR stored the novelty exactly once");
    }

    #[test]
    fn old_acks_do_not_regress() {
        let mut a: P = Protocol::new(A, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        a.on_msg(B, AckedMsg::Ack { seq: 5 }, &mut Vec::new());
        a.on_msg(B, AckedMsg::Ack { seq: 2 }, &mut Vec::new());
        assert_eq!(a.acked.get(&B), Some(&5));
    }
}
