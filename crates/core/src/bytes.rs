//! Re-export of the shared byte-buffer primitives.
//!
//! [`Bytes`] and [`BufferPool`] moved down into `crdt-lattice` so the
//! codec's cached-frame tier
//! ([`WireEncode::encode_frame`](crdt_lattice::WireEncode::encode_frame))
//! and the flat causal states in `crdt-types` can hold wire frames
//! without a dependency cycle. This module keeps the historical
//! `crdt_sync::bytes` path (and the `crate::bytes::` imports inside this
//! crate) working unchanged.

pub use crdt_lattice::bytes::{BufferPool, Bytes};
