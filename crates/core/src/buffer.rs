//! The δ-buffer of Algorithm 1.
//!
//! Classic delta-based synchronization keeps `Bᵢ ∈ P(L)` — a bag of delta
//! states awaiting propagation. The BP optimization extends entries with
//! their **origin** (`Bᵢ ∈ P(L × I)`, Algorithm 1 line 5) so that a
//! δ-group received from `j` is never sent back to `j` (line 11).

use crdt_lattice::{join_all, Bottom, ReplicaId, SizeModel, StateSize};

/// Where a buffered δ-group came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Produced by a local δ-mutator.
    Local,
    /// Received from this neighbor.
    From(ReplicaId),
}

impl Origin {
    /// Should an entry with this origin be sent to neighbor `j`?
    ///
    /// With BP, entries that came *from* `j` are filtered out
    /// (Algorithm 1 line 11: `o ≠ j`).
    pub fn sendable_to(self, j: ReplicaId) -> bool {
        !matches!(self, Origin::From(o) if o == j)
    }
}

/// One tagged entry of the δ-buffer.
#[derive(Debug, Clone)]
pub struct Entry<L> {
    /// The buffered δ-group.
    pub delta: L,
    /// Its origin (always [`Origin::Local`] when BP is disabled — the
    /// classic algorithm does not track origins).
    pub origin: Origin,
}

/// The δ-buffer `Bᵢ`.
#[derive(Debug, Clone, Default)]
pub struct DeltaBuffer<L> {
    entries: Vec<Entry<L>>,
}

impl<L: Bottom + StateSize> DeltaBuffer<L> {
    /// An empty buffer (`B⁰ᵢ = ∅`).
    pub fn new() -> Self {
        DeltaBuffer {
            entries: Vec::new(),
        }
    }

    /// Append a δ-group (the buffer half of `store`, Algorithm 1 line 20).
    pub fn push(&mut self, delta: L, origin: Origin) {
        debug_assert!(!delta.is_bottom(), "⊥ must never enter the δ-buffer");
        self.entries.push(Entry { delta, origin });
    }

    /// The δ-group for neighbor `j`: the join of all entries, excluding
    /// (when `bp`) those originating at `j` (Algorithm 1 line 11).
    ///
    /// Returns `⊥` when nothing is pending for `j`.
    pub fn group_for(&self, j: ReplicaId, bp: bool) -> L {
        join_all(
            self.entries
                .iter()
                .filter(|e| !bp || e.origin.sendable_to(j))
                .map(|e| e.delta.clone()),
        )
    }

    /// Clear the buffer (Algorithm 1 line 13, `B′ᵢ = ∅` — valid under the
    /// no-loss channel assumption; see [`crate::AckedDeltaSync`] for the
    /// sequence-number variant that tolerates drops).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of buffered δ-groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate buffered entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<L>> {
        self.entries.iter()
    }

    /// Total elements held (memory accounting, Fig. 10).
    pub fn elements(&self) -> u64 {
        self.entries.iter().map(|e| e.delta.count_elements()).sum()
    }

    /// Total bytes held, including the origin tag.
    pub fn bytes(&self, model: &SizeModel) -> u64 {
        self.entries
            .iter()
            .map(|e| e.delta.size_bytes(model) + model.id_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_lattice::SetLattice;

    type S = SetLattice<u32>;

    #[test]
    fn group_for_joins_everything_without_bp() {
        let mut b = DeltaBuffer::new();
        b.push(S::from_iter([1]), Origin::Local);
        b.push(S::from_iter([2]), Origin::From(ReplicaId(7)));
        let g = b.group_for(ReplicaId(7), false);
        assert_eq!(g, S::from_iter([1, 2]));
    }

    #[test]
    fn bp_filters_back_propagation() {
        // Fig. 4 •2: A must not send {b} back to B.
        let mut b = DeltaBuffer::new();
        b.push(S::from_iter([1]), Origin::Local);
        b.push(S::from_iter([2]), Origin::From(ReplicaId(7)));
        assert_eq!(b.group_for(ReplicaId(7), true), S::from_iter([1]));
        // Other neighbors still receive everything.
        assert_eq!(b.group_for(ReplicaId(9), true), S::from_iter([1, 2]));
    }

    #[test]
    fn empty_buffer_yields_bottom() {
        let b: DeltaBuffer<S> = DeltaBuffer::new();
        assert!(b.group_for(ReplicaId(0), true).is_bottom());
        assert!(b.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut b = DeltaBuffer::new();
        b.push(S::from_iter([1]), Origin::Local);
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.elements(), 0);
    }

    #[test]
    fn memory_accounting() {
        let model = SizeModel::compact();
        let mut b = DeltaBuffer::new();
        b.push(S::from_iter([1, 2]), Origin::Local);
        b.push(S::from_iter([3]), Origin::From(ReplicaId(1)));
        assert_eq!(b.elements(), 3);
        // 3 u32 elements + 2 origin tags.
        assert_eq!(b.bytes(&model), 12 + 16);
    }

    #[test]
    fn origin_sendable() {
        assert!(Origin::Local.sendable_to(ReplicaId(1)));
        assert!(Origin::From(ReplicaId(2)).sendable_to(ReplicaId(1)));
        assert!(!Origin::From(ReplicaId(1)).sendable_to(ReplicaId(1)));
    }
}
