//! The [`Protocol`] abstraction shared by every synchronization algorithm.
//!
//! A protocol instance lives at one replica. The simulator (or a real
//! transport) drives it through three callbacks:
//!
//! * [`Protocol::on_op`] — a local update operation happened;
//! * [`Protocol::on_sync`] — a periodic synchronization step fired
//!   (the paper's "periodically // synchronize", Algorithm 1 line 9);
//! * [`Protocol::on_msg`] — a message arrived from a neighbor.
//!
//! Messages implement [`Measured`] so transmission is accounted exactly
//! like the paper's evaluation: *payload* in elements (join-irreducibles;
//! Table I's "number of elements/entries") and bytes, and *metadata*
//! (digests, vectors, dots, sequence numbers) in bytes (Fig. 9).

use core::fmt::Debug;

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_types::Crdt;

/// Per-protocol construction parameters.
///
/// `Params` is `#[non_exhaustive]` and built through a chainable
/// constructor so future knobs never break `Protocol::new` call sites:
///
/// ```
/// use crdt_sync::Params;
///
/// let p = Params::new(16).fan_out(4).sync_interval(2);
/// assert_eq!(p.n_nodes, 16);
/// assert_eq!(p.fan_out, Some(4));
/// assert_eq!(p.sync_interval, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Params {
    /// Total number of replicas in the system.
    ///
    /// Only vector-based protocols need this (e.g. Scuttlebutt-GC's
    /// knowledge matrix spans all nodes); delta-based protocols ignore it —
    /// that asymmetry *is* the paper's metadata argument (§V-B2).
    pub n_nodes: usize,

    /// Cap on how many neighbors one synchronization step addresses.
    ///
    /// `None` (the default) synchronizes with every neighbor, the paper's
    /// experiment loop. Drivers that support it (the engine-layer
    /// `DynRunner`) rotate deterministically through the neighbor list so
    /// a capped replica still addresses everyone over successive rounds.
    ///
    /// Meant for anti-entropy protocols (Scuttlebutt keeps its key-delta
    /// store, so partial gossip loses nothing). The Algorithm-1 delta
    /// variants clear their δ-buffer after *every* sync step, so capping
    /// their fan-out silently drops deltas for the unaddressed neighbors —
    /// exactly the lossy-channel situation the acked variant exists for.
    pub fan_out: Option<usize>,

    /// Rounds between synchronization steps (`1` = every round, the
    /// paper's loop). Interval-aware drivers skip `on_sync` on off
    /// rounds; deltas keep accumulating in the buffers meanwhile.
    pub sync_interval: usize,

    /// Enable causal-stability-driven compaction (off by default).
    ///
    /// When set, protocols that otherwise grow without bound opt into
    /// the extra bookkeeping their [`Protocol::compact`] hook needs —
    /// plain Scuttlebutt starts tracking the peer clocks it already
    /// receives so stable store entries can be pruned on demand. Off,
    /// every protocol behaves (and accounts memory) exactly as the
    /// paper's evaluation measures it.
    pub compaction: bool,
}

impl Params {
    /// Parameters for an `n`-node system, with default knobs: unlimited
    /// fan-out, synchronization every round.
    pub const fn new(n_nodes: usize) -> Self {
        Params {
            n_nodes,
            fan_out: None,
            sync_interval: 1,
            compaction: false,
        }
    }

    /// Cap synchronization fan-out per step.
    pub const fn fan_out(mut self, fan_out: usize) -> Self {
        self.fan_out = Some(fan_out);
        self
    }

    /// Set the number of rounds between synchronization steps.
    pub const fn sync_interval(mut self, interval: usize) -> Self {
        self.sync_interval = interval;
        self
    }

    /// Enable causal-stability-driven compaction (see
    /// [`Params::compaction`]).
    pub const fn compaction(mut self) -> Self {
        self.compaction = true;
        self
    }
}

/// Transmission accounting for one message.
pub trait Measured {
    /// Number of lattice elements (join-irreducibles) of CRDT payload.
    fn payload_elements(&self) -> u64;

    /// Bytes of CRDT payload under `model`.
    fn payload_bytes(&self, model: &SizeModel) -> u64;

    /// Bytes of synchronization metadata (vectors, digests, dots, acks)
    /// under `model`.
    fn metadata_bytes(&self, model: &SizeModel) -> u64;

    /// Total wire size.
    fn total_bytes(&self, model: &SizeModel) -> u64 {
        self.payload_bytes(model) + self.metadata_bytes(model)
    }
}

/// Memory snapshot of one replica (paper, §V-B3: "the amount of state —
/// both CRDT state and metadata required for synchronization — stored in
/// memory for each node").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Elements in the replica's CRDT lattice state.
    pub crdt_elements: u64,
    /// Bytes of the replica's CRDT lattice state.
    pub crdt_bytes: u64,
    /// Elements held in synchronization buffers (δ-buffer, key-delta
    /// store, transmission buffer).
    pub meta_elements: u64,
    /// Bytes of synchronization metadata and buffered state.
    pub meta_bytes: u64,
}

impl MemoryUsage {
    /// Total elements (CRDT + buffered).
    pub fn total_elements(&self) -> u64 {
        self.crdt_elements + self.meta_elements
    }

    /// Total bytes (CRDT + metadata).
    pub fn total_bytes(&self) -> u64 {
        self.crdt_bytes + self.meta_bytes
    }
}

/// A synchronization protocol instance at one replica.
pub trait Protocol<C: Crdt>: Debug {
    /// Wire message type.
    type Msg: Clone + Debug + Measured;

    /// Human-readable protocol name (used in experiment output).
    const NAME: &'static str;

    /// Create the replica `id` of an `params.n_nodes`-node system.
    fn new(id: ReplicaId, params: &Params) -> Self;

    /// Handle a local update operation.
    fn on_op(&mut self, op: &C::Op);

    /// Periodic synchronization step: emit messages to (a subset of)
    /// `neighbors`.
    fn on_sync(&mut self, neighbors: &[ReplicaId], out: &mut Vec<(ReplicaId, Self::Msg)>);

    /// Handle a message from `from`; may emit replies (push-pull
    /// protocols) into `out`.
    fn on_msg(&mut self, from: ReplicaId, msg: Self::Msg, out: &mut Vec<(ReplicaId, Self::Msg)>);

    /// The replica's current lattice state.
    fn state(&self) -> &C;

    /// Memory snapshot under `model`.
    fn memory(&self, model: &SizeModel) -> MemoryUsage;

    /// The system parameters changed mid-run (a replica joined). The
    /// default is a no-op; protocols whose *safety* depends on the
    /// system size must react — Scuttlebutt-GC's safe-delete rule prunes
    /// once "every node" has seen a delta, and an under-counted
    /// membership prunes deltas a joiner has not seen yet, with no
    /// recovery path (plain Scuttlebutt never re-ships pruned entries).
    fn on_params_change(&mut self, _params: &Params) {}

    /// Discard synchronization metadata that is **causally stable** —
    /// entries every replica is known to have seen, which therefore can
    /// never be needed again. Returns the number of pruned entries.
    ///
    /// The default prunes nothing: the Algorithm-1 delta variants clear
    /// their δ-buffer every sync step and the state baseline holds no
    /// metadata, so only the history-keeping protocols (Scuttlebutt,
    /// op-based, acked) override it. Compaction never changes the
    /// replica's lattice state, only bounded-liveness metadata, so
    /// convergence is unaffected — the invariant the repair-parity
    /// proptests pin.
    fn compact(&mut self) -> u64 {
        0
    }

    /// Absorb an out-of-band state transfer from `source` — the bootstrap
    /// half of crash-recovery and join-with-bootstrap.
    ///
    /// After the call this replica's lattice state covers `source`'s, and
    /// any protocol metadata needed for the snapshot to keep flowing
    /// (δ-buffers, version vectors, delivery clocks, …) is consistent with
    /// it: a replica restarted from scratch can be pointed at a live peer
    /// and rejoin synchronization without replaying history.
    ///
    /// Implementations route the snapshot through their ordinary receive
    /// machinery where possible, so for buffering protocols the absorbed
    /// novelty is re-buffered and propagates onward to other neighbors.
    fn bootstrap(&mut self, source: &Self)
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_usage_totals() {
        let m = MemoryUsage {
            crdt_elements: 3,
            crdt_bytes: 24,
            meta_elements: 2,
            meta_bytes: 100,
        };
        assert_eq!(m.total_elements(), 5);
        assert_eq!(m.total_bytes(), 124);
    }

    #[test]
    fn params_carry_system_size() {
        assert_eq!(Params::new(15).n_nodes, 15);
        assert_eq!(Params::new(15).fan_out(3).fan_out, Some(3));
        assert_eq!(Params::new(15).sync_interval(4).sync_interval, 4);
        assert!(!Params::new(15).compaction);
        assert!(Params::new(15).compaction().compaction);
    }
}
