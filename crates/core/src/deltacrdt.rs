//! ∆-CRDT synchronization (van der Linde, Leitão, Preguiça — the paper's
//! \[31\]), as a comparison baseline.
//!
//! The paper's related work (§VI) describes the approach: *"∆-CRDTs
//! exchange metadata used to compute a delta that reflects missing
//! updates. In this approach, CRDTs need to be extended to maintain
//! additional metadata for delta derivation, and if this metadata needs
//! to be garbage collected, the mechanism falls back to standard
//! bidirectional full state transmission."*
//!
//! Concretely, each replica extends its CRDT with a **versioned delta
//! log**: every local mutation (and every received novelty, so deltas
//! propagate across multi-hop topologies) is appended under a
//! monotonically increasing sequence number. Per neighbor, the replica
//! tracks the highest sequence number the neighbor has acknowledged:
//!
//! * if the log still covers everything the neighbor is missing, the
//!   replica ships the join of the missing entries — a delta;
//! * if the log has been garbage collected past that point (the log is
//!   bounded by [`DeltaCrdtSync::with_capacity`]), the replica **falls
//!   back to full state transmission** — the failure mode the paper
//!   quotes.
//!
//! Receivers extract the strictly-inflating part of whatever arrives
//! (using the same `Δ` the paper's RR optimization uses — the best
//! possible receiver) and acknowledge the sender's sequence number.
//!
//! Differences from delta-based BP+RR worth measuring (the ablation
//! bench `deltacrdt_fallback` does): the log is *not* cleared after a
//! synchronization step — entries must survive until every neighbor has
//! acknowledged them or the capacity bound evicts them — so memory
//! scales with capacity, and an under-provisioned capacity converts the
//! protocol into state-based synchronization under contention.

use std::collections::{BTreeMap, VecDeque};

use crdt_lattice::{ReplicaId, SizeModel, StateSize};
use crdt_types::Crdt;

use crate::proto::{Measured, MemoryUsage, Params, Protocol};

/// Wire messages of ∆-CRDT synchronization.
#[derive(Debug, Clone)]
pub enum DeltaCrdtMsg<C> {
    /// The join of the log entries the recipient is missing, valid up to
    /// the sender's sequence number `upto`.
    Delta {
        /// The sender's log sequence number after the last entry included.
        upto: u64,
        /// The missing state.
        delta: C,
    },
    /// Full-state fallback: the log no longer covers what the recipient
    /// is missing.
    Full {
        /// The sender's current log sequence number.
        upto: u64,
        /// The sender's full lattice state.
        state: C,
    },
    /// Acknowledgment that the receiver has incorporated everything up to
    /// the sender's sequence number `upto`.
    Ack {
        /// Highest sequence number of the peer incorporated locally.
        upto: u64,
    },
}

impl<C: StateSize> Measured for DeltaCrdtMsg<C> {
    fn payload_elements(&self) -> u64 {
        match self {
            DeltaCrdtMsg::Delta { delta, .. } => delta.count_elements(),
            DeltaCrdtMsg::Full { state, .. } => state.count_elements(),
            DeltaCrdtMsg::Ack { .. } => 0,
        }
    }

    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        match self {
            DeltaCrdtMsg::Delta { delta, .. } => delta.size_bytes(model),
            DeltaCrdtMsg::Full { state, .. } => state.size_bytes(model),
            DeltaCrdtMsg::Ack { .. } => 0,
        }
    }

    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        // Every message carries one sequence number.
        model.seq_bytes
    }
}

/// ∆-CRDT synchronization at one replica.
#[derive(Debug, Clone)]
pub struct DeltaCrdtSync<C> {
    id: ReplicaId,
    state: C,
    /// Sequence number of the newest log entry.
    seq: u64,
    /// `(seq, delta)` entries with contiguous sequence numbers; bounded
    /// by `capacity`.
    log: VecDeque<(u64, C)>,
    /// Per neighbor, the highest of *our* sequence numbers it has
    /// acknowledged.
    known: BTreeMap<ReplicaId, u64>,
    capacity: usize,
}

impl<C: Crdt> DeltaCrdtSync<C> {
    /// Create replica `id` with a delta log bounded to `capacity`
    /// entries. Smaller capacities garbage-collect sooner and therefore
    /// fall back to full-state transmission more often.
    pub fn with_capacity(id: ReplicaId, capacity: usize) -> Self {
        DeltaCrdtSync {
            id,
            state: C::bottom(),
            seq: 0,
            log: VecDeque::new(),
            known: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// The replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of entries currently in the delta log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Append a delta to the log, evicting the oldest entry past the
    /// capacity bound (the "garbage collection" of \[31\]).
    fn append(&mut self, delta: C) {
        self.seq += 1;
        self.log.push_back((self.seq, delta));
        while self.log.len() > self.capacity {
            self.log.pop_front();
        }
    }

    /// Does the log contain every entry after `after`?
    fn covers(&self, after: u64) -> bool {
        after >= self.seq || self.log.front().is_some_and(|(s, _)| *s <= after + 1)
    }

    /// Local operation: apply the δ-mutator and log the delta.
    pub fn local_op(&mut self, op: &C::Op) {
        let delta = self.state.apply(op);
        if !delta.is_bottom() {
            self.append(delta);
        }
    }

    /// Synchronization step: per neighbor, ship the missing log suffix,
    /// or the full state when the log was GC'd past the neighbor's
    /// acknowledged position.
    pub fn sync_step(
        &mut self,
        neighbors: &[ReplicaId],
        out: &mut Vec<(ReplicaId, DeltaCrdtMsg<C>)>,
    ) {
        for &j in neighbors {
            let acked = self.known.get(&j).copied().unwrap_or(0);
            if acked >= self.seq {
                continue; // neighbor is up to date
            }
            let msg = if self.covers(acked) {
                let mut delta = C::bottom();
                for (s, d) in &self.log {
                    if *s > acked {
                        delta.join_assign(d.clone());
                    }
                }
                DeltaCrdtMsg::Delta {
                    upto: self.seq,
                    delta,
                }
            } else {
                DeltaCrdtMsg::Full {
                    upto: self.seq,
                    state: self.state.clone(),
                }
            };
            out.push((j, msg));
        }
    }

    /// Receive handler: extract the strictly-inflating part, log it for
    /// further propagation, and acknowledge the sender.
    pub fn receive(
        &mut self,
        from: ReplicaId,
        msg: DeltaCrdtMsg<C>,
        out: &mut Vec<(ReplicaId, DeltaCrdtMsg<C>)>,
    ) {
        match msg {
            DeltaCrdtMsg::Delta {
                upto,
                delta: payload,
            }
            | DeltaCrdtMsg::Full {
                upto,
                state: payload,
            } => {
                let novelty = payload.delta(&self.state);
                if !novelty.is_bottom() {
                    self.state.join_assign(novelty.clone());
                    self.append(novelty);
                }
                out.push((from, DeltaCrdtMsg::Ack { upto }));
            }
            DeltaCrdtMsg::Ack { upto } => {
                let e = self.known.entry(from).or_insert(0);
                *e = (*e).max(upto);
            }
        }
    }

    /// The replica's current lattice state.
    pub fn state_ref(&self) -> &C {
        &self.state
    }

    /// Bootstrap from a peer snapshot: the novelty is logged like any
    /// received delta, so it propagates onward (or falls back to a full
    /// state send once evicted — the usual \[31\] behavior).
    pub fn bootstrap_from_peer(&mut self, source: &Self) {
        let novelty = source.state.delta(&self.state);
        if !novelty.is_bottom() {
            self.state.join_assign(novelty.clone());
            self.append(novelty);
        }
    }

    /// Memory snapshot: CRDT state, the delta log, and the per-neighbor
    /// acknowledgment vector.
    pub fn memory_usage(&self, model: &SizeModel) -> MemoryUsage {
        let log_elements: u64 = self.log.iter().map(|(_, d)| d.count_elements()).sum();
        let log_bytes: u64 = self
            .log
            .iter()
            .map(|(_, d)| model.seq_bytes + d.size_bytes(model))
            .sum();
        MemoryUsage {
            crdt_elements: self.state.count_elements(),
            crdt_bytes: self.state.size_bytes(model),
            meta_elements: log_elements,
            meta_bytes: log_bytes + self.known.len() as u64 * model.vector_entry_bytes(),
        }
    }
}

/// Default log capacity: generous enough that micro-benchmark-scale runs
/// rarely fall back to full state.
pub const DEFAULT_LOG_CAPACITY: usize = 64;

/// [`Protocol`] wrapper for ∆-CRDT synchronization with the default log
/// capacity.
#[derive(Debug, Clone)]
pub struct DeltaCrdt<C>(pub DeltaCrdtSync<C>);

/// [`Protocol`] wrapper with a deliberately tiny log (4 entries): under
/// contention it demonstrates the full-state fallback of \[31\].
#[derive(Debug, Clone)]
pub struct DeltaCrdtSmallLog<C>(pub DeltaCrdtSync<C>);

macro_rules! deltacrdt_protocol {
    ($name:ident, $capacity:expr, $label:expr) => {
        impl<C: Crdt> Protocol<C> for $name<C> {
            type Msg = DeltaCrdtMsg<C>;

            const NAME: &'static str = $label;

            fn new(id: ReplicaId, _params: &Params) -> Self {
                $name(DeltaCrdtSync::with_capacity(id, $capacity))
            }

            fn on_op(&mut self, op: &C::Op) {
                self.0.local_op(op);
            }

            fn on_sync(&mut self, neighbors: &[ReplicaId], out: &mut Vec<(ReplicaId, Self::Msg)>) {
                self.0.sync_step(neighbors, out);
            }

            fn on_msg(
                &mut self,
                from: ReplicaId,
                msg: Self::Msg,
                out: &mut Vec<(ReplicaId, Self::Msg)>,
            ) {
                self.0.receive(from, msg, out);
            }

            fn state(&self) -> &C {
                &self.0.state
            }

            fn memory(&self, model: &SizeModel) -> MemoryUsage {
                self.0.memory_usage(model)
            }

            fn bootstrap(&mut self, source: &Self) {
                self.0.bootstrap_from_peer(&source.0);
            }
        }
    };
}

deltacrdt_protocol!(DeltaCrdt, DEFAULT_LOG_CAPACITY, "deltacrdt");
deltacrdt_protocol!(DeltaCrdtSmallLog, 4, "deltacrdt-small");

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GSet, GSetOp};

    type S = DeltaCrdtSync<GSet<u32>>;
    type Msg = DeltaCrdtMsg<GSet<u32>>;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const C_: ReplicaId = ReplicaId(2);

    /// Deliver every queued message, returning replies, until quiescence.
    fn pump(nodes: &mut [S], mut queue: Vec<(ReplicaId, ReplicaId, Msg)>) {
        while let Some((from, to, msg)) = queue.pop() {
            let mut out = Vec::new();
            nodes[to.index()].receive(from, msg, &mut out);
            for (dest, m) in out {
                queue.push((to, dest, m));
            }
        }
    }

    fn sync_into(
        nodes: &mut [S],
        i: usize,
        neighbors: &[ReplicaId],
    ) -> Vec<(ReplicaId, ReplicaId, Msg)> {
        let mut out = Vec::new();
        nodes[i].sync_step(neighbors, &mut out);
        out.into_iter()
            .map(|(to, m)| (ReplicaId::from(i), to, m))
            .collect()
    }

    #[test]
    fn two_replicas_converge_with_deltas() {
        let mut nodes = vec![S::with_capacity(A, 16), S::with_capacity(B, 16)];
        nodes[0].local_op(&GSetOp::Add(1));
        nodes[1].local_op(&GSetOp::Add(2));
        let q = sync_into(&mut nodes, 0, &[B]);
        pump(&mut nodes, q);
        let q = sync_into(&mut nodes, 1, &[A]);
        pump(&mut nodes, q);
        assert_eq!(nodes[0].state, nodes[1].state);
        assert_eq!(nodes[0].state.len(), 2);
    }

    #[test]
    fn acks_prevent_resending() {
        let mut nodes = vec![S::with_capacity(A, 16), S::with_capacity(B, 16)];
        nodes[0].local_op(&GSetOp::Add(1));
        let q = sync_into(&mut nodes, 0, &[B]);
        assert_eq!(q.len(), 1);
        pump(&mut nodes, q);
        // B acked; nothing further to send.
        let q = sync_into(&mut nodes, 0, &[B]);
        assert!(q.is_empty(), "acked state must not be resent");
    }

    #[test]
    fn unacked_state_is_resent() {
        let mut nodes = vec![S::with_capacity(A, 16), S::with_capacity(B, 16)];
        nodes[0].local_op(&GSetOp::Add(1));
        // Sync emitted but the message (and so its ack) is lost.
        let _lost = sync_into(&mut nodes, 0, &[B]);
        let q = sync_into(&mut nodes, 0, &[B]);
        assert_eq!(q.len(), 1, "unacked entries are retransmitted");
        pump(&mut nodes, q);
        assert_eq!(nodes[1].state.len(), 1);
    }

    #[test]
    fn gc_forces_full_state_fallback() {
        let mut nodes = vec![S::with_capacity(A, 2), S::with_capacity(B, 2)];
        for e in 0..6 {
            nodes[0].local_op(&GSetOp::Add(e));
        }
        // The log holds only the last 2 of 6 entries: the neighbor (acked
        // nothing) can only be repaired by full state.
        let q = sync_into(&mut nodes, 0, &[B]);
        assert_eq!(q.len(), 1);
        assert!(
            matches!(q[0].2, DeltaCrdtMsg::Full { .. }),
            "GC'd log must fall back to full-state transmission"
        );
        pump(&mut nodes, q);
        assert_eq!(nodes[1].state.len(), 6);
    }

    #[test]
    fn covered_log_ships_deltas_not_full_state() {
        let mut nodes = vec![S::with_capacity(A, 16), S::with_capacity(B, 16)];
        nodes[0].local_op(&GSetOp::Add(1));
        let q = sync_into(&mut nodes, 0, &[B]);
        pump(&mut nodes, q);
        nodes[0].local_op(&GSetOp::Add(2));
        let q = sync_into(&mut nodes, 0, &[B]);
        assert_eq!(q.len(), 1);
        match &q[0].2 {
            DeltaCrdtMsg::Delta { delta, .. } => {
                assert_eq!(delta.count_elements(), 1, "only the missing entry ships");
            }
            other => panic!("expected Delta, got {other:?}"),
        }
    }

    #[test]
    fn novelty_forwards_across_a_line() {
        // A – B – C: A's update must reach C through B's log.
        let mut nodes = vec![
            S::with_capacity(A, 16),
            S::with_capacity(B, 16),
            S::with_capacity(C_, 16),
        ];
        nodes[0].local_op(&GSetOp::Add(7));
        let q = sync_into(&mut nodes, 0, &[B]);
        pump(&mut nodes, q);
        let q = sync_into(&mut nodes, 1, &[A, C_]);
        pump(&mut nodes, q);
        assert_eq!(nodes[2].state.len(), 1, "update propagated two hops");
    }

    #[test]
    fn duplicated_messages_are_idempotent() {
        let mut nodes = vec![S::with_capacity(A, 16), S::with_capacity(B, 16)];
        nodes[0].local_op(&GSetOp::Add(1));
        let q = sync_into(&mut nodes, 0, &[B]);
        let dup: Vec<_> = q.iter().cloned().chain(q.iter().cloned()).collect();
        pump(&mut nodes, dup);
        assert_eq!(nodes[1].state.len(), 1);
        // The duplicate contributed nothing to the forwarding log.
        assert_eq!(nodes[1].log_len(), 1);
    }

    #[test]
    fn receiver_extracts_novelty_only() {
        let mut b = S::with_capacity(B, 16);
        b.local_op(&GSetOp::Add(1));
        let mut out = Vec::new();
        b.receive(
            A,
            DeltaCrdtMsg::Delta {
                upto: 3,
                delta: GSet::from_iter([1, 2]),
            },
            &mut out,
        );
        // Log: own {1} + extracted {2} — not the whole received {1, 2}.
        let log_elems: u64 = b.log.iter().map(|(_, d)| d.count_elements()).sum();
        assert_eq!(log_elems, 2);
        assert!(matches!(out[0].1, DeltaCrdtMsg::Ack { upto: 3 }));
    }

    #[test]
    fn message_accounting() {
        let model = SizeModel::compact();
        let delta: Msg = DeltaCrdtMsg::Delta {
            upto: 1,
            delta: GSet::from_iter([1, 2]),
        };
        assert_eq!(delta.payload_elements(), 2);
        assert_eq!(delta.metadata_bytes(&model), model.seq_bytes);
        let ack: Msg = DeltaCrdtMsg::Ack { upto: 9 };
        assert_eq!(ack.payload_elements(), 0);
        assert_eq!(ack.total_bytes(&model), model.seq_bytes);
    }

    #[test]
    fn memory_counts_log_and_ack_vector() {
        let model = SizeModel::compact();
        let mut nodes = vec![S::with_capacity(A, 16), S::with_capacity(B, 16)];
        nodes[0].local_op(&GSetOp::Add(11));
        let q = sync_into(&mut nodes, 0, &[B]);
        pump(&mut nodes, q);
        let m = nodes[0].memory_usage(&model);
        assert_eq!(m.crdt_elements, 1);
        assert_eq!(m.meta_elements, 1, "the log entry");
        assert!(
            m.meta_bytes >= model.vector_entry_bytes(),
            "ack vector counted"
        );
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let s = S::with_capacity(A, 0);
        assert_eq!(s.capacity, 1);
    }
}
