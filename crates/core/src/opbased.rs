//! Operation-based synchronization with a store-and-forward causal
//! broadcast middleware (paper, §V-B).
//!
//! Each local operation is tagged with a [`Dot`] (its identity) and a
//! vector clock summarizing its causal past; recipients delay delivery
//! until the causal past has been delivered. For topologies without
//! all-to-all connectivity the middleware **stores and forwards**: an
//! operation seen for the first time enters a transmission buffer; if the
//! same operation arrives from several neighbors, only the per-op
//! *seen-by* set is updated "so that unnecessary transmissions are
//! avoided" — the paper calls this "the best possible implementation of
//! such a middleware".
//!
//! Its inherent costs, reproduced here exactly, are what Figs. 7–10 show:
//! a causality vector per pending op (`NPU` metadata, Fig. 9) and no
//! ability to compress multiple ops into one ("supporting generic
//! operation-compression at the middleware level … is an open research
//! problem") — fatal for GCounter, fine for GSet.

use std::collections::{BTreeMap, BTreeSet};

use crdt_lattice::{Dot, Lattice, ReplicaId, SizeModel, StateSize, VClock};
use crdt_types::Crdt;

use crate::proto::{Measured, MemoryUsage, Params, Protocol};

/// An operation tagged by the causal middleware.
#[derive(Debug, Clone)]
pub struct TaggedOp<O> {
    /// Unique identity of the operation.
    pub dot: Dot,
    /// Vector clock of the operation's causal past.
    pub deps: VClock,
    /// The CRDT operation itself.
    pub op: O,
}

/// Wire message: a batch of tagged operations.
#[derive(Debug, Clone)]
pub struct OpMsg<C: Crdt> {
    /// The shipped operations.
    pub ops: Vec<TaggedOp<C::Op>>,
    /// Byte model hook: measured via `C::op_size_bytes`.
    _marker: core::marker::PhantomData<fn() -> C>,
}

impl<C: Crdt> OpMsg<C> {
    pub(crate) fn new(ops: Vec<TaggedOp<C::Op>>) -> Self {
        OpMsg {
            ops,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<C: Crdt> Measured for OpMsg<C> {
    fn payload_elements(&self) -> u64 {
        // One op ≈ one lattice irreducible for the grow-only types the
        // paper benchmarks (an add, an increment, a key update).
        self.ops.len() as u64
    }

    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.ops
            .iter()
            .map(|t| C::op_size_bytes(&t.op, model))
            .sum()
    }

    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        // Per op: its dot + its causality vector (the "vector per …
        // pending update" cost of Fig. 9).
        self.ops
            .iter()
            .map(|t| t.dot.size_bytes(model) + t.deps.size_bytes(model))
            .sum()
    }
}

#[derive(Debug, Clone)]
struct BufEntry<O> {
    tagged: TaggedOp<O>,
    /// Replicas known to have this op (self, the sender, and everyone we
    /// already forwarded it to).
    seen: BTreeSet<ReplicaId>,
}

/// Op-based synchronization at one replica.
#[derive(Debug, Clone)]
pub struct OpBased<C: Crdt> {
    id: ReplicaId,
    /// System size, for the causal-stability compaction rule: an op seen
    /// by all `n_nodes` replicas needs no further forwarding from anyone.
    n_nodes: usize,
    state: C,
    /// Ops delivered to the local state, as a contiguous summary.
    delivered: VClock,
    /// Remote ops waiting for their causal past.
    pending: Vec<TaggedOp<C::Op>>,
    /// Store-and-forward transmission buffer.
    buffer: BTreeMap<Dot, BufEntry<C::Op>>,
}

impl<C: Crdt> OpBased<C> {
    /// Deliver every pending op whose causal past is satisfied, repeating
    /// until a fixpoint.
    fn drain_pending(&mut self) {
        loop {
            let mut delivered_any = false;
            let mut i = 0;
            while i < self.pending.len() {
                let deliverable = {
                    let t = &self.pending[i];
                    !self.delivered.contains(&t.dot) && t.deps.leq(&self.delivered)
                };
                let duplicate = self.delivered.contains(&self.pending[i].dot);
                if deliverable || duplicate {
                    let t = self.pending.swap_remove(i);
                    if !duplicate {
                        let _ = self.state.apply(&t.op);
                        self.delivered.observe(t.dot);
                        delivered_any = true;
                    }
                } else {
                    i += 1;
                }
            }
            if !delivered_any {
                break;
            }
        }
    }

    /// Number of ops in the transmission buffer (test/metrics hook).
    pub fn buffered_ops(&self) -> usize {
        self.buffer.len()
    }

    /// Number of causally blocked ops (test/metrics hook).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }
}

impl<C: Crdt> Protocol<C> for OpBased<C> {
    type Msg = OpMsg<C>;

    const NAME: &'static str = "op-based";

    fn new(id: ReplicaId, params: &Params) -> Self {
        OpBased {
            id,
            n_nodes: params.n_nodes,
            state: C::bottom(),
            delivered: VClock::new(),
            pending: Vec::new(),
            buffer: BTreeMap::new(),
        }
    }

    fn on_op(&mut self, op: &C::Op) {
        let deps = self.delivered.clone();
        let dot = self.delivered.bump(self.id);
        let _ = self.state.apply(op);
        let mut seen = BTreeSet::new();
        seen.insert(self.id);
        self.buffer.insert(
            dot,
            BufEntry {
                tagged: TaggedOp {
                    dot,
                    deps,
                    op: op.clone(),
                },
                seen,
            },
        );
    }

    fn on_sync(&mut self, neighbors: &[ReplicaId], out: &mut Vec<(ReplicaId, Self::Msg)>) {
        for &j in neighbors {
            let batch: Vec<TaggedOp<C::Op>> = self
                .buffer
                .values()
                .filter(|e| !e.seen.contains(&j))
                .map(|e| e.tagged.clone())
                .collect();
            if !batch.is_empty() {
                out.push((j, OpMsg::new(batch)));
            }
        }
        // Mark as seen (reliable channels) and prune ops known to every
        // current neighbor — they need no further forwarding from us.
        for e in self.buffer.values_mut() {
            e.seen.extend(neighbors.iter().copied());
        }
        self.buffer
            .retain(|_, e| !neighbors.iter().all(|j| e.seen.contains(j)));
    }

    fn on_msg(&mut self, from: ReplicaId, msg: Self::Msg, _out: &mut Vec<(ReplicaId, Self::Msg)>) {
        for t in msg.ops {
            match self.buffer.get_mut(&t.dot) {
                Some(entry) => {
                    // Known op re-received: just record who else has it.
                    entry.seen.insert(from);
                }
                None => {
                    let already_delivered = self.delivered.contains(&t.dot);
                    let mut seen = BTreeSet::new();
                    seen.insert(self.id);
                    seen.insert(from);
                    if !already_delivered {
                        self.pending.push(t.clone());
                        self.buffer.insert(t.dot, BufEntry { tagged: t, seen });
                    }
                    // Already-delivered ops were pruned from the buffer:
                    // everyone who could need them got them; drop.
                }
            }
        }
        self.drain_pending();
    }

    fn state(&self) -> &C {
        &self.state
    }

    fn on_params_change(&mut self, params: &Params) {
        self.n_nodes = params.n_nodes;
    }

    /// Drop buffered ops whose seen-by set covers **all** `n_nodes`
    /// replicas: causally stable, no replica can still need a forward.
    /// (The per-neighbor prune in `on_sync` only considers the current
    /// neighbor set; this is the global rule a compaction scheduler
    /// invokes.) Causally blocked `pending` ops are never touched.
    fn compact(&mut self) -> u64 {
        let n = self.n_nodes;
        let before = self.buffer.len();
        self.buffer.retain(|_, e| e.seen.len() < n);
        (before - self.buffer.len()) as u64
    }

    /// Bootstrap from a peer snapshot: adopt the peer's state *and* its
    /// delivery clock together.
    ///
    /// Ops are not idempotent, so the state join alone would be unsound:
    /// a later redelivery of an op the snapshot already reflects must be
    /// recognized as a duplicate. Joining `delivered` records exactly
    /// that. The peer's transmission buffer and causally blocked ops are
    /// adopted too, so this replica can keep forwarding in-flight ops the
    /// peer had not yet spread.
    fn bootstrap(&mut self, source: &Self) {
        self.state.join_assign(source.state.clone());
        self.delivered.join_assign(source.delivered.clone());
        for (dot, e) in &source.buffer {
            match self.buffer.get_mut(dot) {
                Some(mine) => {
                    mine.seen.extend(e.seen.iter().copied());
                }
                None => {
                    let mut entry = e.clone();
                    entry.seen.insert(self.id);
                    self.buffer.insert(*dot, entry);
                }
            }
        }
        for t in &source.pending {
            if !self.delivered.contains(&t.dot) && !self.pending.iter().any(|p| p.dot == t.dot) {
                self.pending.push(t.clone());
            }
        }
        // The adopted clock may unblock (or mark as duplicate) ops that
        // were causally stuck here.
        self.drain_pending();
    }

    fn memory(&self, model: &SizeModel) -> MemoryUsage {
        let op_bytes: u64 = self
            .buffer
            .values()
            .map(|e| {
                C::op_size_bytes(&e.tagged.op, model)
                    + e.tagged.dot.size_bytes(model)
                    + e.tagged.deps.size_bytes(model)
                    + e.seen.len() as u64 * model.id_bytes
            })
            .sum();
        let pending_bytes: u64 = self
            .pending
            .iter()
            .map(|t| {
                C::op_size_bytes(&t.op, model) + t.dot.size_bytes(model) + t.deps.size_bytes(model)
            })
            .sum();
        MemoryUsage {
            crdt_elements: self.state.count_elements(),
            crdt_bytes: self.state.size_bytes(model),
            meta_elements: (self.buffer.len() + self.pending.len()) as u64,
            meta_bytes: op_bytes + pending_bytes + self.delivered.size_bytes(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GCounter, GCounterOp, GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const C_: ReplicaId = ReplicaId(2);
    const PARAMS: Params = Params::new(3);

    fn deliver<C: Crdt>(to: &mut OpBased<C>, from: ReplicaId, msgs: Vec<(ReplicaId, OpMsg<C>)>) {
        for (_, m) in msgs {
            to.on_msg(from, m, &mut Vec::new());
        }
    }

    #[test]
    fn ops_propagate_and_converge() {
        let mut a: OpBased<GSet<u32>> = Protocol::new(A, &PARAMS);
        let mut b: OpBased<GSet<u32>> = Protocol::new(B, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        b.on_op(&GSetOp::Add(2));
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        deliver(&mut b, A, std::mem::take(&mut out));
        b.on_sync(&[A], &mut out);
        deliver(&mut a, B, std::mem::take(&mut out));
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().len(), 2);
    }

    #[test]
    fn causal_delivery_holds_back_ops() {
        // A's second op causally follows its first; deliver them in the
        // wrong order to B.
        let mut a: OpBased<GSet<u32>> = Protocol::new(A, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        let first: Vec<_> = a.buffer.values().map(|e| e.tagged.clone()).collect();
        a.on_op(&GSetOp::Add(2));
        let both: Vec<_> = a.buffer.values().map(|e| e.tagged.clone()).collect();
        let second: Vec<_> = both.into_iter().filter(|t| t.dot.seq == 2).collect();

        let mut b: OpBased<GSet<u32>> = Protocol::new(B, &PARAMS);
        b.on_msg(A, OpMsg::new(second), &mut Vec::new());
        // Op 2 is causally blocked.
        assert_eq!(b.state().len(), 0);
        assert_eq!(b.pending_ops(), 1);
        b.on_msg(A, OpMsg::new(first), &mut Vec::new());
        // Both delivered now.
        assert_eq!(b.state().len(), 2);
        assert_eq!(b.pending_ops(), 0);
    }

    #[test]
    fn store_and_forward_reaches_non_neighbors() {
        // Line topology A — B — C: A's op reaches C through B's buffer.
        let mut a: OpBased<GSet<u32>> = Protocol::new(A, &PARAMS);
        let mut b: OpBased<GSet<u32>> = Protocol::new(B, &PARAMS);
        let mut c: OpBased<GSet<u32>> = Protocol::new(C_, &PARAMS);
        a.on_op(&GSetOp::Add(7));
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        deliver(&mut b, A, std::mem::take(&mut out));
        b.on_sync(&[A, C_], &mut out);
        // B forwards to C but not back to A (A is in the seen set).
        let to_a = out.iter().filter(|(to, _)| *to == A).count();
        assert_eq!(to_a, 0, "no back-propagation of ops");
        deliver(&mut c, B, std::mem::take(&mut out));
        assert_eq!(c.state().len(), 1);
    }

    #[test]
    fn duplicate_ops_are_delivered_once() {
        let mut a: OpBased<GCounter> = Protocol::new(A, &PARAMS);
        a.on_op(&GCounterOp::Inc(A));
        let ops: Vec<_> = a.buffer.values().map(|e| e.tagged.clone()).collect();
        let mut b: OpBased<GCounter> = Protocol::new(B, &PARAMS);
        b.on_msg(A, OpMsg::new(ops.clone()), &mut Vec::new());
        b.on_msg(C_, OpMsg::new(ops), &mut Vec::new());
        // Op applied once despite two arrivals (ops are NOT idempotent —
        // the middleware's exactly-once delivery is what protects us).
        assert_eq!(b.state().value(), 1);
    }

    #[test]
    fn no_compression_of_counter_ops() {
        // The GCounter weakness (Fig. 7): n increments stay n ops.
        let mut a: OpBased<GCounter> = Protocol::new(A, &PARAMS);
        for _ in 0..5 {
            a.on_op(&GCounterOp::Inc(A));
        }
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.payload_elements(), 5, "no op compression");
    }

    #[test]
    fn buffer_prunes_when_all_neighbors_seen() {
        let mut a: OpBased<GSet<u32>> = Protocol::new(A, &PARAMS);
        a.on_op(&GSetOp::Add(1));
        let mut out = Vec::new();
        a.on_sync(&[B, C_], &mut out);
        assert_eq!(a.buffered_ops(), 0, "op seen by all neighbors: pruned");
    }

    #[test]
    fn metadata_grows_with_vector_size() {
        let model = SizeModel::paper_metadata();
        let mut a: OpBased<GSet<u32>> = Protocol::new(A, &PARAMS);
        // Build causal history across replicas.
        a.on_msg(
            B,
            OpMsg::new(vec![TaggedOp {
                dot: Dot::new(B, 1),
                deps: VClock::new(),
                op: GSetOp::Add(1),
            }]),
            &mut Vec::new(),
        );
        a.on_op(&GSetOp::Add(2));
        let mut out = Vec::new();
        a.on_sync(&[C_], &mut out);
        let msg = &out[0].1;
        // Own op's deps now include B's entry: metadata dominates payload.
        assert!(msg.metadata_bytes(&model) > msg.payload_bytes(&model));
    }
}
