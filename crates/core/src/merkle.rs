//! Hash-prefix Merkle tree anti-entropy over a multi-object keyspace.
//!
//! The paper's §VI digest repair summarizes *one object* (the hash set of
//! its join-irreducibles). A keyspace replica ([`delta-store`]'s
//! `StoreReplica`, `crdt-sim`'s sharded runner, `crdt-net`'s node) holds
//! many objects, and running the per-object protocol over all of them
//! costs O(objects) digest traffic even when almost nothing diverged —
//! the classic anti-entropy scaling wall Dynamo-style systems answer
//! with a Merkle tree over the key range.
//!
//! This module is that tree, shaped for this workspace:
//!
//! * **Hash-prefix buckets.** A key lands in the leaf bucket addressed by
//!   the top `4·depth` bits of its 64-bit key hash ([`MERKLE_FANOUT`] =
//!   16 children per node, so one nibble per level). The tree is sparse:
//!   only non-empty buckets and their ancestors exist.
//! * **Incremental maintenance.** Mutations call [`MerkleTree::touch`]
//!   (O(1): record the key as dirty). [`MerkleTree::flush`] rehashes only
//!   the dirty leaves and their root paths, bumping a mutation [`epoch`]
//!   when the root hash changes — so keeping the tree current costs
//!   O(touched · depth), not O(keyspace).
//! * **Wire-encoded descent frames.** [`RootDigest`] →
//!   [`DivergentChildren`] → [`LeafRepair`] implement [`WireEncode`]
//!   (canonical, hostile-input-hardened), so the descent runs over real
//!   sockets (`crdt-net`) exactly as it runs in memory ([`diff_keys`]).
//!   Two replicas localize divergence in O(log n · diverged) frames;
//!   the per-object digest protocol of §VI then repairs *only* the
//!   diverged keys.
//!
//! [`epoch`]: MerkleTree::epoch
//! [`delta-store`]: https://crates.io/crates/delta-store

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use crdt_lattice::{CodecError, WireEncode};

/// Children per tree node: one hex nibble of key-hash prefix per level.
pub const MERKLE_FANOUT: usize = 16;

/// Maximum tree depth (a 64-bit hash holds 16 nibbles).
pub const MAX_MERKLE_DEPTH: u8 = 16;

/// Default depth: 16³ = 4096 leaf buckets — a handful of keys per bucket
/// at the 30K-object scale the repair benchmarks run, while a tree over
/// a tiny keyspace stays shallow in practice (sparse nodes).
pub const DEFAULT_MERKLE_DEPTH: u8 = 3;

/// Keyspaces at or above this many objects choose Merkle descent over
/// per-object digest repair. Below it the per-object path is already
/// cheap and its 3-message accounting stays byte-identical to the paper's
/// §VI protocol (which existing scenario baselines pin).
pub const MERKLE_REPAIR_THRESHOLD: usize = 64;

/// Deterministic 64-bit hash of a key (same across replicas and
/// processes — `DefaultHasher::new()` is keyed with constants, the
/// convention the digest and probe paths already rely on).
pub fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// A sparse hash-prefix Merkle tree mapping keys to 64-bit state hashes.
///
/// `K` is the store's key type; the *state hash* of each key is supplied
/// by the caller at [`flush`](MerkleTree::flush) time (the store computes
/// it from the object's engine), keeping the tree decoupled from any
/// engine or CRDT type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree<K> {
    depth: u8,
    /// Leaf contents: leaf prefix → (key → state hash).
    buckets: BTreeMap<u64, BTreeMap<K, u64>>,
    /// `levels[l]` holds the node hashes at depth `l + 1` (the root is
    /// not stored here); a node's prefix is the top `4·(l+1)` bits of
    /// the key hash. `levels[depth - 1]` is the leaf level.
    levels: Vec<BTreeMap<u64, u64>>,
    root: u64,
    /// Keys touched since the last flush.
    dirty: BTreeSet<K>,
    /// Bumped whenever a flush changes the root hash.
    epoch: u64,
}

impl<K: Ord + Clone + Hash> Default for MerkleTree<K> {
    fn default() -> Self {
        Self::new(DEFAULT_MERKLE_DEPTH)
    }
}

impl<K: Ord + Clone + Hash> MerkleTree<K> {
    /// An empty tree of the given depth (clamped to
    /// `1..=`[`MAX_MERKLE_DEPTH`]).
    pub fn new(depth: u8) -> Self {
        let depth = depth.clamp(1, MAX_MERKLE_DEPTH);
        MerkleTree {
            depth,
            buckets: BTreeMap::new(),
            levels: vec![BTreeMap::new(); depth as usize],
            root: 0,
            dirty: BTreeSet::new(),
            epoch: 0,
        }
    }

    /// Build a flushed tree from a `(key, state hash)` snapshot.
    pub fn build(depth: u8, entries: impl IntoIterator<Item = (K, u64)>) -> Self {
        let mut t = Self::new(depth);
        let hashes: BTreeMap<K, u64> = entries.into_iter().collect();
        for key in hashes.keys() {
            t.touch(key.clone());
        }
        t.flush(|k| hashes.get(k).copied());
        t
    }

    /// Tree depth in levels.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Root hash as of the last flush (`0` for an empty tree).
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Mutation epoch: bumped each time a flush changes the root.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of keys tracked (as of the last flush).
    pub fn len(&self) -> usize {
        self.buckets.values().map(BTreeMap::len).sum()
    }

    /// Does the tree track no keys?
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Are there touched keys awaiting a flush?
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Record `key` as mutated; the next [`flush`](MerkleTree::flush)
    /// rehashes its leaf path. O(log) in the dirty-set size.
    pub fn touch(&mut self, key: K) {
        self.dirty.insert(key);
    }

    /// Forget everything (keys, hashes, dirt); the epoch survives so a
    /// peer holding a stale [`RootDigest`] still sees it superseded.
    pub fn clear(&mut self) {
        let changed = self.root != 0;
        self.buckets.clear();
        for level in &mut self.levels {
            level.clear();
        }
        self.root = 0;
        self.dirty.clear();
        if changed {
            self.epoch += 1;
        }
    }

    fn leaf_prefix(&self, key_hash: u64) -> u64 {
        key_hash >> (64 - 4 * u32::from(self.depth))
    }

    /// Rehash the dirty leaf paths. `state_hash` supplies the current
    /// hash for each touched key (`None` = the key no longer exists).
    /// Returns the (possibly bumped) epoch.
    pub fn flush<F: FnMut(&K) -> Option<u64>>(&mut self, mut state_hash: F) -> u64 {
        if self.dirty.is_empty() {
            return self.epoch;
        }
        let mut dirty_nodes: BTreeSet<u64> = BTreeSet::new();
        for key in std::mem::take(&mut self.dirty) {
            let prefix = self.leaf_prefix(hash_key(&key));
            match state_hash(&key) {
                Some(h) => {
                    self.buckets.entry(prefix).or_default().insert(key, h);
                }
                None => {
                    if let Some(bucket) = self.buckets.get_mut(&prefix) {
                        bucket.remove(&key);
                        if bucket.is_empty() {
                            self.buckets.remove(&prefix);
                        }
                    }
                }
            }
            dirty_nodes.insert(prefix);
        }
        // Leaf level, then ancestors up to the root.
        for l in (0..self.depth as usize).rev() {
            let mut parents = BTreeSet::new();
            for &prefix in &dirty_nodes {
                let hash = if l == self.depth as usize - 1 {
                    self.buckets.get(&prefix).map(|bucket| {
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        for (k, sh) in bucket {
                            hash_key(k).hash(&mut h);
                            sh.hash(&mut h);
                        }
                        h.finish()
                    })
                } else {
                    let children = &self.levels[l + 1];
                    let lo = prefix << 4;
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    let mut any = false;
                    for (cp, ch) in children.range(lo..lo + MERKLE_FANOUT as u64) {
                        any = true;
                        cp.hash(&mut h);
                        ch.hash(&mut h);
                    }
                    any.then(|| h.finish())
                };
                match hash {
                    Some(h) => {
                        self.levels[l].insert(prefix, h);
                    }
                    None => {
                        self.levels[l].remove(&prefix);
                    }
                }
                parents.insert(prefix >> 4);
            }
            dirty_nodes = parents;
        }
        let new_root = if self.levels[0].is_empty() {
            0
        } else {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for (p, nh) in &self.levels[0] {
                p.hash(&mut h);
                nh.hash(&mut h);
            }
            h.finish()
        };
        if new_root != self.root {
            self.root = new_root;
            self.epoch += 1;
        }
        self.epoch
    }

    /// The [`RootDigest`] a replica opens a descent with. The tree must
    /// be flushed first.
    pub fn root_digest(&self) -> RootDigest {
        debug_assert!(self.dirty.is_empty(), "flush before exchanging digests");
        RootDigest {
            epoch: self.epoch,
            depth: self.depth,
            root: self.root,
        }
    }

    /// The `(child index, hash)` pairs of the node at `child_level` under
    /// `parent_prefix` (for `child_level == 0`, the root's children —
    /// `parent_prefix` must be 0). Used by both descent sides.
    pub fn node_children(&self, child_level: u8, parent_prefix: u64) -> Vec<(u8, u64)> {
        let Some(level) = self.levels.get(child_level as usize) else {
            return Vec::new();
        };
        let lo = parent_prefix << 4;
        level
            .range(lo..lo + MERKLE_FANOUT as u64)
            .map(|(p, h)| ((p & 0xF) as u8, *h))
            .collect()
    }

    /// The leaf bucket contents at `prefix` as `(key, state hash)` pairs.
    pub fn leaf_entries(&self, prefix: u64) -> Vec<(K, u64)> {
        self.buckets
            .get(&prefix)
            .map(|b| b.iter().map(|(k, h)| (k.clone(), *h)).collect())
            .unwrap_or_default()
    }

    /// All tracked keys (used for conservative full-keyspace fallbacks).
    pub fn all_keys(&self) -> impl Iterator<Item = &K> {
        self.buckets.values().flat_map(BTreeMap::keys)
    }
}

// ---------------------------------------------------------------------------
// Descent frames
// ---------------------------------------------------------------------------

/// Frame 1 of a descent: the initiator's root summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootDigest {
    /// The sender's mutation epoch (staleness marker for schedulers).
    pub epoch: u64,
    /// The sender's tree depth — both sides must agree for prefixes to
    /// be comparable; a mismatch makes the receiver fall back to
    /// full-keyspace repair.
    pub depth: u8,
    /// The sender's root hash (`0` = empty keyspace).
    pub root: u64,
}

impl WireEncode for RootDigest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.epoch.encode(out);
        self.depth.encode(out);
        self.root.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let epoch = u64::decode(input)?;
        let depth = u8::decode(input)?;
        if depth == 0 || depth > MAX_MERKLE_DEPTH {
            return Err(CodecError::BadDiscriminant(depth));
        }
        let root = u64::decode(input)?;
        Ok(RootDigest { epoch, depth, root })
    }
}

/// One tree node's children, as carried by [`DivergentChildren`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildList {
    /// Level the listed children live at (`0` = the root's children).
    pub level: u8,
    /// Prefix of the parent node (`0` when `level == 0`).
    pub prefix: u64,
    /// Present children as `(index, hash)`, strictly increasing by
    /// index — the canonical form the decoder enforces.
    pub children: Vec<(u8, u64)>,
}

impl WireEncode for ChildList {
    fn encode(&self, out: &mut Vec<u8>) {
        self.level.encode(out);
        self.prefix.encode(out);
        self.children.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let level = u8::decode(input)?;
        if level >= MAX_MERKLE_DEPTH {
            return Err(CodecError::BadDiscriminant(level));
        }
        let prefix = u64::decode(input)?;
        let children = Vec::<(u8, u64)>::decode(input)?;
        // A node has at most MERKLE_FANOUT children; enforcing strictly
        // increasing indexes < 16 rejects hostile child-count claims and
        // non-canonical re-encodings in one check.
        let mut prev: Option<u8> = None;
        for &(idx, _) in &children {
            if idx >= MERKLE_FANOUT as u8 || prev.is_some_and(|p| idx <= p) {
                return Err(CodecError::BadDiscriminant(idx));
            }
            prev = Some(idx);
        }
        Ok(ChildList {
            level,
            prefix,
            children,
        })
    }
}

/// Frames 2..n of a descent: the sender's child hashes for nodes the
/// previous frame showed divergent. The receiver compares against its
/// own children and answers one level deeper.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DivergentChildren {
    /// Child listings, one per divergent node.
    pub nodes: Vec<ChildList>,
}

impl WireEncode for DivergentChildren {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nodes.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(DivergentChildren {
            nodes: Vec::decode(input)?,
        })
    }
}

/// Final frames of a descent: leaf bucket contents for the divergent
/// leaves, as `(leaf prefix, [(key, state hash)])`. Both sides exchange
/// one; the symmetric difference of the entries is the diverged key set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LeafRepair<K> {
    /// Divergent leaf buckets.
    pub leaves: Vec<(u64, Vec<(K, u64)>)>,
}

impl<K: WireEncode> WireEncode for LeafRepair<K> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.leaves.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(LeafRepair {
            leaves: Vec::decode(input)?,
        })
    }
}

// ---------------------------------------------------------------------------
// In-memory descent driver
// ---------------------------------------------------------------------------

/// Accounting of one tree-descent session, measured on the real frame
/// encodings (not a byte model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DescentStats {
    /// Frames exchanged (root digest + children rounds + leaf repairs).
    pub frames: u64,
    /// Encoded bytes of [`RootDigest`] and [`DivergentChildren`] frames.
    pub control_bytes: u64,
    /// Encoded bytes of [`LeafRepair`] frames.
    pub leaf_bytes: u64,
    /// Descent rounds (levels walked).
    pub rounds: u64,
}

impl DescentStats {
    /// Total encoded bytes across all frames.
    pub fn total_bytes(&self) -> u64 {
        self.control_bytes + self.leaf_bytes
    }
}

/// Registry cells for Merkle-descent repair traffic, shared by every
/// driver of [`diff_keys`]-style descents (the sharded runner's
/// `repair_pair`, `crdt-net`'s scoped repair handshake).
#[derive(Clone, Debug)]
pub struct MerkleRepairMetrics {
    /// `repair.pairs` — pairwise repair sessions run.
    pub pairs: crdt_obs::Counter,
    /// `repair.merkle.frames` — descent frames exchanged.
    pub frames: crdt_obs::Counter,
    /// `repair.merkle.control_bytes` — root-digest and
    /// divergent-children frame bytes.
    pub control_bytes: crdt_obs::Counter,
    /// `repair.merkle.leaf_bytes` — leaf-repair frame bytes.
    pub leaf_bytes: crdt_obs::Counter,
    /// `repair.merkle.rounds` — descent levels walked.
    pub rounds: crdt_obs::Counter,
}

impl MerkleRepairMetrics {
    /// Register (or look up) the repair cells in `reg`.
    pub fn register(reg: &crdt_obs::Registry) -> Self {
        MerkleRepairMetrics {
            pairs: crdt_obs::register_counter!(reg, "repair.pairs", "pairwise repair sessions run"),
            frames: crdt_obs::register_counter!(
                reg,
                "repair.merkle.frames",
                "Merkle descent frames exchanged"
            ),
            control_bytes: crdt_obs::register_counter!(
                reg,
                "repair.merkle.control_bytes",
                "root-digest and divergent-children frame bytes"
            ),
            leaf_bytes: crdt_obs::register_counter!(
                reg,
                "repair.merkle.leaf_bytes",
                "leaf-repair frame bytes"
            ),
            rounds: crdt_obs::register_counter!(
                reg,
                "repair.merkle.rounds",
                "Merkle descent levels walked"
            ),
        }
    }

    /// Charge one descent's accounting to the cells.
    pub fn charge(&self, d: &DescentStats) {
        self.frames.add(d.frames);
        self.control_bytes.add(d.control_bytes);
        self.leaf_bytes.add(d.leaf_bytes);
        self.rounds.add(d.rounds);
    }
}

/// Given both sides' [`LeafRepair`] contents for the same divergent
/// leaves, the keys that actually differ: present on one side only, or
/// present on both with different state hashes.
pub fn diverged_from_leaves<K: Ord + Clone>(
    mine: &LeafRepair<K>,
    theirs: &LeafRepair<K>,
) -> BTreeSet<K> {
    let mut out = BTreeSet::new();
    let theirs_by_prefix: BTreeMap<u64, &Vec<(K, u64)>> =
        theirs.leaves.iter().map(|(p, v)| (*p, v)).collect();
    let mine_by_prefix: BTreeMap<u64, &Vec<(K, u64)>> =
        mine.leaves.iter().map(|(p, v)| (*p, v)).collect();
    for (prefix, entries) in &mine.leaves {
        let other: BTreeMap<&K, u64> = theirs_by_prefix
            .get(prefix)
            .map(|v| v.iter().map(|(k, h)| (k, *h)).collect())
            .unwrap_or_default();
        for (k, h) in entries {
            if other.get(k) != Some(h) {
                out.insert(k.clone());
            }
        }
    }
    for (prefix, entries) in &theirs.leaves {
        let ours: BTreeSet<&K> = mine_by_prefix
            .get(prefix)
            .map(|v| v.iter().map(|(k, _)| k).collect())
            .unwrap_or_default();
        for (k, _) in entries {
            if !ours.contains(k) {
                out.insert(k.clone());
            }
        }
    }
    out
}

/// Compare a frame's child listings against `tree`'s own children,
/// splitting the divergent child prefixes into internal nodes (the next
/// descent frontier, as `(child level, prefix)`) and leaf prefixes. This
/// is the per-round comparison step both the in-memory driver
/// ([`diff_keys`]) and `crdt-net`'s socket descent run.
pub fn divergent_children<K: Ord + Clone + Hash>(
    tree: &MerkleTree<K>,
    frame: &DivergentChildren,
    internal: &mut Vec<(u8, u64)>,
    leaves: &mut BTreeSet<u64>,
) {
    for node in &frame.nodes {
        let mine: BTreeMap<u8, u64> = tree
            .node_children(node.level, node.prefix)
            .into_iter()
            .collect();
        let theirs: BTreeMap<u8, u64> = node.children.iter().copied().collect();
        for idx in 0..MERKLE_FANOUT as u8 {
            if mine.get(&idx) == theirs.get(&idx) {
                continue;
            }
            let child_prefix = (node.prefix << 4) | u64::from(idx);
            if node.level == tree.depth() - 1 {
                leaves.insert(child_prefix);
            } else {
                internal.push((node.level + 1, child_prefix));
            }
        }
    }
}

/// Run a full descent between two flushed trees **in memory**, encoding
/// every frame for real so the returned [`DescentStats`] measure actual
/// wire bytes. Returns the diverged key set.
///
/// Mirrors the socket protocol in `crdt-net`: `a` opens with its root
/// digest; the sides then alternate [`DivergentChildren`] frames one
/// level deeper per round; divergence at the leaf level resolves through
/// a [`LeafRepair`] exchange. Depth mismatch degrades to full-keyspace
/// divergence (conservative, still convergent).
pub fn diff_keys<K>(a: &MerkleTree<K>, b: &MerkleTree<K>) -> (BTreeSet<K>, DescentStats)
where
    K: Ord + Clone + Hash + WireEncode,
{
    let mut stats = DescentStats::default();

    // Frame 1: A → B, root digest.
    stats.frames += 1;
    stats.control_bytes += a.root_digest().to_bytes().len() as u64;
    if a.depth() != b.depth() {
        let all: BTreeSet<K> = a.all_keys().chain(b.all_keys()).cloned().collect();
        return (all, stats);
    }
    if a.root() == b.root() {
        return (BTreeSet::new(), stats);
    }

    // Frame 2: B → A, the root's children; the sides then alternate, the
    // receiver of each frame comparing and answering one level deeper.
    let mut frame = DivergentChildren {
        nodes: vec![ChildList {
            level: 0,
            prefix: 0,
            children: b.node_children(0, 0),
        }],
    };
    let mut receiver_is_a = true;
    let mut leaves: BTreeSet<u64> = BTreeSet::new();
    loop {
        stats.frames += 1;
        stats.rounds += 1;
        stats.control_bytes += frame.to_bytes().len() as u64;
        let receiver = if receiver_is_a { a } else { b };
        let mut internal = Vec::new();
        divergent_children(receiver, &frame, &mut internal, &mut leaves);
        if internal.is_empty() {
            break;
        }
        frame = DivergentChildren {
            nodes: internal
                .into_iter()
                .map(|(level, prefix)| ChildList {
                    level,
                    prefix,
                    children: receiver.node_children(level, prefix),
                })
                .collect(),
        };
        receiver_is_a = !receiver_is_a;
    }

    if leaves.is_empty() {
        return (BTreeSet::new(), stats);
    }

    // Leaf exchange: the side that found the divergent leaves sends its
    // buckets; the other answers with the same buckets from its side.
    let (x, y) = if receiver_is_a { (a, b) } else { (b, a) };
    let x_repair = LeafRepair {
        leaves: leaves.iter().map(|&p| (p, x.leaf_entries(p))).collect(),
    };
    let y_repair = LeafRepair {
        leaves: leaves.iter().map(|&p| (p, y.leaf_entries(p))).collect(),
    };
    stats.frames += 2;
    stats.leaf_bytes += x_repair.to_bytes().len() as u64;
    stats.leaf_bytes += y_repair.to_bytes().len() as u64;

    (diverged_from_leaves(&x_repair, &y_repair), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(depth: u8, entries: &[(u32, u64)]) -> MerkleTree<u32> {
        MerkleTree::build(depth, entries.iter().copied())
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let t: MerkleTree<u32> = MerkleTree::new(3);
        assert_eq!(t.root(), 0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn incremental_flush_matches_scratch_build() {
        let mut hashes: BTreeMap<u32, u64> = BTreeMap::new();
        let mut t: MerkleTree<u32> = MerkleTree::new(3);
        for i in 0..200u32 {
            hashes.insert(i, u64::from(i) * 7 + 1);
            t.touch(i);
        }
        t.flush(|k| hashes.get(k).copied());
        // Mutate a few, remove a few, add a few.
        for i in [3u32, 77, 150] {
            hashes.insert(i, 999 + u64::from(i));
            t.touch(i);
        }
        for i in [10u32, 11] {
            hashes.remove(&i);
            t.touch(i);
        }
        hashes.insert(1000, 5);
        t.touch(1000);
        t.flush(|k| hashes.get(k).copied());

        let scratch = MerkleTree::build(3, hashes.clone());
        assert_eq!(t.root(), scratch.root());
        assert_eq!(t.levels, scratch.levels);
        assert_eq!(t.buckets, scratch.buckets);
    }

    #[test]
    fn epoch_bumps_only_on_real_change() {
        let mut t: MerkleTree<u32> = MerkleTree::new(2);
        t.touch(1);
        t.flush(|_| Some(42));
        let e = t.epoch();
        // Same hash re-flushed: no epoch change.
        t.touch(1);
        t.flush(|_| Some(42));
        assert_eq!(t.epoch(), e);
        t.touch(1);
        t.flush(|_| Some(43));
        assert_eq!(t.epoch(), e + 1);
    }

    #[test]
    fn diff_finds_exactly_the_diverged_keys() {
        let base: Vec<(u32, u64)> = (0..500).map(|i| (i, u64::from(i) + 10)).collect();
        let mut other = base.clone();
        other[42].1 = 9_999; // changed state
        other.push((700, 1)); // only in b
        let a = tree_of(3, &base);
        let b = tree_of(3, &other);
        let (diverged, stats) = diff_keys(&a, &b);
        assert_eq!(diverged, BTreeSet::from([42u32, 700]));
        assert!(stats.frames >= 4, "root + descent + leaf exchange");
        // Control traffic is far below one digest hash per key.
        assert!(
            stats.total_bytes() < 8 * 500,
            "descent bytes {} must undercut per-key digests",
            stats.total_bytes()
        );
    }

    #[test]
    fn diff_of_equal_trees_is_one_frame() {
        let entries: Vec<(u32, u64)> = (0..100).map(|i| (i, u64::from(i))).collect();
        let a = tree_of(3, &entries);
        let b = tree_of(3, &entries);
        let (diverged, stats) = diff_keys(&a, &b);
        assert!(diverged.is_empty());
        assert_eq!(stats.frames, 1, "equal roots stop at the digest");
    }

    #[test]
    fn diff_against_empty_tree_reports_everything() {
        let entries: Vec<(u32, u64)> = (0..50).map(|i| (i, 1)).collect();
        let a = tree_of(3, &entries);
        let b: MerkleTree<u32> = MerkleTree::new(3);
        let (diverged, _) = diff_keys(&a, &b);
        assert_eq!(diverged.len(), 50);
        let (diverged, stats) = diff_keys(&b, &a);
        assert_eq!(diverged.len(), 50);
        assert!(stats.frames > 1);
    }

    #[test]
    fn diff_of_two_empty_trees_is_empty() {
        let a: MerkleTree<u32> = MerkleTree::new(3);
        let b: MerkleTree<u32> = MerkleTree::new(3);
        let (diverged, stats) = diff_keys(&a, &b);
        assert!(diverged.is_empty());
        assert_eq!(stats.frames, 1);
    }

    #[test]
    fn depth_mismatch_degrades_to_full_divergence() {
        let a = tree_of(2, &[(1, 1), (2, 2)]);
        let b = tree_of(3, &[(2, 2), (3, 3)]);
        let (diverged, _) = diff_keys(&a, &b);
        assert_eq!(diverged, BTreeSet::from([1u32, 2, 3]));
    }

    #[test]
    fn descent_bytes_scale_with_divergence_not_keyspace() {
        let small: Vec<(u32, u64)> = (0..1_000).map(|i| (i, u64::from(i))).collect();
        let large: Vec<(u32, u64)> = (0..8_000).map(|i| (i, u64::from(i))).collect();
        let one_diverged = |entries: &[(u32, u64)]| {
            let a = tree_of(3, entries);
            let mut changed = entries.to_vec();
            changed[0].1 ^= 0xDEAD;
            let b = tree_of(3, &changed);
            diff_keys(&a, &b).1
        };
        let s = one_diverged(&small);
        let l = one_diverged(&large);
        // 8× the keyspace with the same single diverged key: control
        // traffic may grow only logarithmically, never proportionally.
        assert!(
            l.total_bytes() < s.total_bytes() * 4,
            "descent bytes grew with keyspace: {} → {}",
            s.total_bytes(),
            l.total_bytes()
        );
    }

    #[test]
    fn clear_resets_but_keeps_epoch_monotone() {
        let mut t = tree_of(3, &[(1, 1), (2, 2)]);
        let e = t.epoch();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.root(), 0);
        assert!(t.epoch() > e);
    }

    #[test]
    fn frames_roundtrip_on_the_wire() {
        let rd = RootDigest {
            epoch: 7,
            depth: 3,
            root: 0xABCD,
        };
        assert_eq!(RootDigest::from_bytes(&rd.to_bytes()).unwrap(), rd);

        let dc = DivergentChildren {
            nodes: vec![
                ChildList {
                    level: 0,
                    prefix: 0,
                    children: vec![(0, 11), (3, 22), (15, 33)],
                },
                ChildList {
                    level: 2,
                    prefix: 0x123,
                    children: vec![],
                },
            ],
        };
        assert_eq!(DivergentChildren::from_bytes(&dc.to_bytes()).unwrap(), dc);

        let lr = LeafRepair {
            leaves: vec![(5u64, vec![(7u32, 100u64), (8, 200)]), (9, vec![])],
        };
        assert_eq!(LeafRepair::<u32>::from_bytes(&lr.to_bytes()).unwrap(), lr);
    }

    #[test]
    fn hostile_frames_are_rejected() {
        // Depth 0 and depth > 16 are invalid.
        let mut bad = RootDigest {
            epoch: 0,
            depth: 3,
            root: 0,
        }
        .to_bytes();
        bad[1] = 0;
        assert!(RootDigest::from_bytes(&bad).is_err());
        bad[1] = 17;
        assert!(RootDigest::from_bytes(&bad).is_err());

        // Child index ≥ 16 rejected.
        let dc = DivergentChildren {
            nodes: vec![ChildList {
                level: 0,
                prefix: 0,
                children: vec![(16, 1)],
            }],
        };
        assert!(DivergentChildren::from_bytes(&dc.to_bytes()).is_err());

        // Duplicate / non-increasing child indexes rejected (hostile
        // child-count claims re-listing the same index).
        let dup = DivergentChildren {
            nodes: vec![ChildList {
                level: 0,
                prefix: 0,
                children: vec![(3, 1), (3, 2)],
            }],
        };
        assert!(DivergentChildren::from_bytes(&dup.to_bytes()).is_err());

        // Truncation errors, never panics.
        let ok = DivergentChildren {
            nodes: vec![ChildList {
                level: 1,
                prefix: 2,
                children: vec![(1, 5), (2, 6)],
            }],
        }
        .to_bytes();
        for cut in 0..ok.len() {
            assert!(DivergentChildren::from_bytes(&ok[..cut]).is_err());
        }
    }
}
