//! Causal-stability tracking: the version-vector frontier below which
//! every replica has seen everything.
//!
//! A dot `⟨i, s⟩` is **causally stable** once every replica's summary
//! vector covers it — no replica can still need the delta, op, or
//! buffer entry it tags, so synchronization metadata below the frontier
//! can be pruned without affecting convergence. This is the safety rule
//! behind Scuttlebutt-GC's safe deletes (§V-B), factored out so any
//! driver (the store's compaction scheduler, the anti-entropy loop) can
//! compute it from whatever peer clocks it observes.
//!
//! The tracker is deliberately conservative: the frontier exists only
//! once clocks from **all** `n_nodes` replicas have been observed —
//! before that, an unheard-from replica might still need everything, and
//! [`StabilityTracker::frontier`] returns `None`.

use std::collections::BTreeMap;

use crdt_lattice::{Dot, Lattice, ReplicaId, VClock};

/// Observes peer summary vectors and computes the stable frontier: the
/// pointwise *meet* (minimum) of every replica's clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilityTracker {
    n_nodes: usize,
    clocks: BTreeMap<ReplicaId, VClock>,
}

impl StabilityTracker {
    /// Tracker for an `n_nodes`-replica system. With the size unknown
    /// (`usize::MAX`), the frontier never forms — the safe default.
    pub fn new(n_nodes: usize) -> Self {
        StabilityTracker {
            n_nodes,
            clocks: BTreeMap::new(),
        }
    }

    /// The system grew or shrank; an undershot size must raise the bar
    /// *before* the joiner is heard from (same rule as Scuttlebutt-GC).
    pub fn set_system_size(&mut self, n_nodes: usize) {
        self.n_nodes = n_nodes;
    }

    /// Record `peer`'s summary vector (joined into anything previously
    /// observed — clocks only move forward).
    pub fn observe(&mut self, peer: ReplicaId, clock: &VClock) {
        self.clocks
            .entry(peer)
            .and_modify(|mine| {
                mine.join_assign(clock.clone());
            })
            .or_insert_with(|| clock.clone());
    }

    /// Replicas heard from so far.
    pub fn observed(&self) -> usize {
        self.clocks.len()
    }

    /// Have all `n_nodes` replicas been heard from?
    pub fn is_complete(&self) -> bool {
        self.clocks.len() >= self.n_nodes
    }

    /// The stable frontier: for each replica `r`, the minimum of `r`'s
    /// entry across **every** observed clock. `None` until complete.
    /// Entries whose minimum is 0 are omitted (a `VClock` has no explicit
    /// zero entries).
    pub fn frontier(&self) -> Option<VClock> {
        if !self.is_complete() {
            return None;
        }
        let mut entries: BTreeMap<ReplicaId, u64> = BTreeMap::new();
        for (i, clock) in self.clocks.values().enumerate() {
            if i == 0 {
                entries = clock.iter().collect();
            } else {
                entries.retain(|r, seq| {
                    *seq = (*seq).min(clock.get(*r));
                    *seq > 0
                });
            }
        }
        Some(entries.into_iter().collect())
    }

    /// Is `dot` below the stable frontier (safe to prune)?
    pub fn is_stable(&self, dot: &Dot) -> bool {
        self.is_complete() && self.clocks.values().all(|c| c.contains(dot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const C: ReplicaId = ReplicaId(2);

    fn clock(entries: &[(ReplicaId, u64)]) -> VClock {
        entries.iter().copied().collect()
    }

    #[test]
    fn no_frontier_until_all_nodes_heard_from() {
        let mut t = StabilityTracker::new(3);
        t.observe(A, &clock(&[(A, 5)]));
        t.observe(B, &clock(&[(A, 3), (B, 2)]));
        assert!(!t.is_complete());
        assert_eq!(t.frontier(), None);
        t.observe(C, &clock(&[(A, 4), (C, 1)]));
        assert!(t.is_complete());
        // min over {5,3,4} = 3 for A; B and C hit a zero somewhere.
        assert_eq!(t.frontier(), Some(clock(&[(A, 3)])));
    }

    #[test]
    fn unknown_system_size_never_stabilizes() {
        let mut t = StabilityTracker::new(usize::MAX);
        t.observe(A, &clock(&[(A, 9)]));
        assert_eq!(t.frontier(), None);
        assert!(!t.is_stable(&Dot::new(A, 1)));
    }

    #[test]
    fn observations_only_move_forward() {
        let mut t = StabilityTracker::new(1);
        t.observe(A, &clock(&[(A, 5)]));
        t.observe(A, &clock(&[(A, 2)])); // stale re-delivery
        assert_eq!(t.frontier(), Some(clock(&[(A, 5)])));
    }

    #[test]
    fn is_stable_matches_the_frontier() {
        let mut t = StabilityTracker::new(2);
        t.observe(A, &clock(&[(A, 4), (B, 2)]));
        t.observe(B, &clock(&[(A, 2), (B, 3)]));
        assert!(t.is_stable(&Dot::new(A, 2)));
        assert!(!t.is_stable(&Dot::new(A, 3)));
        assert!(t.is_stable(&Dot::new(B, 2)));
        assert!(!t.is_stable(&Dot::new(B, 3)));
        assert_eq!(t.frontier(), Some(clock(&[(A, 2), (B, 2)])));
    }

    #[test]
    fn growing_the_system_dissolves_the_frontier() {
        let mut t = StabilityTracker::new(2);
        t.observe(A, &clock(&[(A, 1)]));
        t.observe(B, &clock(&[(A, 1)]));
        assert!(t.frontier().is_some());
        t.set_system_size(3);
        assert_eq!(t.frontier(), None);
    }
}
