//! # crdt-sync
//!
//! Synchronization algorithms for state-based CRDTs — the contribution of
//! *"Efficient Synchronization of State-based CRDTs"* (Enes, Almeida,
//! Baquero, Leitão — ICDE 2019) plus every baseline its evaluation
//! compares against:
//!
//! | Protocol | Paper role |
//! |---|---|
//! | [`ClassicDelta`] | classic delta-based synchronization \[13\], \[14\] |
//! | [`BpDelta`] | + avoid **b**ack-**p**ropagation of δ-groups (§IV) |
//! | [`RrDelta`] | + **r**emove **r**edundant received state via `Δ` (§IV) |
//! | [`BpRrDelta`] | both optimizations — the paper's proposal |
//! | [`StateSync`] | full-state baseline (§II) |
//! | [`Scuttlebutt`] / [`ScuttlebuttGc`] | anti-entropy baselines (§V-B) |
//! | [`OpBased`] | op-based causal middleware baseline (§V-B) |
//! | [`AckedDeltaSync`] | the sequence-number/ack variant for lossy channels (§IV footnote) |
//! | [`digest`] | state-driven / digest-driven pairwise repair (§VI, \[30\]) |
//!
//! All protocols implement [`Protocol`] and account transmission through
//! [`Measured`], so the simulator in `crdt-sim` reproduces the paper's
//! element/byte/memory/CPU measurements uniformly.
//!
//! ## The engine layer: runtime protocol selection
//!
//! [`Protocol`] is generic (associated `Msg` type, `const NAME`) and
//! therefore not object-safe; the [`engine`] module adds the type-erased
//! twin for deployments that pick the protocol at runtime:
//!
//! | Engine item | Role |
//! |---|---|
//! | [`SyncEngine`] | object-safe mirror of [`Protocol`] (`Box<dyn SyncEngine>`) |
//! | [`WireEnvelope`] | the one concrete message: encoded payload + [`WireAccounting`] |
//! | [`EngineAdapter`] | blanket bridge wrapping any wire-encodable `P: Protocol<C>` |
//! | [`ProtocolKind`] | the suite as a value — `"bp_rr".parse()`, `kind.name()` |
//! | [`build_engine`] | factory: `ProtocolKind` → boxed engine over any CRDT |
//!
//! Generic and erased paths are behaviorally identical (pinned by the
//! `engine_parity` property tests); the erased path additionally runs
//! every payload through [`crdt_lattice::codec`], so its
//! `WireAccounting::encoded_bytes` is a measurement of real bytes, not a
//! model. Use [`Protocol`] directly for monomorphized experiments, the
//! engine layer for runtime-configurable systems (`crdt-sim`'s
//! `DynRunner`, `delta-store`); ARCHITECTURE.md has the full decision
//! guide.
//!
//! ```
//! use crdt_lattice::ReplicaId;
//! use crdt_sync::{build_engine, OpBytes, Params, ProtocolKind};
//! use crdt_types::{GSet, GSetOp};
//!
//! // Protocol chosen from a string — e.g. a `--protocol` CLI flag.
//! let kind: ProtocolKind = "scuttlebutt".parse().unwrap();
//! let mut engine = build_engine::<GSet<u64>>(kind, ReplicaId(0), &Params::new(3));
//! engine.on_op(&OpBytes::encode(&GSetOp::Add(1u64))).unwrap();
//! let digests = engine.on_sync(&[ReplicaId(1), ReplicaId(2)]);
//! assert_eq!(digests.len(), 2);
//! ```
//!
//! ## Example: the Fig. 4 anomaly in eight lines
//!
//! ```
//! use crdt_lattice::ReplicaId;
//! use crdt_sync::{ClassicDelta, BpRrDelta, Params, Protocol, Measured};
//! use crdt_types::{GSet, GSetOp};
//!
//! let p = Params::new(2);
//! let (a, b) = (ReplicaId(0), ReplicaId(1));
//! let mut classic: ClassicDelta<GSet<&str>> = Protocol::new(a, &p);
//! // B's delta arrives, then A synchronizes back towards B.
//! classic.on_op(&GSetOp::Add("a"));
//! let mut out = Vec::new();
//! classic.on_msg(b, crdt_sync::DeltaMsg(GSet::from_iter(["b"])), &mut out);
//! classic.on_sync(&[b], &mut out);
//! // Classic sends {a, b} back to B — the redundancy BP removes.
//! assert_eq!(out[0].1.payload_elements(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod acked;
mod buffer;
pub mod bytes;
mod delta;
mod deltacrdt;
pub mod digest;
pub mod engine;
pub mod merkle;
mod opbased;
mod proto;
mod scuttlebutt;
mod stability;
mod state;
mod wire;

pub use acked::{AckedDeltaSync, AckedMsg};
pub use buffer::{DeltaBuffer, Entry, Origin};
pub use bytes::{BufferPool, Bytes};
pub use delta::{BpDelta, BpRrDelta, ClassicDelta, DeltaConfig, DeltaMsg, DeltaSync, RrDelta};
pub use deltacrdt::{
    DeltaCrdt, DeltaCrdtMsg, DeltaCrdtSmallLog, DeltaCrdtSync, DEFAULT_LOG_CAPACITY,
};
pub use engine::{
    build_engine, build_engine_send, build_engine_send_with_model, build_engine_with_model,
    state_hash_of, BatchEntries, BatchEnvelope, EngineAdapter, EngineError, EngineMetrics, OpBytes,
    ProtocolKind, SyncEngine, UnknownProtocol, WireAccounting, WireEnvelope, WireEnvelopeRef,
};
pub use merkle::{
    diff_keys, diverged_from_leaves, divergent_children, ChildList, DescentStats,
    DivergentChildren, LeafRepair, MerkleRepairMetrics, MerkleTree, RootDigest,
    DEFAULT_MERKLE_DEPTH, MAX_MERKLE_DEPTH, MERKLE_FANOUT, MERKLE_REPAIR_THRESHOLD,
};
pub use opbased::{OpBased, OpMsg, TaggedOp};
pub use proto::{Measured, MemoryUsage, Params, Protocol};
pub use scuttlebutt::{Knowledge, SbMsg, Scuttlebutt, ScuttlebuttCore, ScuttlebuttGc};
pub use stability::StabilityTracker;
pub use state::StateSync;
