//! Scuttlebutt anti-entropy \[20\], adapted to CRDT deltas (paper, §V-B),
//! in both variants: the original (no key pruning) and **Scuttlebutt-GC**
//! (the paper's extension with safe delta deletion).
//!
//! Each local mutation produces an optimal delta stored under a unique
//! version `⟨i, s⟩ ∈ I × ℕ` (a [`Dot`]). Knowledge is summarized by a
//! vector `I ↪ ℕ`; reconciliation is push-pull:
//!
//! 1. `Digest` — the initiator sends its summary vector;
//! 2. `Reply` — the responder ships every key-delta pair not covered by
//!    the received vector, together with its own summary vector;
//! 3. `Final` — the initiator ships what the responder is missing.
//!
//! The GC variant additionally gossips a *knowledge matrix*
//! `I ↪ (I ↪ ℕ)` ("each node keeps track of what each node in the system
//! has seen"); once a delta's dot is covered by **every** node's vector it
//! is deleted from the store. That matrix is exactly the `N²P` metadata
//! term of Fig. 9, versus `NP` for plain Scuttlebutt.
//!
//! The limitation the paper demonstrates with GCounter (Fig. 7) is
//! faithfully reproduced: values are **opaque** — multiple deltas of the
//! same counter entry are stored and shipped individually, never
//! compressed by a lattice join.

use std::collections::BTreeMap;

use crdt_lattice::{Dot, Lattice, ReplicaId, SizeModel, StateSize, VClock};
use crdt_types::Crdt;

use crate::proto::{Measured, MemoryUsage, Params, Protocol};

/// The knowledge matrix of Scuttlebutt-GC: replica ↦ last known summary
/// vector of that replica.
pub type Knowledge = BTreeMap<ReplicaId, VClock>;

fn knowledge_bytes(k: &Knowledge, model: &SizeModel) -> u64 {
    k.values()
        .map(|v| model.id_bytes + v.size_bytes(model))
        .sum()
}

fn merge_knowledge(into: &mut Knowledge, other: &Knowledge) {
    for (r, v) in other {
        into.entry(*r)
            .and_modify(|mine| {
                mine.join_assign(v.clone());
            })
            .or_insert_with(|| v.clone());
    }
}

/// Scuttlebutt wire messages.
#[derive(Debug, Clone)]
pub enum SbMsg<C> {
    /// Round 1: the initiator's summary vector (plus knowledge, GC only).
    Digest {
        /// Initiator's summary vector.
        clock: VClock,
        /// Initiator's knowledge matrix (GC variant only).
        knowledge: Option<Knowledge>,
    },
    /// Round 2: missing key-delta pairs + the responder's own vector.
    Reply {
        /// Key-delta pairs the initiator was missing.
        deltas: Vec<(Dot, C)>,
        /// Responder's summary vector (so the initiator can reciprocate).
        clock: VClock,
        /// Responder's knowledge matrix (GC variant only).
        knowledge: Option<Knowledge>,
    },
    /// Round 3: key-delta pairs the responder was missing.
    Final {
        /// Key-delta pairs for the responder.
        deltas: Vec<(Dot, C)>,
        /// Initiator's knowledge matrix (GC variant only).
        knowledge: Option<Knowledge>,
    },
}

impl<C: StateSize> Measured for SbMsg<C> {
    fn payload_elements(&self) -> u64 {
        match self {
            SbMsg::Digest { .. } => 0,
            SbMsg::Reply { deltas, .. } | SbMsg::Final { deltas, .. } => {
                deltas.iter().map(|(_, d)| d.count_elements()).sum()
            }
        }
    }

    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        match self {
            SbMsg::Digest { .. } => 0,
            SbMsg::Reply { deltas, .. } | SbMsg::Final { deltas, .. } => {
                deltas.iter().map(|(_, d)| d.size_bytes(model)).sum()
            }
        }
    }

    fn metadata_bytes(&self, model: &SizeModel) -> u64 {
        let know = |k: &Option<Knowledge>| k.as_ref().map_or(0, |k| knowledge_bytes(k, model));
        match self {
            SbMsg::Digest { clock, knowledge } => clock.size_bytes(model) + know(knowledge),
            SbMsg::Reply {
                deltas,
                clock,
                knowledge,
            } => {
                deltas.len() as u64 * model.vector_entry_bytes()
                    + clock.size_bytes(model)
                    + know(knowledge)
            }
            SbMsg::Final { deltas, knowledge } => {
                deltas.len() as u64 * model.vector_entry_bytes() + know(knowledge)
            }
        }
    }
}

/// Shared implementation of both Scuttlebutt variants.
#[derive(Debug, Clone)]
pub struct ScuttlebuttCore<C> {
    id: ReplicaId,
    n_nodes: usize,
    gc: bool,
    /// Opt-in causal-stability compaction (plain variant only; see
    /// [`crate::Params::compaction`]): track the peer clocks that already
    /// flow through every exchange, so [`ScuttlebuttCore::compact`] can
    /// prune stable store entries on demand. Never prunes on its own —
    /// with the flag off, the plain variant's store grows without bound
    /// exactly as the paper measures it (Fig. 10).
    compaction: bool,
    state: C,
    /// Everything this replica has seen, as a contiguous-per-replica
    /// summary.
    clock: VClock,
    /// The clock as of this replica's last synchronization step. Replies
    /// are computed against this snapshot: real anti-entropy sessions with
    /// several neighbors run *concurrently* within one gossip period, so a
    /// session must not benefit from data absorbed moments earlier in a
    /// parallel session. (Without this, a synchronous simulator makes
    /// Scuttlebutt unrealistically precise.)
    sync_snapshot: VClock,
    /// The key-delta store. Never pruned in the original variant.
    store: BTreeMap<Dot, C>,
    /// GC only: what every node is known to have seen.
    knowledge: Knowledge,
}

impl<C: Crdt> ScuttlebuttCore<C> {
    fn new(id: ReplicaId, params: &Params, gc: bool) -> Self {
        ScuttlebuttCore {
            id,
            n_nodes: params.n_nodes,
            gc,
            compaction: params.compaction,
            state: C::bottom(),
            clock: VClock::new(),
            sync_snapshot: VClock::new(),
            store: BTreeMap::new(),
            knowledge: Knowledge::new(),
        }
    }

    fn on_op(&mut self, op: &C::Op) {
        let delta = self.state.apply(op);
        if !delta.is_bottom() {
            let dot = self.clock.bump(self.id);
            self.store.insert(dot, delta);
            self.update_own_knowledge();
        }
    }

    fn update_own_knowledge(&mut self) {
        if self.gc || self.compaction {
            self.knowledge.insert(self.id, self.clock.clone());
        }
    }

    /// Key-delta pairs above `their` summary vector, limited to what this
    /// replica knew at its last synchronization step (concurrent-session
    /// semantics; see `sync_snapshot`).
    fn missing_for(&self, their: &VClock) -> Vec<(Dot, C)> {
        // Before the first synchronization step there is no snapshot yet;
        // fall back to the live clock.
        let snapshot = if self.sync_snapshot.is_empty() {
            &self.clock
        } else {
            &self.sync_snapshot
        };
        self.store
            .iter()
            .filter(|(dot, _)| dot.seq > their.get(dot.replica) && snapshot.contains(dot))
            .map(|(dot, d)| (*dot, d.clone()))
            .collect()
    }

    /// Absorb received key-delta pairs.
    fn absorb(&mut self, deltas: Vec<(Dot, C)>) {
        for (dot, delta) in deltas {
            if !self.clock.contains(&dot) {
                self.state.join_assign(delta.clone());
                self.clock.observe(dot);
                self.store.insert(dot, delta);
            }
        }
        self.update_own_knowledge();
    }

    /// Record a peer's summary vector / knowledge and prune safe deltas.
    fn learn(
        &mut self,
        from: ReplicaId,
        their_clock: &VClock,
        their_knowledge: &Option<Knowledge>,
    ) {
        if !self.gc && !self.compaction {
            return;
        }
        self.knowledge
            .entry(from)
            .and_modify(|v| {
                v.join_assign(their_clock.clone());
            })
            .or_insert_with(|| their_clock.clone());
        if let Some(k) = their_knowledge {
            merge_knowledge(&mut self.knowledge, k);
        }
        self.update_own_knowledge();
        // Only the GC variant prunes eagerly; the compaction-tracking
        // plain variant waits for an explicit `compact()` call.
        if self.gc {
            self.prune();
        }
    }

    /// Delete deltas seen by **all** nodes (safe deletes, §V-B).
    fn prune(&mut self) {
        if self.knowledge.len() < self.n_nodes {
            // Unheard-from nodes might still need everything.
            return;
        }
        let knowledge = &self.knowledge;
        self.store
            .retain(|dot, _| !knowledge.values().all(|v| v.contains(dot)));
    }

    /// On-demand safe-delete pass: prune store entries below the
    /// causal-stability frontier. Returns the number of pruned entries.
    /// A no-op unless knowledge tracking is on (GC variant, or the plain
    /// variant with [`crate::Params::compaction`]).
    fn compact(&mut self) -> u64 {
        let before = self.store.len();
        self.prune();
        (before - self.store.len()) as u64
    }

    /// Bootstrap from a peer snapshot: adopt the peer's state, summary
    /// vector, key-delta store, and knowledge.
    ///
    /// Adopting the vector is the load-bearing part for cold restarts: a
    /// replica that restarted from scratch would otherwise re-issue dots
    /// `⟨i, 1⟩, ⟨i, 2⟩, …` that peers' vectors already cover — and
    /// therefore never pull — silently losing every post-restart update.
    /// With the peer's vector joined in, the next local `bump` continues
    /// above anything the system has seen from this replica.
    fn bootstrap(&mut self, source: &Self) {
        self.state.join_assign(source.state.clone());
        self.clock.join_assign(source.clock.clone());
        for (dot, d) in &source.store {
            self.store.entry(*dot).or_insert_with(|| d.clone());
        }
        merge_knowledge(&mut self.knowledge, &source.knowledge);
        self.update_own_knowledge();
    }

    fn shared_knowledge(&self) -> Option<Knowledge> {
        self.gc.then(|| self.knowledge.clone())
    }

    fn memory(&self, model: &SizeModel) -> MemoryUsage {
        let store_elements: u64 = self.store.values().map(StateSize::count_elements).sum();
        let store_bytes: u64 = self
            .store
            .iter()
            .map(|(dot, d)| dot.size_bytes(model) + d.size_bytes(model))
            .sum();
        MemoryUsage {
            crdt_elements: self.state.count_elements(),
            crdt_bytes: self.state.size_bytes(model),
            meta_elements: store_elements,
            meta_bytes: store_bytes
                + self.clock.size_bytes(model)
                + knowledge_bytes(&self.knowledge, model),
        }
    }

    fn handle(&mut self, from: ReplicaId, msg: SbMsg<C>, out: &mut Vec<(ReplicaId, SbMsg<C>)>) {
        match msg {
            SbMsg::Digest { clock, knowledge } => {
                let deltas = self.missing_for(&clock);
                self.learn(from, &clock, &knowledge);
                out.push((
                    from,
                    SbMsg::Reply {
                        deltas,
                        clock: self.clock.clone(),
                        knowledge: self.shared_knowledge(),
                    },
                ));
            }
            SbMsg::Reply {
                deltas,
                clock,
                knowledge,
            } => {
                self.absorb(deltas);
                let back = self.missing_for(&clock);
                self.learn(from, &clock, &knowledge);
                out.push((
                    from,
                    SbMsg::Final {
                        deltas: back,
                        knowledge: self.shared_knowledge(),
                    },
                ));
            }
            SbMsg::Final { deltas, knowledge } => {
                self.absorb(deltas);
                if let Some(k) = knowledge {
                    merge_knowledge(&mut self.knowledge, &k);
                    self.prune();
                }
            }
        }
    }
}

macro_rules! scuttlebutt_protocol {
    ($(#[$doc:meta])* $name:ident, $gc:expr, $label:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<C>(pub ScuttlebuttCore<C>);

        impl<C: Crdt> Protocol<C> for $name<C> {
            type Msg = SbMsg<C>;

            const NAME: &'static str = $label;

            fn new(id: ReplicaId, params: &Params) -> Self {
                $name(ScuttlebuttCore::new(id, params, $gc))
            }

            fn on_op(&mut self, op: &C::Op) {
                self.0.on_op(op);
            }

            fn on_sync(
                &mut self,
                neighbors: &[ReplicaId],
                out: &mut Vec<(ReplicaId, Self::Msg)>,
            ) {
                self.0.sync_snapshot = self.0.clock.clone();
                for &j in neighbors {
                    out.push((
                        j,
                        SbMsg::Digest {
                            clock: self.0.clock.clone(),
                            knowledge: self.0.shared_knowledge(),
                        },
                    ));
                }
            }

            fn on_msg(
                &mut self,
                from: ReplicaId,
                msg: Self::Msg,
                out: &mut Vec<(ReplicaId, Self::Msg)>,
            ) {
                self.0.handle(from, msg, out);
            }

            fn state(&self) -> &C {
                &self.0.state
            }

            fn memory(&self, model: &SizeModel) -> MemoryUsage {
                self.0.memory(model)
            }

            fn bootstrap(&mut self, source: &Self) {
                self.0.bootstrap(&source.0);
            }

            fn on_params_change(&mut self, params: &Params) {
                // The safe-delete rule counts knowledge entries against
                // the system size; a join must raise the bar before the
                // joiner is heard from, or deltas it still needs get
                // pruned beyond recovery.
                self.0.n_nodes = params.n_nodes;
            }

            fn compact(&mut self) -> u64 {
                self.0.compact()
            }
        }
    };
}

scuttlebutt_protocol!(
    /// Original Scuttlebutt \[20\]: key-delta pairs are never pruned, so the
    /// store grows without bound while updates keep arriving (Fig. 10's
    /// worst memory curve).
    Scuttlebutt,
    false,
    "scuttlebutt"
);
scuttlebutt_protocol!(
    /// Scuttlebutt with safe deletes via the gossiped knowledge matrix
    /// (the paper's `Scuttlebutt-GC`).
    ScuttlebuttGc,
    true,
    "scuttlebutt-gc"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GCounter, GCounterOp, GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    /// Run one full push-pull exchange initiated by `a` towards `b`.
    fn exchange<C: Crdt, P: Protocol<C, Msg = SbMsg<C>>>(a: &mut P, b: &mut P) -> Vec<SbMsg<C>> {
        let mut sent = Vec::new();
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        let mut to_b: Vec<_> = std::mem::take(&mut out);
        while let Some((_, m)) = to_b.pop() {
            sent.push(m.clone());
            let mut replies = Vec::new();
            b.on_msg(A, m, &mut replies);
            for (_, r) in replies {
                sent.push(r.clone());
                let mut back = Vec::new();
                a.on_msg(B, r, &mut back);
                for (_, f) in back {
                    sent.push(f.clone());
                    b.on_msg(A, f, &mut Vec::new());
                }
            }
        }
        sent
    }

    #[test]
    fn push_pull_reconciles_both_directions() {
        let params = Params::new(2);
        let mut a: Scuttlebutt<GSet<u32>> = Protocol::new(A, &params);
        let mut b: Scuttlebutt<GSet<u32>> = Protocol::new(B, &params);
        a.on_op(&GSetOp::Add(1));
        b.on_op(&GSetOp::Add(2));
        let msgs = exchange(&mut a, &mut b);
        assert_eq!(msgs.len(), 3, "digest, reply, final");
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().len(), 2);
    }

    #[test]
    fn second_exchange_sends_no_payload() {
        let params = Params::new(2);
        let mut a: Scuttlebutt<GSet<u32>> = Protocol::new(A, &params);
        let mut b: Scuttlebutt<GSet<u32>> = Protocol::new(B, &params);
        a.on_op(&GSetOp::Add(1));
        exchange(&mut a, &mut b);
        let msgs = exchange(&mut a, &mut b);
        let payload: u64 = msgs.iter().map(Measured::payload_elements).sum();
        assert_eq!(payload, 0, "precise reconciliation: nothing re-sent");
    }

    #[test]
    fn gcounter_deltas_are_opaque() {
        // The Fig. 7 limitation: n increments by the same replica become n
        // separate key-delta pairs, even though a lattice join would
        // compress them to one entry.
        let params = Params::new(2);
        let mut a: Scuttlebutt<GCounter> = Protocol::new(A, &params);
        for _ in 0..5 {
            a.on_op(&GCounterOp::Inc(A));
        }
        assert_eq!(a.0.store.len(), 5, "5 opaque deltas, no compression");
        let mut b: Scuttlebutt<GCounter> = Protocol::new(B, &params);
        let msgs = exchange(&mut a, &mut b);
        let payload: u64 = msgs.iter().map(Measured::payload_elements).sum();
        assert_eq!(payload, 5, "all 5 shipped; delta-BP+RR would ship 1");
        assert_eq!(b.state().value(), 5);
    }

    #[test]
    fn original_never_prunes() {
        let params = Params::new(2);
        let mut a: Scuttlebutt<GSet<u32>> = Protocol::new(A, &params);
        let mut b: Scuttlebutt<GSet<u32>> = Protocol::new(B, &params);
        for i in 0..4 {
            a.on_op(&GSetOp::Add(i));
            exchange(&mut a, &mut b);
            exchange(&mut b, &mut a);
        }
        assert_eq!(a.0.store.len(), 4, "store only grows");
        assert_eq!(b.0.store.len(), 4);
    }

    #[test]
    fn gc_prunes_once_all_nodes_have_seen() {
        let params = Params::new(2);
        let mut a: ScuttlebuttGc<GSet<u32>> = Protocol::new(A, &params);
        let mut b: ScuttlebuttGc<GSet<u32>> = Protocol::new(B, &params);
        a.on_op(&GSetOp::Add(1));
        // Exchanges propagate both the delta and the knowledge that both
        // nodes have seen it.
        exchange(&mut a, &mut b);
        exchange(&mut b, &mut a);
        exchange(&mut a, &mut b);
        assert!(a.0.store.is_empty(), "a pruned: {:?}", a.0.store.len());
        assert!(b.0.store.is_empty(), "b pruned: {:?}", b.0.store.len());
        // And the CRDT state survives pruning.
        assert_eq!(a.state().len(), 1);
    }

    /// Like `exchange`, but with honest sender ids in both directions —
    /// plain-variant compaction tracks peer clocks *by sender*, so the
    /// `from` labels matter (the GC variant is insensitive to them
    /// because the gossiped knowledge matrix is keyed internally).
    fn labeled_exchange<C: Crdt, P: Protocol<C, Msg = SbMsg<C>>>(
        a: &mut P,
        a_id: ReplicaId,
        b: &mut P,
        b_id: ReplicaId,
    ) {
        let mut out = Vec::new();
        a.on_sync(&[b_id], &mut out);
        for (_, m) in std::mem::take(&mut out) {
            let mut replies = Vec::new();
            b.on_msg(a_id, m, &mut replies);
            for (_, r) in replies {
                let mut back = Vec::new();
                a.on_msg(b_id, r, &mut back);
                for (_, f) in back {
                    b.on_msg(a_id, f, &mut Vec::new());
                }
            }
        }
    }

    #[test]
    fn plain_with_compaction_prunes_only_on_demand() {
        let params = Params::new(2).compaction();
        let mut a: Scuttlebutt<GSet<u32>> = Protocol::new(A, &params);
        let mut b: Scuttlebutt<GSet<u32>> = Protocol::new(B, &params);
        a.on_op(&GSetOp::Add(1));
        labeled_exchange(&mut a, A, &mut b, B);
        labeled_exchange(&mut b, B, &mut a, A);
        // Unlike the GC variant, nothing is pruned eagerly…
        assert_eq!(a.0.store.len(), 1);
        // …but the tracked peer clocks let an explicit compact() prune
        // the causally stable entry, leaving the CRDT state intact.
        assert_eq!(a.compact(), 1);
        assert!(a.0.store.is_empty());
        assert_eq!(a.state().len(), 1);
        assert_eq!(b.compact(), 1);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn compaction_off_keeps_the_paper_behavior() {
        let params = Params::new(2);
        let mut a: Scuttlebutt<GSet<u32>> = Protocol::new(A, &params);
        let mut b: Scuttlebutt<GSet<u32>> = Protocol::new(B, &params);
        a.on_op(&GSetOp::Add(1));
        exchange(&mut a, &mut b);
        exchange(&mut b, &mut a);
        assert_eq!(a.compact(), 0, "no tracked clocks, nothing prunable");
        assert_eq!(a.0.store.len(), 1);
        assert!(a.0.knowledge.is_empty(), "no extra bookkeeping off-flag");
    }

    #[test]
    fn digest_metadata_grows_with_system_size() {
        let model = SizeModel::paper_metadata();
        let clock = VClock::from_iter((0..8).map(|i| (ReplicaId(i), 3u64)));
        let digest: SbMsg<GSet<u32>> = SbMsg::Digest {
            clock,
            knowledge: None,
        };
        // 8 entries × 28 B.
        assert_eq!(digest.metadata_bytes(&model), 224);
        assert_eq!(digest.payload_bytes(&model), 0);
    }

    #[test]
    fn duplicated_replies_are_idempotent() {
        let params = Params::new(2);
        let mut a: Scuttlebutt<GSet<u32>> = Protocol::new(A, &params);
        let mut b: Scuttlebutt<GSet<u32>> = Protocol::new(B, &params);
        b.on_op(&GSetOp::Add(9));
        let mut out = Vec::new();
        a.on_sync(&[B], &mut out);
        let (_, digest) = out.pop().unwrap();
        let mut replies = Vec::new();
        b.on_msg(A, digest, &mut replies);
        let (_, reply) = replies.pop().unwrap();
        // Deliver the same reply twice.
        a.on_msg(B, reply.clone(), &mut Vec::new());
        a.on_msg(B, reply, &mut Vec::new());
        assert_eq!(a.state().len(), 1);
        assert_eq!(a.0.store.len(), 1);
    }
}
