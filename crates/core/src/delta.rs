//! Delta-based synchronization — Algorithm 1 of the paper, in all four
//! variants: classic, +BP, +RR, +BP+RR.
//!
//! ```text
//! 1  inputs:  nᵢ ∈ P(I), set of neighbors
//! 3  state:   xᵢ ∈ L, x⁰ᵢ = ⊥
//! 5           Bᵢ ∈ P(L × I), B⁰ᵢ = ∅          (classic: P(L))
//! 6  on operationᵢ(mδ)
//! 7      δ = mδ(xᵢ)
//! 8      store(δ, i)
//! 9  periodically                              // synchronize
//! 10     for j ∈ nᵢ
//! 11         d = ⊔{s | ⟨s,o⟩ ∈ Bᵢ ∧ o ≠ j}     (classic: d = ⊔Bᵢ)
//! 12         sendᵢⱼ(delta, d)
//! 13     B′ᵢ = ∅
//! 14 on receiveⱼᵢ(delta, d)
//! 15     d = Δ(d, xᵢ)                          (RR only)
//! 16     if d ≠ ⊥                              (classic: if d ⋢ xᵢ)
//! 17         store(d, j)
//! 18 fun store(s, o)
//! 19     x′ᵢ = xᵢ ⊔ s
//! 20     B′ᵢ = Bᵢ ∪ {⟨s,o⟩}
//! ```
//!
//! The two optimizations (§IV):
//!
//! * **BP — avoid back-propagation of δ-groups**: tag buffer entries with
//!   their origin and skip entries tagged `j` when synchronizing with `j`.
//! * **RR — remove redundant state in received δ-groups**: instead of the
//!   "harmless-looking" inflation check (`d ⋢ xᵢ`, line 16 classic — "the
//!   source of most redundant state propagated in this synchronization
//!   algorithm"), extract `Δ(d, xᵢ)` — the part of `d` that *strictly
//!   inflates* the local state — and buffer only that.

use crdt_lattice::{ReplicaId, SizeModel, StateSize};
use crdt_types::Crdt;

use crate::buffer::{DeltaBuffer, Origin};
use crate::proto::{Measured, MemoryUsage, Params, Protocol};

/// Which of the paper's optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaConfig {
    /// Avoid back-propagation of δ-groups.
    pub bp: bool,
    /// Remove redundant state in received δ-groups.
    pub rr: bool,
}

impl DeltaConfig {
    /// Classic delta-based synchronization \[13\], \[14\].
    pub const CLASSIC: Self = DeltaConfig {
        bp: false,
        rr: false,
    };
    /// Classic + avoid back-propagation.
    pub const BP: Self = DeltaConfig {
        bp: true,
        rr: false,
    };
    /// Classic + remove redundant received state.
    pub const RR: Self = DeltaConfig {
        bp: false,
        rr: true,
    };
    /// Both optimizations (the paper's best variant).
    pub const BP_RR: Self = DeltaConfig { bp: true, rr: true };

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match (self.bp, self.rr) {
            (false, false) => "delta",
            (true, false) => "delta+BP",
            (false, true) => "delta+RR",
            (true, true) => "delta+BP+RR",
        }
    }
}

/// A δ-group on the wire. Pure payload: delta-based synchronization ships
/// no digests or vectors (its only metadata, a per-neighbor sequence
/// number, lives in the acked variant).
#[derive(Debug, Clone)]
pub struct DeltaMsg<C>(pub C);

impl<C: StateSize> Measured for DeltaMsg<C> {
    fn payload_elements(&self) -> u64 {
        self.0.count_elements()
    }

    fn payload_bytes(&self, model: &SizeModel) -> u64 {
        self.0.size_bytes(model)
    }

    fn metadata_bytes(&self, _model: &SizeModel) -> u64 {
        0
    }
}

/// Delta-based synchronization at one replica (Algorithm 1).
///
/// Generic over the optimization configuration at the *value* level so one
/// implementation serves all four variants; the four unit structs
/// ([`ClassicDelta`], [`BpDelta`], [`RrDelta`], [`BpRrDelta`]) pin the
/// configuration at the *type* level for use as `Protocol` instances.
#[derive(Debug, Clone)]
pub struct DeltaSync<C> {
    id: ReplicaId,
    cfg: DeltaConfig,
    state: C,
    buffer: DeltaBuffer<C>,
}

impl<C: Crdt> DeltaSync<C> {
    /// Create replica `id` with the given optimizations.
    pub fn with_config(id: ReplicaId, cfg: DeltaConfig) -> Self {
        DeltaSync {
            id,
            cfg,
            state: C::bottom(),
            buffer: DeltaBuffer::new(),
        }
    }

    /// The replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The active configuration.
    pub fn config(&self) -> DeltaConfig {
        self.cfg
    }

    /// Direct read access to the δ-buffer (used by tests and metrics).
    pub fn buffer(&self) -> &DeltaBuffer<C> {
        &self.buffer
    }

    /// The replica's current lattice state.
    pub fn state_ref(&self) -> &C {
        &self.state
    }

    /// `fun store(s, o)` — Algorithm 1 lines 18–20.
    fn store(&mut self, s: C, o: Origin) {
        self.state.join_assign(s.clone());
        self.buffer.push(s, o);
    }

    /// Local operation (lines 6–8): run the δ-mutator, store the delta.
    pub fn local_op(&mut self, op: &C::Op) {
        let delta = self.state.apply(op);
        if !delta.is_bottom() {
            // apply() already joined the delta into the state; only the
            // buffer half of store() remains.
            self.buffer.push(delta, Origin::Local);
        }
    }

    /// Synchronization step (lines 9–13).
    pub fn sync_step(&mut self, neighbors: &[ReplicaId], out: &mut Vec<(ReplicaId, DeltaMsg<C>)>) {
        for &j in neighbors {
            let d = self.buffer.group_for(j, self.cfg.bp);
            if !d.is_bottom() {
                out.push((j, DeltaMsg(d)));
            }
        }
        self.buffer.clear();
    }

    /// Receive handler (lines 14–17).
    pub fn receive(&mut self, from: ReplicaId, DeltaMsg(d): DeltaMsg<C>) {
        if self.cfg.rr {
            // RR: extract exactly what strictly inflates xᵢ.
            let d = d.delta(&self.state);
            if !d.is_bottom() {
                self.store(d, Origin::From(from));
            }
        } else {
            // Classic: the inflation check "appears to be harmless, but it
            // is in fact the source of most redundant state propagated".
            if d.inflates(&self.state) {
                self.store(d, Origin::From(from));
            }
        }
    }

    /// Bootstrap from a peer snapshot: the peer's full state enters
    /// through the ordinary receive path, so RR (when enabled) extracts
    /// only the novelty and the absorbed part is re-buffered (tagged with
    /// the peer's id, so BP keeps it from bouncing straight back) for
    /// onward propagation to this replica's other neighbors.
    pub fn bootstrap_from_peer(&mut self, source: &Self) {
        self.receive(source.id, DeltaMsg(source.state.clone()));
    }

    /// Memory snapshot: CRDT state + δ-buffer contents.
    pub fn memory_usage(&self, model: &SizeModel) -> MemoryUsage {
        MemoryUsage {
            crdt_elements: self.state.count_elements(),
            crdt_bytes: self.state.size_bytes(model),
            meta_elements: self.buffer.elements(),
            meta_bytes: self.buffer.bytes(model),
        }
    }
}

macro_rules! delta_protocol {
    ($(#[$doc:meta])* $name:ident, $cfg:expr, $label:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<C>(pub DeltaSync<C>);

        impl<C: Crdt> Protocol<C> for $name<C> {
            type Msg = DeltaMsg<C>;

            const NAME: &'static str = $label;

            fn new(id: ReplicaId, _params: &Params) -> Self {
                $name(DeltaSync::with_config(id, $cfg))
            }

            fn on_op(&mut self, op: &C::Op) {
                self.0.local_op(op);
            }

            fn on_sync(
                &mut self,
                neighbors: &[ReplicaId],
                out: &mut Vec<(ReplicaId, Self::Msg)>,
            ) {
                self.0.sync_step(neighbors, out);
            }

            fn on_msg(
                &mut self,
                from: ReplicaId,
                msg: Self::Msg,
                _out: &mut Vec<(ReplicaId, Self::Msg)>,
            ) {
                self.0.receive(from, msg);
            }

            fn state(&self) -> &C {
                &self.0.state
            }

            fn memory(&self, model: &SizeModel) -> MemoryUsage {
                self.0.memory_usage(model)
            }

            fn bootstrap(&mut self, source: &Self) {
                self.0.bootstrap_from_peer(&source.0);
            }
        }
    };
}

delta_protocol!(
    /// Classic delta-based synchronization \[13\], \[14\] — no BP, no RR.
    ClassicDelta,
    DeltaConfig::CLASSIC,
    "delta"
);
delta_protocol!(
    /// Delta-based synchronization with the BP optimization.
    BpDelta,
    DeltaConfig::BP,
    "delta+BP"
);
delta_protocol!(
    /// Delta-based synchronization with the RR optimization.
    RrDelta,
    DeltaConfig::RR,
    "delta+RR"
);
delta_protocol!(
    /// Delta-based synchronization with both BP and RR (the paper's
    /// contribution).
    BpRrDelta,
    DeltaConfig::BP_RR,
    "delta+BP+RR"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crdt_types::{GSet, GSetOp};

    type P = DeltaSync<GSet<&'static str>>;

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);
    const C_: ReplicaId = ReplicaId(2);
    const D: ReplicaId = ReplicaId(3);

    fn sent_elements(msgs: &[(ReplicaId, DeltaMsg<GSet<&'static str>>)]) -> u64 {
        msgs.iter().map(|(_, m)| m.payload_elements()).sum()
    }

    /// Reproduce Fig. 4: two replicas, classic vs BP.
    ///
    /// At •2, classic A sends {a, b} back to B even though {b} came from B;
    /// with BP, A sends only {a}.
    #[test]
    fn figure4_bp_removes_back_propagation() {
        for (cfg, expect_at_2) in [(DeltaConfig::CLASSIC, 2), (DeltaConfig::BP, 1)] {
            let mut a = P::with_config(A, cfg);
            let mut b = P::with_config(B, cfg);
            a.local_op(&GSetOp::Add("a"));
            b.local_op(&GSetOp::Add("b"));

            // •1: B → A {b}.
            let mut out = Vec::new();
            b.sync_step(&[A], &mut out);
            assert_eq!(sent_elements(&out), 1);
            for (_, m) in out.drain(..) {
                a.receive(B, m);
            }

            // •2: A → B. Classic sends {a,b}; BP sends {a}.
            a.sync_step(&[B], &mut out);
            assert_eq!(sent_elements(&out), expect_at_2, "cfg = {cfg:?}");
            for (_, m) in out.drain(..) {
                b.receive(A, m);
            }
            assert_eq!(a.state, b.state);
            assert_eq!(a.state.len(), 2);
        }
    }

    /// Reproduce Fig. 5: four replicas in a line A–C–D with B feeding A
    /// and C; RR prevents C from re-forwarding the already-seen {b} to D.
    #[test]
    fn figure5_rr_removes_redundant_state() {
        for (cfg, expect_at_7) in [(DeltaConfig::BP, 2), (DeltaConfig::BP_RR, 1)] {
            let mut a = P::with_config(A, cfg);
            let mut b = P::with_config(B, cfg);
            let mut c = P::with_config(C_, cfg);
            let mut d = P::with_config(D, cfg);

            a.local_op(&GSetOp::Add("a"));
            b.local_op(&GSetOp::Add("b"));

            // •4: B → {A, C} with {b}.
            let mut out = Vec::new();
            b.sync_step(&[A, C_], &mut out);
            for (to, m) in out.drain(..) {
                match to {
                    A => a.receive(B, m),
                    C_ => c.receive(B, m),
                    _ => unreachable!(),
                }
            }

            // •5: C → D with {b}.
            c.sync_step(&[D], &mut out);
            assert_eq!(sent_elements(&out), 1);
            for (_, m) in out.drain(..) {
                d.receive(C_, m);
            }

            // •6: A → C with {a, b} (A's mutation joined with B's delta).
            a.sync_step(&[C_], &mut out);
            assert_eq!(sent_elements(&out), 2);
            for (_, m) in out.drain(..) {
                c.receive(A, m);
            }

            // •7: C → D. Without RR, C forwards the whole received δ-group
            // {a, b}; with RR it extracts only the novel {a}.
            c.sync_step(&[D], &mut out);
            assert_eq!(sent_elements(&out), expect_at_7, "cfg = {cfg:?}");
            for (_, m) in out.drain(..) {
                d.receive(C_, m);
            }
            assert_eq!(d.state.len(), 2);
        }
    }

    #[test]
    fn classic_drops_non_inflating_groups() {
        let mut a = P::with_config(A, DeltaConfig::CLASSIC);
        a.local_op(&GSetOp::Add("x"));
        // Already-known state: the inflation check rejects it, so the
        // buffer holds only the local delta.
        a.receive(B, DeltaMsg(GSet::from_iter(["x"])));
        assert_eq!(a.buffer().len(), 1);
    }

    #[test]
    fn rr_extracts_only_novelty() {
        let mut a = P::with_config(A, DeltaConfig::BP_RR);
        a.local_op(&GSetOp::Add("x"));
        a.receive(B, DeltaMsg(GSet::from_iter(["x", "y"])));
        // Buffer: local {x} + extracted {y} (not {x, y}).
        assert_eq!(a.buffer().elements(), 2);
        assert_eq!(a.state.len(), 2);
    }

    #[test]
    fn sync_clears_buffer() {
        let mut a = P::with_config(A, DeltaConfig::BP_RR);
        a.local_op(&GSetOp::Add("x"));
        let mut out = Vec::new();
        a.sync_step(&[B], &mut out);
        assert_eq!(out.len(), 1);
        assert!(a.buffer().is_empty());
        // Nothing new: next sync sends nothing.
        a.sync_step(&[B], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn redundant_local_op_buffers_nothing() {
        let mut a = P::with_config(A, DeltaConfig::CLASSIC);
        a.local_op(&GSetOp::Add("x"));
        a.local_op(&GSetOp::Add("x"));
        // addδ returned ⊥ the second time; the buffer must not hold ⊥.
        assert_eq!(a.buffer().len(), 1);
    }

    #[test]
    fn memory_counts_state_and_buffer() {
        let model = SizeModel::compact();
        let mut a = P::with_config(A, DeltaConfig::CLASSIC);
        a.local_op(&GSetOp::Add("ab"));
        a.receive(B, DeltaMsg(GSet::from_iter(["cd", "ab"])));
        let m = a.memory_usage(&model);
        assert_eq!(m.crdt_elements, 2);
        // Classic buffers the *whole* received group: 1 local + 2 received.
        assert_eq!(m.meta_elements, 3);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(DeltaConfig::CLASSIC.label(), "delta");
        assert_eq!(DeltaConfig::BP.label(), "delta+BP");
        assert_eq!(DeltaConfig::RR.label(), "delta+RR");
        assert_eq!(DeltaConfig::BP_RR.label(), "delta+BP+RR");
    }
}
