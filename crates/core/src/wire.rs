//! Wire encodings for protocol messages.
//!
//! Every message type whose CRDT payload implements
//! [`crdt_lattice::WireEncode`] is itself encodable, so a deployment can
//! put these protocols on a real byte transport with no serde dependency.
//! The end-to-end test below runs a complete BP+RR exchange through
//! `Vec<u8>` frames — the full path a production system would use.

use crdt_lattice::{CodecError, Dot, VClock, WireEncode};
use crdt_types::Crdt;

use crate::acked::AckedMsg;
use crate::delta::DeltaMsg;
use crate::deltacrdt::DeltaCrdtMsg;
use crate::opbased::{OpMsg, TaggedOp};
use crate::scuttlebutt::{Knowledge, SbMsg};

impl<C: WireEncode> WireEncode for DeltaMsg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(DeltaMsg(C::decode(input)?))
    }
}

impl<C: WireEncode> WireEncode for DeltaCrdtMsg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeltaCrdtMsg::Delta { upto, delta } => {
                out.push(0);
                upto.encode(out);
                delta.encode(out);
            }
            DeltaCrdtMsg::Full { upto, state } => {
                out.push(1);
                upto.encode(out);
                state.encode(out);
            }
            DeltaCrdtMsg::Ack { upto } => {
                out.push(2);
                upto.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(DeltaCrdtMsg::Delta {
                upto: u64::decode(input)?,
                delta: C::decode(input)?,
            }),
            1 => Ok(DeltaCrdtMsg::Full {
                upto: u64::decode(input)?,
                state: C::decode(input)?,
            }),
            2 => Ok(DeltaCrdtMsg::Ack {
                upto: u64::decode(input)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<C: WireEncode> WireEncode for SbMsg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SbMsg::Digest { clock, knowledge } => {
                out.push(0);
                clock.encode(out);
                knowledge.encode(out);
            }
            SbMsg::Reply {
                deltas,
                clock,
                knowledge,
            } => {
                out.push(1);
                deltas.encode(out);
                clock.encode(out);
                knowledge.encode(out);
            }
            SbMsg::Final { deltas, knowledge } => {
                out.push(2);
                deltas.encode(out);
                knowledge.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(SbMsg::Digest {
                clock: VClock::decode(input)?,
                knowledge: Option::<Knowledge>::decode(input)?,
            }),
            1 => Ok(SbMsg::Reply {
                deltas: Vec::<(Dot, C)>::decode(input)?,
                clock: VClock::decode(input)?,
                knowledge: Option::<Knowledge>::decode(input)?,
            }),
            2 => Ok(SbMsg::Final {
                deltas: Vec::<(Dot, C)>::decode(input)?,
                knowledge: Option::<Knowledge>::decode(input)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<C: WireEncode> WireEncode for AckedMsg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AckedMsg::Delta { group, seq } => {
                out.push(0);
                group.encode(out);
                seq.encode(out);
            }
            AckedMsg::Ack { seq } => {
                out.push(1);
                seq.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        match tag {
            0 => Ok(AckedMsg::Delta {
                group: C::decode(input)?,
                seq: u64::decode(input)?,
            }),
            1 => Ok(AckedMsg::Ack {
                seq: u64::decode(input)?,
            }),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

impl<O: WireEncode> WireEncode for TaggedOp<O> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dot.encode(out);
        self.deps.encode(out);
        self.op.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(TaggedOp {
            dot: Dot::decode(input)?,
            deps: VClock::decode(input)?,
            op: O::decode(input)?,
        })
    }
}

impl<C: Crdt> WireEncode for OpMsg<C>
where
    C::Op: WireEncode,
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.ops.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(OpMsg::new(Vec::<TaggedOp<C::Op>>::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{BpRrDelta, DeltaConfig, DeltaSync};
    use crate::proto::{Measured, Params, Protocol};
    use crdt_lattice::{ReplicaId, SizeModel};
    use crdt_types::{GCounter, GCounterOp, GSet, GSetOp};

    const A: ReplicaId = ReplicaId(0);
    const B: ReplicaId = ReplicaId(1);

    #[test]
    fn delta_msg_roundtrips() {
        let msg = DeltaMsg(GSet::from_iter(["x".to_string(), "y".to_string()]));
        let bytes = msg.to_bytes();
        let back = DeltaMsg::<GSet<String>>::from_bytes(&bytes).unwrap();
        assert_eq!(back.0, msg.0);
    }

    #[test]
    fn deltacrdt_msg_variants_roundtrip() {
        type M = DeltaCrdtMsg<GSet<u64>>;
        for msg in [
            M::Delta {
                upto: 7,
                delta: GSet::from_iter([1, 2]),
            },
            M::Full {
                upto: 9,
                state: GSet::from_iter([1, 2, 3]),
            },
            M::Ack { upto: 3 },
        ] {
            let bytes = msg.to_bytes();
            let back = M::from_bytes(&bytes).unwrap();
            match (&msg, &back) {
                (
                    M::Delta {
                        upto: u1,
                        delta: d1,
                    },
                    M::Delta {
                        upto: u2,
                        delta: d2,
                    },
                ) => {
                    assert_eq!(u1, u2);
                    assert_eq!(d1, d2);
                }
                (
                    M::Full {
                        upto: u1,
                        state: s1,
                    },
                    M::Full {
                        upto: u2,
                        state: s2,
                    },
                ) => {
                    assert_eq!(u1, u2);
                    assert_eq!(s1, s2);
                }
                (M::Ack { upto: u1 }, M::Ack { upto: u2 }) => assert_eq!(u1, u2),
                other => panic!("variant changed across the wire: {other:?}"),
            }
        }
    }

    /// A complete Fig.-4-style BP+RR exchange where every message crosses
    /// a byte channel: encode → Vec<u8> → decode — the full production
    /// path, no in-process shortcuts.
    #[test]
    fn bp_rr_exchange_over_byte_frames() {
        let params = Params::new(2);
        let mut a: BpRrDelta<GSet<String>> = Protocol::new(A, &params);
        let mut b: BpRrDelta<GSet<String>> = Protocol::new(B, &params);

        a.on_op(&GSetOp::Add("a".to_string()));
        b.on_op(&GSetOp::Add("b".to_string()));

        // Frame every message through bytes, both directions, twice
        // (second round drains the forwarded buffers).
        fn framed_step(
            sender: &mut BpRrDelta<GSet<String>>,
            sender_id: ReplicaId,
            receiver: &mut BpRrDelta<GSet<String>>,
            to: ReplicaId,
        ) {
            let mut out = Vec::new();
            sender.on_sync(&[to], &mut out);
            for (_, msg) in out {
                let frame: Vec<u8> = msg.to_bytes();
                let decoded = DeltaMsg::<GSet<String>>::from_bytes(&frame).unwrap();
                receiver.on_msg(sender_id, decoded, &mut Vec::new());
            }
        }
        for _ in 0..2 {
            framed_step(&mut a, A, &mut b, B);
            framed_step(&mut b, B, &mut a, A);
        }
        assert_eq!(a.state(), b.state());
        assert_eq!(a.state().len(), 2);
    }

    /// The framed size equals what `Measured` predicts under a varint-
    /// aware reading: frames never exceed the analytic model.
    #[test]
    fn framed_size_within_model() {
        let model = SizeModel::compact();
        let mut sync: DeltaSync<GCounter> = DeltaSync::with_config(A, DeltaConfig::BP_RR);
        for _ in 0..10 {
            sync.local_op(&GCounterOp::Inc(A));
            sync.local_op(&GCounterOp::Inc(B));
        }
        let mut out = Vec::new();
        sync.sync_step(&[B], &mut out);
        let (_, msg) = out.pop().expect("one δ-group");
        let frame = msg.to_bytes();
        assert!(
            (frame.len() as u64) <= msg.payload_bytes(&model) + 9,
            "frame {} exceeds modeled {}",
            frame.len(),
            msg.payload_bytes(&model)
        );
    }
}
