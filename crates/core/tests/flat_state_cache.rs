//! Engine-level encode-cache and hash-cache battery.
//!
//! [`crdt_sync::SyncEngine::state_hash`] memoizes the `Debug`-walk hash
//! against the flat state's mutation epoch, and the state itself caches
//! its wire frame. A mutation through **any** erased entry point —
//! `on_op`, `on_msg` (merge), `compact()`, `reset()`, `bootstrap_from()`
//! — must leave both caches truthful: the served hash always equals a
//! from-scratch [`state_hash_of`] of the live state, and the served
//! frame always equals a structural encode. Runs against every
//! [`ProtocolKind`].

use crdt_lattice::{ReplicaId, WireEncode};
use crdt_sync::{build_engine, state_hash_of, OpBytes, Params, ProtocolKind, SyncEngine};
use crdt_types::{AWSet, AWSetOp};

type Set = AWSet<u64>;

fn engines(kind: ProtocolKind) -> Vec<Box<dyn SyncEngine>> {
    let params = Params::new(3);
    (0..3)
        .map(|i| build_engine::<Set>(kind, ReplicaId(i), &params))
        .collect()
}

/// The two cache invariants, checked against ground truth recomputed
/// from the live state.
fn assert_caches_truthful(engine: &dyn SyncEngine, what: &str) {
    let state = engine
        .state_any()
        .downcast_ref::<Set>()
        .expect("engine holds an AWSet<u64>");
    assert_eq!(
        engine.state_hash(),
        state_hash_of(state),
        "{what}: state_hash served a stale memo"
    );
    let bytes = state.to_bytes();
    assert_eq!(
        state.encode_frame().as_ref(),
        bytes.as_slice(),
        "{what}: cached frame diverged from to_bytes"
    );
    let decoded = Set::from_bytes(&bytes).expect("state bytes decode");
    assert_eq!(
        &decoded, state,
        "{what}: served bytes describe a different state"
    );
}

fn neighbors(ids: &[ReplicaId], me: usize) -> Vec<ReplicaId> {
    ids.iter().copied().filter(|r| r.index() != me).collect()
}

/// Drive a full gossip round (sync everyone, deliver everything incl.
/// replies), checking the caches after every message.
fn gossip_round(nodes: &mut [Box<dyn SyncEngine>], ids: &[ReplicaId]) {
    let mut inflight = Vec::new();
    for (i, node) in nodes.iter_mut().enumerate() {
        inflight.extend(node.on_sync(&neighbors(ids, i)));
        assert_caches_truthful(node.as_ref(), "after on_sync");
    }
    while let Some(env) = inflight.pop() {
        let to = env.to.index();
        let replies = nodes[to].on_msg(env).expect("protocol kind matches");
        assert_caches_truthful(nodes[to].as_ref(), "after on_msg");
        inflight.extend(replies);
    }
}

fn converge(nodes: &mut [Box<dyn SyncEngine>], ids: &[ReplicaId]) {
    for _ in 0..24 {
        gossip_round(nodes, ids);
        if nodes
            .windows(2)
            .all(|w| w[0].state_hash() == w[1].state_hash())
        {
            break;
        }
    }
}

/// Exercise every erased entry point under one protocol, asserting both
/// caches after each.
fn run_battery(kind: ProtocolKind) {
    let ids = [ReplicaId(0), ReplicaId(1), ReplicaId(2)];
    let mut nodes = engines(kind);

    // Fresh engines: hash of bottom, cached or not, must be truthful.
    for n in &nodes {
        assert_caches_truthful(n.as_ref(), "fresh engine");
    }
    let fresh_hash = nodes[0].state_hash();

    // on_op mutates; the memoized hash must follow.
    for (i, node) in nodes.iter_mut().enumerate() {
        let before = node.state_hash();
        node.on_op(&OpBytes::encode(&AWSetOp::Add(ids[i], i as u64)))
            .expect("op decodes");
        assert_caches_truthful(node.as_ref(), "after on_op");
        assert_ne!(node.state_hash(), before, "on_op left a stale hash");
    }

    // on_msg merges remote deltas (checked inside the round), plus a
    // remove racing the gossip.
    gossip_round(&mut nodes, &ids);
    nodes[1]
        .on_op(&OpBytes::encode(&AWSetOp::<u64>::Remove(0)))
        .expect("op decodes");
    assert_caches_truthful(nodes[1].as_ref(), "after remove op");
    converge(&mut nodes, &ids);
    for n in &nodes {
        assert_caches_truthful(n.as_ref(), "after convergence");
    }
    assert_eq!(nodes[0].state_hash(), nodes[1].state_hash());
    assert_eq!(nodes[1].state_hash(), nodes[2].state_hash());

    // compact() prunes protocol metadata, never lattice state: hash must
    // stay truthful (and unchanged).
    let before = nodes[0].state_hash();
    let _ = nodes[0].compact();
    assert_caches_truthful(nodes[0].as_ref(), "after compact");
    assert_eq!(nodes[0].state_hash(), before, "compact changed the state");

    // reset() returns to bottom: serving the pre-reset hash would be the
    // classic stale-cache bug.
    let pre_reset = nodes[2].state_hash();
    nodes[2].reset();
    assert_caches_truthful(nodes[2].as_ref(), "after reset");
    assert_eq!(
        nodes[2].state_hash(),
        fresh_hash,
        "reset engine must hash like a fresh one"
    );
    if pre_reset != fresh_hash {
        assert_ne!(nodes[2].state_hash(), pre_reset, "reset served stale hash");
    }

    // bootstrap_from() adopts the source's state wholesale.
    let (left, right) = nodes.split_at_mut(2);
    right[0]
        .bootstrap_from(left[0].as_ref())
        .expect("same protocol and CRDT");
    assert_caches_truthful(right[0].as_ref(), "after bootstrap_from");
    assert_eq!(
        right[0].state_hash(),
        left[0].state_hash(),
        "bootstrap target must hash like its source"
    );

    // set_system_size is metadata-only but goes through the same erased
    // surface; caches must survive it too.
    nodes[0].set_system_size(4);
    assert_caches_truthful(nodes[0].as_ref(), "after set_system_size");
}

macro_rules! cache_battery {
    ($name:ident, $kind:expr) => {
        #[test]
        fn $name() {
            run_battery($kind);
        }
    };
}

cache_battery!(state_sync_caches, ProtocolKind::State);
cache_battery!(classic_caches, ProtocolKind::Classic);
cache_battery!(bp_caches, ProtocolKind::Bp);
cache_battery!(rr_caches, ProtocolKind::Rr);
cache_battery!(bp_rr_caches, ProtocolKind::BpRr);
cache_battery!(scuttlebutt_caches, ProtocolKind::Scuttlebutt);
cache_battery!(scuttlebutt_gc_caches, ProtocolKind::ScuttlebuttGc);
cache_battery!(op_based_caches, ProtocolKind::OpBased);
cache_battery!(acked_caches, ProtocolKind::Acked);

/// The hash memo is an optimization, not a semantic: polling the hash
/// between every mutation must observe exactly the from-scratch values.
#[test]
fn hash_poll_interleaved_with_mutation() {
    let params = Params::new(2);
    let mut e = build_engine::<Set>(ProtocolKind::BpRr, ReplicaId(0), &params);
    for i in 0..32u64 {
        // Poll twice (second hit is the memoized path)...
        let h1 = e.state_hash();
        assert_eq!(h1, e.state_hash());
        // ...mutate, poll again: must move to the fresh truth.
        e.on_op(&OpBytes::encode(&AWSetOp::Add(ReplicaId(0), i)))
            .expect("op decodes");
        let state = e.state_any().downcast_ref::<Set>().unwrap();
        assert_eq!(e.state_hash(), state_hash_of(state));
    }
}
