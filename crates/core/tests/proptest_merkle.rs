//! Property tests of the Merkle keyspace tree (`crdt_sync::merkle`).
//!
//! Two invariants carry the anti-entropy subsystem:
//!
//! 1. **Incrementality is invisible.** A tree maintained by
//!    `touch`/`flush` across an arbitrary interleaving of inserts,
//!    overwrites, and removals is indistinguishable — root, every
//!    level, every bucket — from one built from scratch over the final
//!    key→hash map. If this ever breaks, two honest replicas could
//!    disagree about identical keyspaces and repair would ship data
//!    forever (or worse, never).
//! 2. **The descent finds exactly the diverged keys.** For any two
//!    keyspaces, `diff_keys` returns precisely the keys whose hash
//!    differs or that only one side holds — no false negatives (missed
//!    divergence = permanent inconsistency) and no false positives
//!    beyond what a shared leaf bucket forces.

use std::collections::BTreeMap;

use crdt_sync::{diff_keys, MerkleTree, DEFAULT_MERKLE_DEPTH};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// One mutation against the keyspace.
#[derive(Debug, Clone)]
enum Mutation {
    /// Insert or overwrite `key` with a new hash value.
    Put(u16, u64),
    /// Remove `key` (a no-op if absent — the flush callback just keeps
    /// returning `None`).
    Del(u16),
    /// Flush pending dirty keys mid-sequence, so the test covers
    /// interleaved flush schedules, not only one big final flush.
    Flush,
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        5 => (0u16..64, any::<u64>()).prop_map(|(k, h)| Mutation::Put(k, h)),
        2 => (0u16..64).prop_map(Mutation::Del),
        1 => Just(Mutation::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Invariant 1: incremental maintenance == scratch build, for every
    /// mutation sequence, every flush interleaving, and every depth.
    #[test]
    fn incremental_tree_matches_scratch_build(
        muts in pvec(mutation_strategy(), 1..80),
        depth in 1u8..5,
    ) {
        let mut keyspace: BTreeMap<u16, u64> = BTreeMap::new();
        let mut tree: MerkleTree<u16> = MerkleTree::new(depth);
        for m in &muts {
            match m {
                Mutation::Put(k, h) => {
                    keyspace.insert(*k, *h);
                    tree.touch(*k);
                }
                Mutation::Del(k) => {
                    keyspace.remove(k);
                    tree.touch(*k);
                }
                Mutation::Flush => {
                    tree.flush(|k| keyspace.get(k).copied());
                }
            }
        }
        tree.flush(|k| keyspace.get(k).copied());
        let scratch = MerkleTree::build(depth, keyspace.iter().map(|(k, h)| (*k, *h)));
        // Epochs differ (they count flushes), so compare the content:
        // root, then the full diff — which must be empty.
        prop_assert_eq!(tree.root(), scratch.root());
        prop_assert_eq!(tree.len(), keyspace.len());
        let (diverged, _) = diff_keys(&tree, &scratch);
        prop_assert!(diverged.is_empty(), "incremental and scratch trees diverge: {diverged:?}");
    }

    /// Invariant 2: `diff_keys` over two arbitrary keyspaces reports a
    /// superset of the true symmetric difference (no false negatives),
    /// and every reported key shares a leaf bucket with a truly
    /// diverged key (no spurious buckets).
    #[test]
    fn descent_localizes_exactly_the_diverged_buckets(
        a in proptest::collection::btree_map(0u16..96, any::<u64>(), 0..48),
        b in proptest::collection::btree_map(0u16..96, any::<u64>(), 0..48),
    ) {
        let ta = MerkleTree::build(DEFAULT_MERKLE_DEPTH, a.iter().map(|(k, h)| (*k, *h)));
        let tb = MerkleTree::build(DEFAULT_MERKLE_DEPTH, b.iter().map(|(k, h)| (*k, *h)));
        let (found, stats) = diff_keys(&ta, &tb);
        let truly: std::collections::BTreeSet<u16> = a
            .iter()
            .filter(|(k, h)| b.get(k) != Some(h))
            .map(|(k, _)| *k)
            .chain(b.keys().filter(|k| !a.contains_key(k)).copied())
            .collect();
        for k in &truly {
            prop_assert!(found.contains(k), "missed diverged key {k}");
        }
        prop_assert_eq!(
            &found, &truly,
            "leaf exchange compares per-key hashes, so the diff is exact"
        );
        if truly.is_empty() {
            prop_assert_eq!(stats.leaf_bytes, 0, "identical trees end at the root digest");
        }
    }
}
