//! Decode robustness: random truncations, bit flips and length-field
//! mutations of valid wire frames must decode to `Err` (or, for benign
//! flips, to another valid value) — **never panic**, and never trust a
//! wire-supplied length for a proportional preallocation.
//!
//! Covers the three frame layers a byte transport ships: bare protocol
//! messages, [`WireEnvelope`] frames, and [`BatchEnvelope`] frames —
//! through all three decode paths (copying `from_bytes`, zero-copy
//! `decode_shared`, borrowed [`BatchEntries`] / [`WireEnvelopeRef`]).
//!
//! The companion allocation-budget check (corrupt input never allocates
//! more than a small multiple of its length) lives in
//! `tests/corrupt_frame_alloc.rs`, which installs the counting
//! allocator; CI runs both with a raised `PROPTEST_CASES`.

use crdt_lattice::{Lattice, ReplicaId, WireEncode};
use crdt_sync::{
    AckedMsg, BatchEntries, BatchEnvelope, Bytes, ChildList, DeltaMsg, DivergentChildren,
    LeafRepair, OpMsg, ProtocolKind, RootDigest, SbMsg, WireAccounting, WireEnvelope,
    WireEnvelopeRef,
};
use crdt_types::{AWSet, CausalContext, DWFlag, GSet, ORSetMap};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Deterministically corrupt `frame` from a mutation seed: truncate,
/// flip a bit, or stamp a maximal varint over a random position (the
/// length-field attack).
fn corrupt(mut frame: Vec<u8>, mutation: u64) -> Vec<u8> {
    if frame.is_empty() {
        return vec![(mutation & 0xff) as u8];
    }
    let pos = (mutation as usize / 8) % frame.len();
    match mutation % 4 {
        0 => frame.truncate(pos),
        1 => frame[pos] ^= 1 << (mutation % 8),
        2 => {
            // Overwrite with a huge LEB128 varint (≈ 2^63): whatever
            // field lands here now claims an absurd length or value.
            for (i, b) in [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]
                .into_iter()
                .enumerate()
            {
                if pos + i < frame.len() {
                    frame[pos + i] = b;
                } else {
                    frame.push(b);
                }
            }
        }
        _ => {
            // Append garbage: exercises the trailing-bytes check.
            frame.extend_from_slice(&[0xaa, 0x55, (mutation & 0xff) as u8]);
        }
    }
    frame
}

fn envelope(elems: &[u64], kind: ProtocolKind) -> WireEnvelope {
    let payload = DeltaMsg(GSet::from_iter(elems.iter().copied())).to_bytes();
    WireEnvelope {
        from: ReplicaId(1),
        to: ReplicaId(2),
        kind,
        accounting: WireAccounting {
            payload_elements: elems.len() as u64,
            payload_bytes: 8 * elems.len() as u64,
            metadata_bytes: 0,
            encoded_bytes: payload.len() as u64,
        },
        payload: payload.into(),
    }
}

/// Every decode path over one corrupted frame; the assertion is simply
/// "no panic, and errors are errors" (a benign flip may still decode).
fn decode_all_paths(bytes: &[u8]) {
    let _ = WireEnvelope::from_bytes(bytes);
    let mut cursor = bytes;
    let _ = WireEnvelopeRef::decode(&mut cursor);
    let frame = Bytes::copy_from_slice(bytes);
    let mut cursor: &[u8] = &frame;
    let _ = WireEnvelope::decode_shared(&frame, &mut cursor);

    let _ = BatchEnvelope::<String>::from_bytes(bytes);
    let _ = BatchEnvelope::<u32>::decode_shared(&frame);
    let mut cursor = bytes;
    if let Ok(entries) = BatchEntries::<String>::parse(&mut cursor) {
        for item in entries {
            let _ = item;
        }
    }

    let _ = DeltaMsg::<GSet<String>>::from_bytes(bytes);
    let _ = SbMsg::<GSet<u64>>::from_bytes(bytes);
    let _ = AckedMsg::<GSet<u64>>::from_bytes(bytes);
    let _ = OpMsg::<GSet<u64>>::from_bytes(bytes);

    // Merkle repair-descent frames.
    let _ = RootDigest::from_bytes(bytes);
    let _ = ChildList::from_bytes(bytes);
    let _ = DivergentChildren::from_bytes(bytes);
    let _ = LeafRepair::<u64>::from_bytes(bytes);
    let _ = LeafRepair::<String>::from_bytes(bytes);

    // Flat causal states: the run-length context plus each dot-store
    // shape (sorted dot vector, dot-function, nested dot-map).
    let _ = CausalContext::from_bytes(bytes);
    let _ = AWSet::<u64>::from_bytes(bytes);
    let _ = DWFlag::from_bytes(bytes);
    let _ = ORSetMap::<u8, u16>::from_bytes(bytes);
}

/// Two representative flat causal frames: an [`AWSet`] whose context
/// holds cloud dots (deltas joined out of causal order leave non-prefix
/// runs), and a nested [`ORSetMap`] with live and removed entries.
fn causal_frames() -> (Vec<u8>, Vec<u8>) {
    let mut producer = AWSet::<u64>::new();
    let deltas: Vec<_> = (0..6).map(|i| producer.add(ReplicaId(0), i)).collect();
    let mut gappy = AWSet::<u64>::new();
    gappy.join_assign(deltas[4].clone());
    gappy.join_assign(deltas[2].clone());
    gappy.join_assign(deltas[0].clone());

    let mut map = ORSetMap::<u8, u16>::new();
    let _ = map.add(ReplicaId(0), 1, 10);
    let _ = map.add(ReplicaId(1), 1, 20);
    let _ = map.add(ReplicaId(1), 2, 30);
    let _ = map.remove_elem(&1, &10);
    (gappy.to_bytes(), map.to_bytes())
}

/// A representative descent exchange: a two-node frontier frame plus a
/// leaf-repair frame over the same prefixes.
fn merkle_frames(entries: &[(u64, u64)]) -> (Vec<u8>, Vec<u8>) {
    let children = DivergentChildren {
        nodes: vec![
            ChildList {
                level: 0,
                prefix: 0,
                children: entries
                    .iter()
                    .take(16)
                    .enumerate()
                    .map(|(i, (_, h))| (i as u8, *h))
                    .collect(),
            },
            ChildList {
                level: 1,
                prefix: 3,
                children: vec![(0, 1), (7, 2), (15, 3)],
            },
        ],
    };
    let leaves = LeafRepair {
        leaves: vec![(0x37, entries.to_vec()), (0x38, Vec::new())],
    };
    (children.to_bytes(), leaves.to_bytes())
}

proptest! {
    #[test]
    fn corrupted_envelope_frames_never_panic(
        elems in pvec(any::<u64>(), 0..12),
        mutation in any::<u64>(),
    ) {
        let frame = envelope(&elems, ProtocolKind::BpRr).to_bytes();
        decode_all_paths(&corrupt(frame, mutation));
    }

    #[test]
    fn corrupted_batch_frames_never_panic(
        keys in pvec(".{0,6}", 1..6),
        elems in pvec(any::<u64>(), 0..8),
        mutation in any::<u64>(),
    ) {
        let mut batch: BatchEnvelope<String> = BatchEnvelope::new();
        for key in keys {
            batch.push(key.to_string(), envelope(&elems, ProtocolKind::Scuttlebutt));
        }
        decode_all_paths(&corrupt(batch.to_bytes(), mutation));
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in pvec(any::<u8>(), 0..80)) {
        decode_all_paths(&bytes);
    }

    #[test]
    fn truncations_always_error(
        elems in pvec(any::<u64>(), 1..10),
        cut in any::<u64>(),
    ) {
        // Unlike bit flips, a strict prefix can never decode to a
        // complete envelope: every truncation point must error.
        let frame = envelope(&elems, ProtocolKind::Classic).to_bytes();
        let cut = (cut as usize) % frame.len();
        prop_assert!(WireEnvelope::from_bytes(&frame[..cut]).is_err());
    }

    #[test]
    fn corrupted_merkle_frames_never_panic(
        entries in pvec((any::<u64>(), any::<u64>()), 0..12),
        mutation in any::<u64>(),
    ) {
        let (children, leaves) = merkle_frames(&entries);
        decode_all_paths(&corrupt(children, mutation));
        decode_all_paths(&corrupt(leaves, mutation));
        let root = RootDigest { epoch: mutation, depth: 3, root: mutation.rotate_left(17) };
        decode_all_paths(&corrupt(root.to_bytes(), mutation));
    }

    /// A strict prefix of a descent frame must always error — the
    /// multi-round socket descent reads these mid-handshake, where a
    /// half-frame accepted as complete would silently mis-localize
    /// divergence.
    #[test]
    fn merkle_truncations_always_error(
        entries in pvec((any::<u64>(), any::<u64>()), 1..10),
        cut in any::<u64>(),
    ) {
        let (children, leaves) = merkle_frames(&entries);
        let cut_at = |frame: &[u8]| (cut as usize) % frame.len();
        prop_assert!(DivergentChildren::from_bytes(&children[..cut_at(&children)]).is_err());
        prop_assert!(LeafRepair::<u64>::from_bytes(&leaves[..cut_at(&leaves)]).is_err());
    }

    /// Hostile structural claims: child indexes ≥ the fanout,
    /// non-increasing child order, and depth 0 / past `MAX_MERKLE_DEPTH`
    /// are all rejected — whatever the rest of the frame says.
    #[test]
    fn hostile_merkle_structure_is_rejected(
        idx in 16u8..=255,
        depth in prop_oneof![Just(0u8), 17u8..=255],
        h in any::<u64>(),
    ) {
        let frame = ChildList { level: 0, prefix: 0, children: vec![(idx, h)] }.to_bytes();
        prop_assert!(ChildList::from_bytes(&frame).is_err(), "child index {idx} ≥ fanout");
        let dup = ChildList { level: 0, prefix: 0, children: vec![(3, h), (3, h)] }.to_bytes();
        prop_assert!(ChildList::from_bytes(&dup).is_err(), "non-increasing child order");
        let root = RootDigest { epoch: 1, depth, root: h }.to_bytes();
        prop_assert!(RootDigest::from_bytes(&root).is_err(), "depth {depth} out of range");
    }

    #[test]
    fn corrupted_causal_frames_never_panic(mutation in any::<u64>()) {
        let (aw, map) = causal_frames();
        decode_all_paths(&corrupt(aw, mutation));
        decode_all_paths(&corrupt(map, mutation));
    }

    /// A strict prefix of a flat causal frame must always error: the
    /// store count, every `(dot, value)` entry, the clock and the cloud
    /// dots are all length-prefixed, so a half-frame can never satisfy
    /// the trailing-bytes check.
    #[test]
    fn causal_truncations_always_error(cut in any::<u64>()) {
        let (aw, map) = causal_frames();
        let cut_at = |frame: &[u8]| (cut as usize) % frame.len();
        prop_assert!(AWSet::<u64>::from_bytes(&aw[..cut_at(&aw)]).is_err());
        prop_assert!(ORSetMap::<u8, u16>::from_bytes(&map[..cut_at(&map)]).is_err());
    }

    #[test]
    fn causal_trailing_garbage_is_rejected(tail in pvec(any::<u8>(), 1..8)) {
        let (aw, map) = causal_frames();
        let mut aw_long = aw;
        aw_long.extend_from_slice(&tail);
        prop_assert_eq!(
            AWSet::<u64>::from_bytes(&aw_long).unwrap_err(),
            crdt_lattice::CodecError::TrailingBytes
        );
        let mut map_long = map;
        map_long.extend_from_slice(&tail);
        prop_assert_eq!(
            ORSetMap::<u8, u16>::from_bytes(&map_long).unwrap_err(),
            crdt_lattice::CodecError::TrailingBytes
        );
    }

    /// Hostile run-length claims: tiny frames whose store count or
    /// cloud-dot count claims up to 2^63 entries are rejected by the
    /// remaining-input guard — whatever decoder they are fed to.
    #[test]
    fn hostile_causal_length_claims_are_rejected(claim in 16u64..(1 << 63)) {
        // Store count first field.
        let mut huge_store = Vec::new();
        crdt_lattice::codec::put_uvarint(&mut huge_store, claim);
        huge_store.push(7);
        prop_assert!(AWSet::<u64>::from_bytes(&huge_store).is_err());
        prop_assert!(ORSetMap::<u8, u16>::from_bytes(&huge_store).is_err());
        // Empty store + empty clock, then a huge cloud-dot count.
        let mut huge_cloud = vec![0u8, 0u8];
        crdt_lattice::codec::put_uvarint(&mut huge_cloud, claim);
        prop_assert!(AWSet::<u64>::from_bytes(&huge_cloud).is_err());
        // Bare context: empty clock then the hostile cloud count.
        let mut huge_ctx = vec![0u8];
        crdt_lattice::codec::put_uvarint(&mut huge_ctx, claim);
        prop_assert!(CausalContext::from_bytes(&huge_ctx).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(
        elems in pvec(any::<u64>(), 0..10),
        tail in pvec(any::<u8>(), 1..8),
    ) {
        let env = envelope(&elems, ProtocolKind::BpRr);
        let mut frame = env.to_bytes();
        frame.extend_from_slice(&tail);
        prop_assert_eq!(
            WireEnvelope::from_bytes(&frame),
            Err(crdt_lattice::CodecError::TrailingBytes)
        );
        // The streaming decoder still stops exactly at the value
        // boundary and leaves the tail unconsumed.
        let mut cursor: &[u8] = &frame;
        let view = WireEnvelopeRef::decode(&mut cursor).expect("prefix is valid");
        prop_assert_eq!(cursor, &tail[..]);
        prop_assert_eq!(view.to_envelope(), env);
    }
}
