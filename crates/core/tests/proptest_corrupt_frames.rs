//! Decode robustness: random truncations, bit flips and length-field
//! mutations of valid wire frames must decode to `Err` (or, for benign
//! flips, to another valid value) — **never panic**, and never trust a
//! wire-supplied length for a proportional preallocation.
//!
//! Covers the three frame layers a byte transport ships: bare protocol
//! messages, [`WireEnvelope`] frames, and [`BatchEnvelope`] frames —
//! through all three decode paths (copying `from_bytes`, zero-copy
//! `decode_shared`, borrowed [`BatchEntries`] / [`WireEnvelopeRef`]).
//!
//! The companion allocation-budget check (corrupt input never allocates
//! more than a small multiple of its length) lives in
//! `tests/corrupt_frame_alloc.rs`, which installs the counting
//! allocator; CI runs both with a raised `PROPTEST_CASES`.

use crdt_lattice::{ReplicaId, WireEncode};
use crdt_sync::{
    AckedMsg, BatchEntries, BatchEnvelope, Bytes, DeltaMsg, OpMsg, ProtocolKind, SbMsg,
    WireAccounting, WireEnvelope, WireEnvelopeRef,
};
use crdt_types::GSet;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Deterministically corrupt `frame` from a mutation seed: truncate,
/// flip a bit, or stamp a maximal varint over a random position (the
/// length-field attack).
fn corrupt(mut frame: Vec<u8>, mutation: u64) -> Vec<u8> {
    if frame.is_empty() {
        return vec![(mutation & 0xff) as u8];
    }
    let pos = (mutation as usize / 8) % frame.len();
    match mutation % 4 {
        0 => frame.truncate(pos),
        1 => frame[pos] ^= 1 << (mutation % 8),
        2 => {
            // Overwrite with a huge LEB128 varint (≈ 2^63): whatever
            // field lands here now claims an absurd length or value.
            for (i, b) in [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]
                .into_iter()
                .enumerate()
            {
                if pos + i < frame.len() {
                    frame[pos + i] = b;
                } else {
                    frame.push(b);
                }
            }
        }
        _ => {
            // Append garbage: exercises the trailing-bytes check.
            frame.extend_from_slice(&[0xaa, 0x55, (mutation & 0xff) as u8]);
        }
    }
    frame
}

fn envelope(elems: &[u64], kind: ProtocolKind) -> WireEnvelope {
    let payload = DeltaMsg(GSet::from_iter(elems.iter().copied())).to_bytes();
    WireEnvelope {
        from: ReplicaId(1),
        to: ReplicaId(2),
        kind,
        accounting: WireAccounting {
            payload_elements: elems.len() as u64,
            payload_bytes: 8 * elems.len() as u64,
            metadata_bytes: 0,
            encoded_bytes: payload.len() as u64,
        },
        payload: payload.into(),
    }
}

/// Every decode path over one corrupted frame; the assertion is simply
/// "no panic, and errors are errors" (a benign flip may still decode).
fn decode_all_paths(bytes: &[u8]) {
    let _ = WireEnvelope::from_bytes(bytes);
    let mut cursor = bytes;
    let _ = WireEnvelopeRef::decode(&mut cursor);
    let frame = Bytes::copy_from_slice(bytes);
    let mut cursor: &[u8] = &frame;
    let _ = WireEnvelope::decode_shared(&frame, &mut cursor);

    let _ = BatchEnvelope::<String>::from_bytes(bytes);
    let _ = BatchEnvelope::<u32>::decode_shared(&frame);
    let mut cursor = bytes;
    if let Ok(entries) = BatchEntries::<String>::parse(&mut cursor) {
        for item in entries {
            let _ = item;
        }
    }

    let _ = DeltaMsg::<GSet<String>>::from_bytes(bytes);
    let _ = SbMsg::<GSet<u64>>::from_bytes(bytes);
    let _ = AckedMsg::<GSet<u64>>::from_bytes(bytes);
    let _ = OpMsg::<GSet<u64>>::from_bytes(bytes);
}

proptest! {
    #[test]
    fn corrupted_envelope_frames_never_panic(
        elems in pvec(any::<u64>(), 0..12),
        mutation in any::<u64>(),
    ) {
        let frame = envelope(&elems, ProtocolKind::BpRr).to_bytes();
        decode_all_paths(&corrupt(frame, mutation));
    }

    #[test]
    fn corrupted_batch_frames_never_panic(
        keys in pvec(".{0,6}", 1..6),
        elems in pvec(any::<u64>(), 0..8),
        mutation in any::<u64>(),
    ) {
        let mut batch: BatchEnvelope<String> = BatchEnvelope::new();
        for key in keys {
            batch.push(key.to_string(), envelope(&elems, ProtocolKind::Scuttlebutt));
        }
        decode_all_paths(&corrupt(batch.to_bytes(), mutation));
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in pvec(any::<u8>(), 0..80)) {
        decode_all_paths(&bytes);
    }

    #[test]
    fn truncations_always_error(
        elems in pvec(any::<u64>(), 1..10),
        cut in any::<u64>(),
    ) {
        // Unlike bit flips, a strict prefix can never decode to a
        // complete envelope: every truncation point must error.
        let frame = envelope(&elems, ProtocolKind::Classic).to_bytes();
        let cut = (cut as usize) % frame.len();
        prop_assert!(WireEnvelope::from_bytes(&frame[..cut]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected(
        elems in pvec(any::<u64>(), 0..10),
        tail in pvec(any::<u8>(), 1..8),
    ) {
        let env = envelope(&elems, ProtocolKind::BpRr);
        let mut frame = env.to_bytes();
        frame.extend_from_slice(&tail);
        prop_assert_eq!(
            WireEnvelope::from_bytes(&frame),
            Err(crdt_lattice::CodecError::TrailingBytes)
        );
        // The streaming decoder still stops exactly at the value
        // boundary and leaves the tail unconsumed.
        let mut cursor: &[u8] = &frame;
        let view = WireEnvelopeRef::decode(&mut cursor).expect("prefix is valid");
        prop_assert_eq!(cursor, &tail[..]);
        prop_assert_eq!(view.to_envelope(), env);
    }
}
