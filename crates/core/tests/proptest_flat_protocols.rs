//! Flat causal state under every synchronization protocol.
//!
//! The flat dot-store rewrite in `crdt-types` promised protocol-visible
//! behavior is untouched: same converged states, same element counts,
//! same encoded bytes. `flat_parity.rs` (crdt-types) proves the flat
//! representation byte-equal to the nested reference at the type level;
//! this suite closes the loop at the protocol level — a causal CRDT
//! ([`AWSet`], removals and all) run through **every** [`ProtocolKind`]'s
//! typed protocol on randomized schedules must converge every replica to
//! byte-identical, hash-identical states, and on add-only histories every
//! protocol must converge to the *same* bytes.

use crdt_lattice::{ReplicaId, StateSize, WireEncode};
use crdt_sync::{
    state_hash_of, AckedDeltaSync, BpDelta, BpRrDelta, ClassicDelta, OpBased, Params, Protocol,
    RrDelta, Scuttlebutt, ScuttlebuttGc, StateSync,
};
use crdt_types::{AWSet, AWSetOp};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

type Set = AWSet<u64>;

/// A randomized 3-replica schedule: owner-routed causal ops, sync steps,
/// in-order message deliveries.
#[derive(Debug, Clone)]
enum Step {
    /// Replica adds a fresh unique element.
    Add(usize),
    /// Replica removes an element that may or may not be visible there.
    Remove(usize, u64),
    /// Replica runs its periodic synchronization step.
    Sync(usize),
    /// Deliver the oldest in-flight message to its recipient.
    Deliver,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0usize..3).prop_map(Step::Add),
        1 => (0usize..3, 0u64..24).prop_map(|(i, e)| Step::Remove(i, e)),
        2 => (0usize..3).prop_map(Step::Sync),
        4 => Just(Step::Deliver),
    ]
}

fn add_only_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0usize..3).prop_map(Step::Add),
        2 => (0usize..3).prop_map(Step::Sync),
        4 => Just(Step::Deliver),
    ]
}

/// Run a schedule against protocol `P` on a 3-node full mesh, then drain
/// until quiescent; return the final states.
fn run_schedule<P: Protocol<Set>>(steps: &[Step]) -> Vec<Set> {
    let params = Params::new(3);
    let ids = [ReplicaId(0), ReplicaId(1), ReplicaId(2)];
    let mut nodes: Vec<P> = ids.iter().map(|&i| P::new(i, &params)).collect();
    let mut inflight: std::collections::VecDeque<(usize, usize, P::Msg)> = Default::default();
    let mut fresh = 0u64;

    let neighbors =
        |me: usize| -> Vec<ReplicaId> { ids.iter().copied().filter(|r| r.index() != me).collect() };
    let mut out = Vec::new();

    let push_out =
        |from: usize,
         out: &mut Vec<(ReplicaId, P::Msg)>,
         inflight: &mut std::collections::VecDeque<(usize, usize, P::Msg)>| {
            for (to, msg) in out.drain(..) {
                inflight.push_back((from, to.index(), msg));
            }
        };

    for step in steps {
        match step {
            Step::Add(i) => {
                nodes[*i].on_op(&AWSetOp::Add(ids[*i], fresh * 3 + *i as u64));
                fresh += 1;
            }
            Step::Remove(i, e) => {
                nodes[*i].on_op(&AWSetOp::Remove(*e));
            }
            Step::Sync(i) => {
                nodes[*i].on_sync(&neighbors(*i), &mut out);
                push_out(*i, &mut out, &mut inflight);
            }
            Step::Deliver => {
                if let Some((from, to, msg)) = inflight.pop_front() {
                    nodes[to].on_msg(ReplicaId::from(from), msg, &mut out);
                    push_out(to, &mut out, &mut inflight);
                }
            }
        }
    }

    // Drain: alternate sync-everyone and deliver-everything until stable.
    for _ in 0..24 {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.on_sync(&neighbors(i), &mut out);
            push_out(i, &mut out, &mut inflight);
        }
        while let Some((from, to, msg)) = inflight.pop_front() {
            nodes[to].on_msg(ReplicaId::from(from), msg, &mut out);
            push_out(to, &mut out, &mut inflight);
        }
        if nodes.windows(2).all(|w| w[0].state() == w[1].state()) {
            break;
        }
    }

    nodes.iter().map(|n| n.state().clone()).collect()
}

/// Every replica converged: equal states, equal element counts, equal
/// encoded bytes, equal (cached) frames, equal `Debug`-walk hashes.
fn assert_replica_parity(states: &[Set]) {
    let first = &states[0];
    let bytes = first.to_bytes();
    let hash = state_hash_of(first);
    for s in &states[1..] {
        assert_eq!(s, first, "states diverged");
        assert_eq!(s.count_elements(), first.count_elements());
        assert_eq!(s.to_bytes(), bytes, "encoded bytes diverged");
        assert_eq!(s.encode_frame().as_ref(), bytes, "cached frame diverged");
        assert_eq!(state_hash_of(s), hash, "state hashes diverged");
    }
}

macro_rules! flat_schedule_suite {
    ($name:ident, $proto:ty) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(24))]

                #[test]
                fn causal_replicas_converge_byte_identical(
                    steps in pvec(step_strategy(), 0..40),
                ) {
                    let states = run_schedule::<$proto>(&steps);
                    assert_replica_parity(&states);
                }
            }
        }
    };
}

flat_schedule_suite!(state_flat, StateSync<Set>);
flat_schedule_suite!(classic_flat, ClassicDelta<Set>);
flat_schedule_suite!(bp_flat, BpDelta<Set>);
flat_schedule_suite!(rr_flat, RrDelta<Set>);
flat_schedule_suite!(bp_rr_flat, BpRrDelta<Set>);
flat_schedule_suite!(scuttlebutt_flat, Scuttlebutt<Set>);
flat_schedule_suite!(scuttlebutt_gc_flat, ScuttlebuttGc<Set>);
flat_schedule_suite!(acked_flat, AckedDeltaSync<Set>);
// `OpBased` replays raw ops, so a causal remove's kill-set depends on
// per-replica delivery order — replicas legitimately disagree under
// concurrent add/remove. It joins the add-only cross-protocol check
// below, where replay is deterministic.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On add-only histories the converged abstract state is
    /// protocol-independent, so every protocol must converge to the same
    /// canonical bytes. (With removals the kill-sets depend on delivery
    /// timing, so cross-protocol equality is only guaranteed add-only.)
    #[test]
    fn all_protocols_converge_to_the_same_bytes(
        steps in pvec(add_only_strategy(), 0..40),
    ) {
        let reference = run_schedule::<ClassicDelta<Set>>(&steps);
        assert_replica_parity(&reference);
        let expected = reference[0].to_bytes();
        macro_rules! check {
            ($proto:ty, $label:expr) => {
                let states = run_schedule::<$proto>(&steps);
                assert_replica_parity(&states);
                prop_assert_eq!(
                    states[0].to_bytes(),
                    expected.clone(),
                    "{} diverged from classic delta",
                    $label
                );
            };
        }
        check!(StateSync<Set>, "state");
        check!(BpDelta<Set>, "delta+BP");
        check!(RrDelta<Set>, "delta+RR");
        check!(BpRrDelta<Set>, "delta+BP+RR");
        check!(Scuttlebutt<Set>, "scuttlebutt");
        check!(ScuttlebuttGc<Set>, "scuttlebutt-gc");
        check!(OpBased<Set>, "op-based");
        check!(AckedDeltaSync<Set>, "delta+BP+RR (acked)");
    }
}
