//! Protocol-level property tests: random workloads, random pairwise
//! delivery schedules, all synchronization algorithms.
//!
//! The central invariant is the paper's correctness argument for BP and
//! RR (§IV): the optimizations only remove *redundant* state, so for any
//! execution the replicas still converge to the join of all updates, and
//! BP+RR never transmits more than classic.

use crdt_lattice::{join_all, Bottom, Lattice, ReplicaId};
use crdt_sync::{
    BpDelta, BpRrDelta, ClassicDelta, Measured, OpBased, Params, Protocol, RrDelta, Scuttlebutt,
    ScuttlebuttGc, StateSync,
};
use crdt_types::{GSet, GSetOp};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A randomized schedule over a fully scripted 3-replica execution:
/// interleaves local ops, sync steps, and message deliveries.
#[derive(Debug, Clone)]
enum Step {
    /// Replica adds a fresh unique element.
    Op(usize),
    /// Replica runs its periodic synchronization step.
    Sync(usize),
    /// Deliver the oldest in-flight message to its recipient.
    Deliver,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0usize..3).prop_map(Step::Op),
        2 => (0usize..3).prop_map(Step::Sync),
        4 => Just(Step::Deliver),
    ]
}

/// Run a schedule against protocol `P` on a 3-node full mesh; finish with
/// enough sync+deliver rounds to drain everything; return final states
/// and total payload elements transmitted.
fn run_schedule<P: Protocol<GSet<u64>>>(steps: &[Step]) -> (Vec<GSet<u64>>, u64) {
    let params = Params::new(3);
    let ids = [ReplicaId(0), ReplicaId(1), ReplicaId(2)];
    let mut nodes: Vec<P> = ids.iter().map(|&i| P::new(i, &params)).collect();
    let mut inflight: std::collections::VecDeque<(usize, usize, P::Msg)> = Default::default();
    let mut transmitted = 0u64;
    let mut fresh = 0u64;

    let neighbors =
        |me: usize| -> Vec<ReplicaId> { ids.iter().copied().filter(|r| r.index() != me).collect() };
    let mut out = Vec::new();

    let push_out = |from: usize,
                    out: &mut Vec<(ReplicaId, P::Msg)>,
                    inflight: &mut std::collections::VecDeque<(usize, usize, P::Msg)>,
                    transmitted: &mut u64| {
        for (to, msg) in out.drain(..) {
            *transmitted += msg.payload_elements();
            inflight.push_back((from, to.index(), msg));
        }
    };

    for step in steps {
        match step {
            Step::Op(i) => {
                nodes[*i].on_op(&GSetOp::Add(fresh * 3 + *i as u64));
                fresh += 1;
            }
            Step::Sync(i) => {
                nodes[*i].on_sync(&neighbors(*i), &mut out);
                push_out(*i, &mut out, &mut inflight, &mut transmitted);
            }
            Step::Deliver => {
                if let Some((from, to, msg)) = inflight.pop_front() {
                    nodes[to].on_msg(ReplicaId::from(from), msg, &mut out);
                    push_out(to, &mut out, &mut inflight, &mut transmitted);
                }
            }
        }
    }

    // Drain: alternate sync-everyone and deliver-everything until stable.
    for _ in 0..24 {
        for (i, node) in nodes.iter_mut().enumerate() {
            node.on_sync(&neighbors(i), &mut out);
            push_out(i, &mut out, &mut inflight, &mut transmitted);
        }
        while let Some((from, to, msg)) = inflight.pop_front() {
            nodes[to].on_msg(ReplicaId::from(from), msg, &mut out);
            push_out(to, &mut out, &mut inflight, &mut transmitted);
        }
        if nodes.windows(2).all(|w| w[0].state() == w[1].state()) {
            break;
        }
    }

    (
        nodes.iter().map(|n| n.state().clone()).collect(),
        transmitted,
    )
}

macro_rules! schedule_suite {
    ($name:ident, $proto:ty) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]

                /// Any schedule converges, and the converged state is the
                /// join of everything any replica produced.
                #[test]
                fn converges_to_join_of_updates(steps in pvec(step_strategy(), 0..40)) {
                    let (states, _) = run_schedule::<$proto>(&steps);
                    prop_assert_eq!(&states[0], &states[1]);
                    prop_assert_eq!(&states[1], &states[2]);
                    // The drain phase must have reached quiescence with
                    // every update everywhere: the union of all final
                    // states equals each final state.
                    let joined: GSet<u64> = join_all(states.iter().cloned());
                    prop_assert_eq!(&joined, &states[0]);
                }
            }
        }
    };
}

schedule_suite!(state_schedules, StateSync<GSet<u64>>);
schedule_suite!(classic_schedules, ClassicDelta<GSet<u64>>);
schedule_suite!(bp_schedules, BpDelta<GSet<u64>>);
schedule_suite!(rr_schedules, RrDelta<GSet<u64>>);
schedule_suite!(bp_rr_schedules, BpRrDelta<GSet<u64>>);
schedule_suite!(scuttlebutt_schedules, Scuttlebutt<GSet<u64>>);
schedule_suite!(scuttlebutt_gc_schedules, ScuttlebuttGc<GSet<u64>>);
schedule_suite!(op_based_schedules, OpBased<GSet<u64>>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §IV claim, schedule-quantified: on identical schedules the
    /// optimizations never transmit more than classic delta.
    #[test]
    fn optimizations_never_transmit_more(steps in pvec(step_strategy(), 0..40)) {
        let (s_classic, t_classic) = run_schedule::<ClassicDelta<GSet<u64>>>(&steps);
        let (s_bprr, t_bprr) = run_schedule::<BpRrDelta<GSet<u64>>>(&steps);
        prop_assert_eq!(&s_classic[0], &s_bprr[0], "same final state");
        prop_assert!(
            t_bprr <= t_classic,
            "BP+RR transmitted {t_bprr} > classic {t_classic}"
        );
    }

    /// RR's extraction never stores ⊥ and never stores anything already
    /// dominated by the local state.
    #[test]
    fn rr_buffer_holds_only_novelty(
        local in pvec(0u64..32, 0..16),
        incoming in pvec(0u64..32, 0..16),
    ) {
        use crdt_sync::{DeltaConfig, DeltaMsg, DeltaSync};
        let mut p = DeltaSync::<GSet<u64>>::with_config(ReplicaId(0), DeltaConfig::BP_RR);
        let mut pre = GSet::bottom();
        for e in &local {
            p.local_op(&GSetOp::Add(*e));
            let _ = pre.add(*e);
        }
        // Flush the local-op buffer.
        p.sync_step(&[], &mut Vec::new());
        let group: GSet<u64> = incoming.iter().copied().collect();
        p.receive(ReplicaId(1), DeltaMsg(group.clone()));
        for entry in p.buffer().iter() {
            prop_assert!(!entry.delta.is_bottom());
            // Everything buffered is novel w.r.t. the pre-receive state.
            prop_assert!(
                entry.delta.clone().join(pre.clone()) != pre,
                "buffered redundant delta {:?}",
                entry.delta
            );
        }
    }
}
