//! Engine-parity property tests: the type-erased path ([`EngineAdapter`]
//! over [`WireEnvelope`]s with truly encoded payloads) is behaviorally
//! identical to the generic [`Protocol`] path.
//!
//! For random schedules (ops per node per round, random reliable
//! delivery order fixed by a seed) both paths are driven in lockstep and
//! must produce:
//!
//! * identical lattice states at every replica after every round, and
//! * identical transmission accounting (element counts per round) —
//!   the quantity every figure of the paper is measured in.

use crdt_lattice::{ReplicaId, SizeModel, WireEncode};
use crdt_sync::{
    BpRrDelta, ClassicDelta, EngineAdapter, Measured, OpBytes, Params, Protocol, SyncEngine,
    WireEnvelope,
};
use crdt_types::{Crdt, GSet, GSetOp, PNCounter, PNCounterOp};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// One round's schedule: for each node, the ops it performs.
type Schedule<O> = Vec<Vec<Vec<O>>>;

/// Drive the generic path: full-mesh, synchronous rounds, in-order
/// delivery. Returns (per-round element counts, final states).
fn run_generic<C, P>(n: usize, schedule: &Schedule<C::Op>) -> (Vec<u64>, Vec<C>)
where
    C: Crdt,
    P: Protocol<C>,
{
    let params = Params::new(n);
    let mut nodes: Vec<P> = (0..n)
        .map(|i| P::new(ReplicaId::from(i), &params))
        .collect();
    let neighbors: Vec<Vec<ReplicaId>> = (0..n)
        .map(|i| (0..n).filter(|j| *j != i).map(ReplicaId::from).collect())
        .collect();
    let mut per_round = Vec::new();
    for round in schedule {
        for (i, ops) in round.iter().enumerate() {
            for op in ops {
                nodes[i].on_op(op);
            }
        }
        let mut elements = 0u64;
        let mut deliveries: Vec<(usize, ReplicaId, P::Msg)> = Vec::new();
        let mut out = Vec::new();
        for i in 0..n {
            nodes[i].on_sync(&neighbors[i], &mut out);
            for (to, msg) in out.drain(..) {
                elements += msg.payload_elements();
                deliveries.push((to.index(), ReplicaId::from(i), msg));
            }
        }
        while let Some((to, from, msg)) = deliveries.pop() {
            let mut replies = Vec::new();
            nodes[to].on_msg(from, msg, &mut replies);
            for (reply_to, reply) in replies {
                elements += reply.payload_elements();
                deliveries.push((reply_to.index(), ReplicaId::from(to), reply));
            }
        }
        per_round.push(elements);
    }
    (per_round, nodes.iter().map(|p| p.state().clone()).collect())
}

/// Drive the erased path through the identical schedule and delivery
/// discipline (LIFO drain, matching `run_generic`).
fn run_erased<C>(
    n: usize,
    schedule: &Schedule<C::Op>,
    build: impl Fn(ReplicaId, &Params) -> Box<dyn SyncEngine>,
) -> (Vec<u64>, Vec<C>)
where
    C: Crdt + 'static,
    C::Op: WireEncode,
{
    let params = Params::new(n);
    let mut nodes: Vec<Box<dyn SyncEngine>> =
        (0..n).map(|i| build(ReplicaId::from(i), &params)).collect();
    let neighbors: Vec<Vec<ReplicaId>> = (0..n)
        .map(|i| (0..n).filter(|j| *j != i).map(ReplicaId::from).collect())
        .collect();
    let mut per_round = Vec::new();
    for round in schedule {
        for (i, ops) in round.iter().enumerate() {
            for op in ops {
                nodes[i].on_op(&OpBytes::encode(op)).expect("op decodes");
            }
        }
        let mut elements = 0u64;
        let mut deliveries: Vec<WireEnvelope> = Vec::new();
        for i in 0..n {
            for env in nodes[i].on_sync(&neighbors[i]) {
                elements += env.accounting.payload_elements;
                deliveries.push(env);
            }
        }
        while let Some(env) = deliveries.pop() {
            let to = env.to.index();
            for reply in nodes[to].on_msg(env).expect("kind matches") {
                elements += reply.accounting.payload_elements;
                deliveries.push(reply);
            }
        }
        per_round.push(elements);
    }
    let states = nodes
        .iter()
        .map(|e| {
            e.state_any()
                .downcast_ref::<C>()
                .expect("engines built over C")
                .clone()
        })
        .collect();
    (per_round, states)
}

fn gset_schedule() -> impl Strategy<Value = Schedule<GSetOp<u16>>> {
    // 2..=4 nodes × 1..=4 rounds × 0..3 ops per node per round.
    (2usize..5, 1usize..5).prop_flat_map(|(n, rounds)| {
        pvec(
            pvec(pvec((0u16..40).prop_map(GSetOp::Add), 0..3), n..n + 1),
            rounds..rounds + 1,
        )
    })
}

fn pncounter_schedule() -> impl Strategy<Value = Schedule<PNCounterOp>> {
    let op = prop_oneof![
        (0u32..4).prop_map(|r| PNCounterOp::Inc(ReplicaId(r))),
        (0u32..4).prop_map(|r| PNCounterOp::Dec(ReplicaId(r))),
        (0u32..4, 1u64..5).prop_map(|(r, by)| PNCounterOp::IncBy(ReplicaId(r), by)),
    ];
    (2usize..5, 1usize..4).prop_flat_map(move |(n, rounds)| {
        pvec(pvec(pvec(op.clone(), 0..3), n..n + 1), rounds..rounds + 1)
    })
}

fn assert_parity<C: Crdt>(generic: (Vec<u64>, Vec<C>), erased: (Vec<u64>, Vec<C>)) {
    assert_eq!(
        generic.0, erased.0,
        "transmission element counts diverged between generic and erased paths"
    );
    assert_eq!(generic.1.len(), erased.1.len());
    for (i, (g, e)) in generic.1.iter().zip(&erased.1).enumerate() {
        assert_eq!(
            g, e,
            "replica {i} state diverged between generic and erased paths"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ClassicDelta: erased == generic for every random schedule.
    #[test]
    fn classic_delta_parity(schedule in gset_schedule()) {
        let n = schedule[0].len();
        let generic = run_generic::<GSet<u16>, ClassicDelta<GSet<u16>>>(n, &schedule);
        let erased = run_erased::<GSet<u16>>(n, &schedule, |id, params| {
            Box::new(EngineAdapter::<GSet<u16>, ClassicDelta<GSet<u16>>>::new(id, params))
        });
        assert_parity(generic, erased);
    }

    /// BP+RR: erased == generic for every random schedule.
    #[test]
    fn bp_rr_delta_parity(schedule in gset_schedule()) {
        let n = schedule[0].len();
        let generic = run_generic::<GSet<u16>, BpRrDelta<GSet<u16>>>(n, &schedule);
        let erased = run_erased::<GSet<u16>>(n, &schedule, |id, params| {
            Box::new(EngineAdapter::<GSet<u16>, BpRrDelta<GSet<u16>>>::new(id, params))
        });
        assert_parity(generic, erased);
    }

    /// Parity holds beyond grow-only sets: PNCounter (map-of-pairs shape)
    /// through BP+RR.
    #[test]
    fn bp_rr_pncounter_parity(schedule in pncounter_schedule()) {
        let n = schedule[0].len();
        let generic = run_generic::<PNCounter, BpRrDelta<PNCounter>>(n, &schedule);
        let erased = run_erased::<PNCounter>(n, &schedule, |id, params| {
            Box::new(EngineAdapter::<PNCounter, BpRrDelta<PNCounter>>::new(id, params))
        });
        assert_parity(generic, erased);
    }

    /// After enough extra sync rounds both paths converge to the same
    /// totals — and to each other across paths.
    #[test]
    fn converged_states_agree_across_paths(schedule in gset_schedule()) {
        let n = schedule[0].len();
        // Extend the schedule with idle rounds so both paths converge.
        let mut extended = schedule.clone();
        for _ in 0..4 {
            extended.push(vec![Vec::new(); n]);
        }
        let (_, generic) = run_generic::<GSet<u16>, BpRrDelta<GSet<u16>>>(n, &extended);
        let (_, erased) = run_erased::<GSet<u16>>(n, &extended, |id, params| {
            Box::new(EngineAdapter::<GSet<u16>, BpRrDelta<GSet<u16>>>::new(id, params))
        });
        // Convergence within each path…
        for w in generic.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
        // …and equality across paths.
        prop_assert_eq!(&generic[0], &erased[0]);
        // Element counts agree with the op multiset (unique adds only).
        let mut expected = std::collections::BTreeSet::new();
        for round in &schedule {
            for ops in round {
                for GSetOp::Add(e) in ops {
                    expected.insert(*e);
                }
            }
        }
        prop_assert_eq!(generic[0].len(), expected.len());
    }
}

/// The model-view accounting in envelopes equals the generic `Measured`
/// numbers under the same size model (not just elements — bytes too).
#[test]
fn envelope_accounting_equals_measured() {
    let params = Params::new(2);
    let model = SizeModel::compact();
    let a = ReplicaId(0);
    let b = ReplicaId(1);

    let mut generic: BpRrDelta<GSet<u16>> = Protocol::new(a, &params);
    let mut erased = EngineAdapter::<GSet<u16>, BpRrDelta<GSet<u16>>>::new(a, &params);
    for e in 0..20u16 {
        generic.on_op(&GSetOp::Add(e));
        erased.on_op(&OpBytes::encode(&GSetOp::Add(e))).unwrap();
    }
    let mut out = Vec::new();
    generic.on_sync(&[b], &mut out);
    let (_, msg) = out.pop().unwrap();
    let env = erased.on_sync(&[b]).pop().unwrap();

    assert_eq!(env.accounting.payload_elements, msg.payload_elements());
    assert_eq!(env.accounting.payload_bytes, msg.payload_bytes(&model));
    assert_eq!(env.accounting.metadata_bytes, msg.metadata_bytes(&model));
    assert_eq!(env.accounting.encoded_bytes, env.payload.len() as u64);
}
