//! Engine-parity property tests: the type-erased path ([`EngineAdapter`]
//! over [`WireEnvelope`]s with truly encoded payloads) is behaviorally
//! identical to the generic [`Protocol`] path.
//!
//! For random schedules (ops per node per round, random reliable
//! delivery order fixed by a seed) both paths are driven in lockstep and
//! must produce:
//!
//! * identical lattice states at every replica after every round, and
//! * identical transmission accounting (element counts per round) —
//!   the quantity every figure of the paper is measured in.

use crdt_lattice::{ReplicaId, SizeModel, WireEncode};
use crdt_sync::{
    BpRrDelta, ClassicDelta, EngineAdapter, Measured, OpBytes, Params, Protocol, SyncEngine,
    WireEnvelope,
};
use crdt_types::{Crdt, GSet, GSetOp, PNCounter, PNCounterOp};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// One round's schedule: for each node, the ops it performs.
type Schedule<O> = Vec<Vec<Vec<O>>>;

/// Drive the generic path: full-mesh, synchronous rounds, in-order
/// delivery. Returns (per-round element counts, final states).
fn run_generic<C, P>(n: usize, schedule: &Schedule<C::Op>) -> (Vec<u64>, Vec<C>)
where
    C: Crdt,
    P: Protocol<C>,
{
    let params = Params::new(n);
    let mut nodes: Vec<P> = (0..n)
        .map(|i| P::new(ReplicaId::from(i), &params))
        .collect();
    let neighbors: Vec<Vec<ReplicaId>> = (0..n)
        .map(|i| (0..n).filter(|j| *j != i).map(ReplicaId::from).collect())
        .collect();
    let mut per_round = Vec::new();
    for round in schedule {
        for (i, ops) in round.iter().enumerate() {
            for op in ops {
                nodes[i].on_op(op);
            }
        }
        let mut elements = 0u64;
        let mut deliveries: Vec<(usize, ReplicaId, P::Msg)> = Vec::new();
        let mut out = Vec::new();
        for i in 0..n {
            nodes[i].on_sync(&neighbors[i], &mut out);
            for (to, msg) in out.drain(..) {
                elements += msg.payload_elements();
                deliveries.push((to.index(), ReplicaId::from(i), msg));
            }
        }
        while let Some((to, from, msg)) = deliveries.pop() {
            let mut replies = Vec::new();
            nodes[to].on_msg(from, msg, &mut replies);
            for (reply_to, reply) in replies {
                elements += reply.payload_elements();
                deliveries.push((reply_to.index(), ReplicaId::from(to), reply));
            }
        }
        per_round.push(elements);
    }
    (per_round, nodes.iter().map(|p| p.state().clone()).collect())
}

/// Drive the erased path through the identical schedule and delivery
/// discipline (LIFO drain, matching `run_generic`).
fn run_erased<C>(
    n: usize,
    schedule: &Schedule<C::Op>,
    build: impl Fn(ReplicaId, &Params) -> Box<dyn SyncEngine>,
) -> (Vec<u64>, Vec<C>)
where
    C: Crdt + 'static,
    C::Op: WireEncode,
{
    let params = Params::new(n);
    let mut nodes: Vec<Box<dyn SyncEngine>> =
        (0..n).map(|i| build(ReplicaId::from(i), &params)).collect();
    let neighbors: Vec<Vec<ReplicaId>> = (0..n)
        .map(|i| (0..n).filter(|j| *j != i).map(ReplicaId::from).collect())
        .collect();
    let mut per_round = Vec::new();
    for round in schedule {
        for (i, ops) in round.iter().enumerate() {
            for op in ops {
                nodes[i].on_op(&OpBytes::encode(op)).expect("op decodes");
            }
        }
        let mut elements = 0u64;
        let mut deliveries: Vec<WireEnvelope> = Vec::new();
        for i in 0..n {
            for env in nodes[i].on_sync(&neighbors[i]) {
                elements += env.accounting.payload_elements;
                deliveries.push(env);
            }
        }
        while let Some(env) = deliveries.pop() {
            let to = env.to.index();
            for reply in nodes[to].on_msg(env).expect("kind matches") {
                elements += reply.accounting.payload_elements;
                deliveries.push(reply);
            }
        }
        per_round.push(elements);
    }
    let states = nodes
        .iter()
        .map(|e| {
            e.state_any()
                .downcast_ref::<C>()
                .expect("engines built over C")
                .clone()
        })
        .collect();
    (per_round, states)
}

fn gset_schedule() -> impl Strategy<Value = Schedule<GSetOp<u16>>> {
    // 2..=4 nodes × 1..=4 rounds × 0..3 ops per node per round.
    (2usize..5, 1usize..5).prop_flat_map(|(n, rounds)| {
        pvec(
            pvec(pvec((0u16..40).prop_map(GSetOp::Add), 0..3), n..n + 1),
            rounds..rounds + 1,
        )
    })
}

fn pncounter_schedule() -> impl Strategy<Value = Schedule<PNCounterOp>> {
    let op = prop_oneof![
        (0u32..4).prop_map(|r| PNCounterOp::Inc(ReplicaId(r))),
        (0u32..4).prop_map(|r| PNCounterOp::Dec(ReplicaId(r))),
        (0u32..4, 1u64..5).prop_map(|(r, by)| PNCounterOp::IncBy(ReplicaId(r), by)),
    ];
    (2usize..5, 1usize..4).prop_flat_map(move |(n, rounds)| {
        pvec(pvec(pvec(op.clone(), 0..3), n..n + 1), rounds..rounds + 1)
    })
}

fn assert_parity<C: Crdt>(generic: (Vec<u64>, Vec<C>), erased: (Vec<u64>, Vec<C>)) {
    assert_eq!(
        generic.0, erased.0,
        "transmission element counts diverged between generic and erased paths"
    );
    assert_eq!(generic.1.len(), erased.1.len());
    for (i, (g, e)) in generic.1.iter().zip(&erased.1).enumerate() {
        assert_eq!(
            g, e,
            "replica {i} state diverged between generic and erased paths"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ClassicDelta: erased == generic for every random schedule.
    #[test]
    fn classic_delta_parity(schedule in gset_schedule()) {
        let n = schedule[0].len();
        let generic = run_generic::<GSet<u16>, ClassicDelta<GSet<u16>>>(n, &schedule);
        let erased = run_erased::<GSet<u16>>(n, &schedule, |id, params| {
            Box::new(EngineAdapter::<GSet<u16>, ClassicDelta<GSet<u16>>>::new(id, params))
        });
        assert_parity(generic, erased);
    }

    /// BP+RR: erased == generic for every random schedule.
    #[test]
    fn bp_rr_delta_parity(schedule in gset_schedule()) {
        let n = schedule[0].len();
        let generic = run_generic::<GSet<u16>, BpRrDelta<GSet<u16>>>(n, &schedule);
        let erased = run_erased::<GSet<u16>>(n, &schedule, |id, params| {
            Box::new(EngineAdapter::<GSet<u16>, BpRrDelta<GSet<u16>>>::new(id, params))
        });
        assert_parity(generic, erased);
    }

    /// Parity holds beyond grow-only sets: PNCounter (map-of-pairs shape)
    /// through BP+RR.
    #[test]
    fn bp_rr_pncounter_parity(schedule in pncounter_schedule()) {
        let n = schedule[0].len();
        let generic = run_generic::<PNCounter, BpRrDelta<PNCounter>>(n, &schedule);
        let erased = run_erased::<PNCounter>(n, &schedule, |id, params| {
            Box::new(EngineAdapter::<PNCounter, BpRrDelta<PNCounter>>::new(id, params))
        });
        assert_parity(generic, erased);
    }

    /// After enough extra sync rounds both paths converge to the same
    /// totals — and to each other across paths.
    #[test]
    fn converged_states_agree_across_paths(schedule in gset_schedule()) {
        let n = schedule[0].len();
        // Extend the schedule with idle rounds so both paths converge.
        let mut extended = schedule.clone();
        for _ in 0..4 {
            extended.push(vec![Vec::new(); n]);
        }
        let (_, generic) = run_generic::<GSet<u16>, BpRrDelta<GSet<u16>>>(n, &extended);
        let (_, erased) = run_erased::<GSet<u16>>(n, &extended, |id, params| {
            Box::new(EngineAdapter::<GSet<u16>, BpRrDelta<GSet<u16>>>::new(id, params))
        });
        // Convergence within each path…
        for w in generic.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
        // …and equality across paths.
        prop_assert_eq!(&generic[0], &erased[0]);
        // Element counts agree with the op multiset (unique adds only).
        let mut expected = std::collections::BTreeSet::new();
        for round in &schedule {
            for ops in round {
                for GSetOp::Add(e) in ops {
                    expected.insert(*e);
                }
            }
        }
        prop_assert_eq!(generic[0].len(), expected.len());
    }
}

// ---------------------------------------------------------------------------
// Fault tolerance: partition→heal, crash→restart, stale acks
// ---------------------------------------------------------------------------

use crdt_sync::{build_engine, ProtocolKind};
use crdt_types::{GCounter, GCounterOp};

/// One engine round over a full mesh with a fault filter: live nodes run
/// their ops and a sync step towards *every* neighbor (senders do not
/// learn of faults), then LIFO delivery to quiescence drops anything the
/// filter rejects — crashed recipients and cross-partition edges.
fn faulted_round(
    nodes: &mut [Box<dyn SyncEngine>],
    ops: &[Vec<GSetOp<u16>>],
    alive: &[bool],
    side: Option<&[usize]>,
) {
    let n = nodes.len();
    let open =
        |from: usize, to: usize| alive[from] && alive[to] && side.is_none_or(|s| s[from] == s[to]);
    let mut deliveries: Vec<WireEnvelope> = Vec::new();
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        for op in &ops[i] {
            nodes[i].on_op(&OpBytes::encode(op)).expect("op decodes");
        }
    }
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        let neighbors: Vec<ReplicaId> = (0..n).filter(|j| *j != i).map(ReplicaId::from).collect();
        deliveries.extend(nodes[i].on_sync(&neighbors));
    }
    while let Some(env) = deliveries.pop() {
        if !open(env.from.index(), env.to.index()) {
            continue;
        }
        let to = env.to.index();
        deliveries.extend(nodes[to].on_msg(env).expect("kind matches"));
    }
}

/// Bidirectional snapshot exchange through the engine bootstrap hooks.
fn bootstrap_pair(nodes: &mut [Box<dyn SyncEngine>], a: usize, b: usize) {
    let (lo, hi) = (a.min(b), a.max(b));
    let (left, right) = nodes.split_at_mut(hi);
    left[lo]
        .bootstrap_from(right[0].as_ref())
        .expect("same kind");
    right[0]
        .bootstrap_from(left[lo].as_ref())
        .expect("same kind");
}

/// The repair policy of the scenario layer, at engine level: protocols
/// that recover from loss on their own are left alone; everything else is
/// stitched via two bootstrap passes through node 0.
fn stitch(nodes: &mut [Box<dyn SyncEngine>], kind: ProtocolKind) {
    if kind.recovers_from_loss() {
        return;
    }
    for _pass in 0..2 {
        for i in 1..nodes.len() {
            bootstrap_pair(nodes, 0, i);
        }
    }
}

fn assert_all_converged(nodes: &[Box<dyn SyncEngine>], alive: &[bool], expected: usize, ctx: &str) {
    let live: Vec<usize> = (0..nodes.len()).filter(|i| alive[*i]).collect();
    for w in live.windows(2) {
        assert!(
            nodes[w[0]].state_eq(nodes[w[1]].as_ref()),
            "{ctx}: replicas {} and {} diverged",
            w[0],
            w[1]
        );
    }
    assert_eq!(
        nodes[live[0]].state_elements(),
        expected as u64,
        "{ctx}: element count wrong"
    );
}

fn expected_elements(schedule: &Schedule<GSetOp<u16>>, skip_node: Option<usize>) -> usize {
    let mut set = std::collections::BTreeSet::new();
    for round in schedule {
        for (i, ops) in round.iter().enumerate() {
            if Some(i) == skip_node {
                continue;
            }
            for GSetOp::Add(e) in ops {
                set.insert(*e);
            }
        }
    }
    set.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every protocol kind re-converges after a partition heals: the
    /// cluster splits in half mid-run, keeps updating on both sides, then
    /// heals with the scenario repair policy applied.
    #[test]
    fn every_kind_reconverges_after_partition_heal(schedule in gset_schedule()) {
        let n = schedule[0].len().max(3);
        // One side is {0}, the other the rest (smallest cut that exists
        // for every generated n).
        let side: Vec<usize> = (0..n).map(|i| usize::from(i > 0)).collect();
        let alive = vec![true; n];
        for kind in ProtocolKind::ALL {
            let params = Params::new(n);
            let mut nodes: Vec<Box<dyn SyncEngine>> = (0..n)
                .map(|i| build_engine::<GSet<u16>>(kind, ReplicaId::from(i), &params))
                .collect();
            let pad = vec![Vec::new(); n - schedule[0].len()];
            for round in &schedule {
                let mut ops = round.clone();
                ops.extend_from_slice(&pad);
                faulted_round(&mut nodes, &ops, &alive, Some(&side));
            }
            stitch(&mut nodes, kind);
            let idle = vec![Vec::new(); n];
            for _ in 0..4 {
                faulted_round(&mut nodes, &idle, &alive, None);
            }
            assert_all_converged(&nodes, &alive, expected_elements(&schedule, None),
                &format!("{kind} partition→heal"));
        }
    }

    /// Every protocol kind re-converges after a crash with durable state
    /// and a restart: node n-1 is down for the whole schedule (its
    /// pre-crash state survives), the rest keep updating, then it
    /// restarts and is repaired per policy.
    #[test]
    fn every_kind_reconverges_after_durable_crash_restart(schedule in gset_schedule()) {
        let n = schedule[0].len().max(3);
        let crashed = n - 1;
        for kind in ProtocolKind::ALL {
            let params = Params::new(n);
            let mut nodes: Vec<Box<dyn SyncEngine>> = (0..n)
                .map(|i| build_engine::<GSet<u16>>(kind, ReplicaId::from(i), &params))
                .collect();
            let mut alive = vec![true; n];
            alive[crashed] = false;
            let pad = vec![Vec::new(); n - schedule[0].len()];
            for round in &schedule {
                let mut ops = round.clone();
                ops.extend_from_slice(&pad);
                faulted_round(&mut nodes, &ops, &alive, None);
            }
            alive[crashed] = true;
            // Durable restart: loss-recovering kinds come back on their
            // own; the rest need the bootstrap exchange.
            if !kind.recovers_from_loss() {
                bootstrap_pair(&mut nodes, crashed, 0);
            }
            let idle = vec![Vec::new(); n];
            for _ in 0..4 {
                faulted_round(&mut nodes, &idle, &alive, None);
            }
            assert_all_converged(&nodes, &alive,
                expected_elements(&schedule, Some(crashed)),
                &format!("{kind} durable crash→restart"));
        }
    }

    /// Non-durable restart of the acked variant must not deadlock on
    /// stale acks: peers hold `acked[node]` positions from before the
    /// crash and have pruned those buffer entries, so only the bootstrap
    /// exchange can restore the content — after it, the protocol's own
    /// retransmission machinery finishes the job instead of wedging.
    #[test]
    fn acked_non_durable_restart_does_not_deadlock(schedule in gset_schedule()) {
        let kind = ProtocolKind::Acked;
        let n = schedule[0].len().max(3);
        let params = Params::new(n);
        let mut nodes: Vec<Box<dyn SyncEngine>> = (0..n)
            .map(|i| build_engine::<GSet<u16>>(kind, ReplicaId::from(i), &params))
            .collect();
        let alive = vec![true; n];
        // Normal operation (acks flow, buffers prune).
        let pad = vec![Vec::new(); n - schedule[0].len()];
        for round in &schedule {
            let mut ops = round.clone();
            ops.extend_from_slice(&pad);
            faulted_round(&mut nodes, &ops, &alive, None);
        }
        // Node 1 loses its state and restarts cold from a live peer.
        nodes[1].reset();
        prop_assert_eq!(nodes[1].state_elements(), 0);
        bootstrap_pair(&mut nodes, 1, 0);
        // Bounded idle rounds must reach convergence — a stale-ack wedge
        // would leave node 1 permanently behind.
        let idle = vec![Vec::new(); n];
        for _ in 0..4 {
            faulted_round(&mut nodes, &idle, &alive, None);
        }
        assert_all_converged(&nodes, &alive, expected_elements(&schedule, None),
            "acked non-durable restart");
    }
}

/// Without repair, a healed partition leaves the delta family diverged —
/// the gap the scenario subsystem's repair policy exists to close.
#[test]
fn delta_family_stays_diverged_without_repair() {
    let n = 4;
    let params = Params::new(n);
    let mut nodes: Vec<Box<dyn SyncEngine>> = (0..n)
        .map(|i| build_engine::<GSet<u16>>(ProtocolKind::BpRr, ReplicaId::from(i), &params))
        .collect();
    let alive = vec![true; n];
    let side = vec![0, 0, 1, 1];
    let ops: Vec<Vec<GSetOp<u16>>> = (0..n).map(|i| vec![GSetOp::Add(i as u16)]).collect();
    faulted_round(&mut nodes, &ops, &alive, Some(&side));
    // A further partitioned round drains the δ-buffers within each side —
    // the partition-era novelty is now nowhere but in the states.
    let idle = vec![Vec::new(); n];
    faulted_round(&mut nodes, &idle, &alive, Some(&side));
    // Healed, but no repair: the cross-cut deltas are gone for good.
    for _ in 0..6 {
        faulted_round(&mut nodes, &idle, &alive, None);
    }
    assert!(
        !nodes[0].state_eq(nodes[3].as_ref()),
        "partition-era novelty cannot be recovered by rounds alone"
    );
    // The stitch closes exactly that gap.
    stitch(&mut nodes, ProtocolKind::BpRr);
    for _ in 0..4 {
        faulted_round(&mut nodes, &idle, &alive, None);
    }
    assert!(nodes[0].state_eq(nodes[3].as_ref()));
    assert_eq!(nodes[0].state_elements(), n as u64);
}

/// Op-based bootstrap adopts the delivery clock with the state: ops the
/// snapshot already reflects must be recognized as duplicates on
/// redelivery. GCounter makes double-application visible (`Inc` is not
/// idempotent).
#[test]
fn opbased_bootstrap_does_not_double_apply() {
    let params = Params::new(2);
    let a = ReplicaId(0);
    let b = ReplicaId(1);
    let mut ea = build_engine::<GCounter>(ProtocolKind::OpBased, a, &params);
    let mut eb = build_engine::<GCounter>(ProtocolKind::OpBased, b, &params);
    for _ in 0..3 {
        ea.on_op(&OpBytes::encode(&GCounterOp::Inc(a))).unwrap();
    }
    // B bootstraps from A (state + delivered clock)…
    eb.bootstrap_from(ea.as_ref()).unwrap();
    // …then receives A's original ops through the normal channel.
    for env in ea.on_sync(&[b]) {
        eb.on_msg(env).unwrap();
    }
    let count = eb.state_any().downcast_ref::<GCounter>().unwrap().value();
    assert_eq!(count, 3, "redelivered ops must be deduplicated");
}

/// The model-view accounting in envelopes equals the generic `Measured`
/// numbers under the same size model (not just elements — bytes too).
#[test]
fn envelope_accounting_equals_measured() {
    let params = Params::new(2);
    let model = SizeModel::compact();
    let a = ReplicaId(0);
    let b = ReplicaId(1);

    let mut generic: BpRrDelta<GSet<u16>> = Protocol::new(a, &params);
    let mut erased = EngineAdapter::<GSet<u16>, BpRrDelta<GSet<u16>>>::new(a, &params);
    for e in 0..20u16 {
        generic.on_op(&GSetOp::Add(e));
        erased.on_op(&OpBytes::encode(&GSetOp::Add(e))).unwrap();
    }
    let mut out = Vec::new();
    generic.on_sync(&[b], &mut out);
    let (_, msg) = out.pop().unwrap();
    let env = erased.on_sync(&[b]).pop().unwrap();

    assert_eq!(env.accounting.payload_elements, msg.payload_elements());
    assert_eq!(env.accounting.payload_bytes, msg.payload_bytes(&model));
    assert_eq!(env.accounting.metadata_bytes, msg.metadata_bytes(&model));
    assert_eq!(env.accounting.encoded_bytes, env.payload.len() as u64);
}
