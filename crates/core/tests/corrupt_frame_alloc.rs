//! Allocation budget of corrupt-frame decoding: no decode path may
//! allocate more than a small constant multiple of the input it was
//! handed, no matter what length fields the frame claims.
//!
//! This is the teeth behind the `Vec::with_capacity` length caps: a
//! frame claiming 2^40 entries must fail with `CodecError` *before* any
//! proportional preallocation, not abort the process on a multi-GB
//! `Vec`. The counting allocator is installed process-wide, so this
//! binary holds exactly one measuring test (parallel tests would bleed
//! into each other's windows).

use crdt_lattice::{Lattice, WireEncode};
use crdt_sync::{
    BatchEnvelope, Bytes, DeltaMsg, ProtocolKind, SbMsg, WireAccounting, WireEnvelope,
};
use crdt_types::{AWSet, CausalContext, GSet, ORSetMap};

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

/// Worst-case bytes a decoder may allocate per input byte. Entries
/// materialize as `(key, WireEnvelope)` pairs (~100 B each) from ~4 wire
/// bytes, so the honest constant is a couple dozen; 256 leaves room for
/// container rounding without ever excusing a length-trusting decoder
/// (the attack frames below claim *gigabytes*).
const BYTES_PER_INPUT_BYTE: u64 = 256;
const SLACK: u64 = 2048;

fn assert_bounded(label: &str, input: &[u8], stats: testkit_alloc::AllocStats) {
    let limit = BYTES_PER_INPUT_BYTE * input.len() as u64 + SLACK;
    assert!(
        stats.allocated_bytes <= limit,
        "{label}: decoding {} input bytes allocated {} bytes (peak request {}; limit {limit})",
        input.len(),
        stats.allocated_bytes,
        stats.peak_request,
    );
}

fn stamp_varint(frame: &[u8], pos: usize) -> Vec<u8> {
    let mut bad = frame.to_vec();
    for (i, b) in [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]
        .into_iter()
        .enumerate()
    {
        if pos + i < bad.len() {
            bad[pos + i] = b;
        }
    }
    bad
}

#[test]
fn corrupt_frames_never_overallocate() {
    assert!(
        testkit_alloc::is_installed(),
        "the counting allocator must be this binary's global allocator"
    );

    // A realistic batch frame: 64 objects, small payloads.
    let mut batch: BatchEnvelope<u32> = BatchEnvelope::new();
    for k in 0..64u32 {
        let payload = GSet::from_iter([u64::from(k), u64::from(k) + 1]).to_bytes();
        batch.push(
            k,
            WireEnvelope {
                from: crdt_lattice::ReplicaId(0),
                to: crdt_lattice::ReplicaId(1),
                kind: ProtocolKind::BpRr,
                accounting: WireAccounting {
                    payload_elements: 2,
                    payload_bytes: 16,
                    metadata_bytes: 0,
                    encoded_bytes: payload.len() as u64,
                },
                payload: payload.into(),
            },
        );
    }
    let frame = batch.to_bytes();

    // Stamp a maximal varint over every position: whichever field lands
    // there (entry count, key, payload length, accounting) now claims
    // an absurd value. Decode must error (or survive benignly) within
    // the allocation budget.
    for pos in 0..frame.len() {
        let bad = stamp_varint(&frame, pos);
        let (result, stats) =
            testkit_alloc::measure(|| BatchEnvelope::<u32>::from_bytes(&bad).map(|b| b.len()));
        std::hint::black_box(&result);
        assert_bounded("batch/from_bytes", &bad, stats);

        let shared = Bytes::copy_from_slice(&bad);
        let (result, stats) = testkit_alloc::measure(|| {
            BatchEnvelope::<u32>::decode_shared(&shared).map(|b| b.len())
        });
        std::hint::black_box(&result);
        assert_bounded("batch/decode_shared", &bad, stats);
    }

    // Truncations of the honest frame.
    for cut in 0..frame.len() {
        let (result, stats) = testkit_alloc::measure(|| {
            BatchEnvelope::<u32>::from_bytes(&frame[..cut]).map(|b| b.len())
        });
        assert!(result.is_err(), "strict prefix cannot decode");
        assert_bounded("batch/truncated", &frame[..cut], stats);
    }

    // The classic attack on bare collections: tiny frames claiming 2^40
    // elements, against each protocol-message decoder.
    let mut huge = Vec::new();
    crdt_lattice::codec::put_uvarint(&mut huge, 1 << 40);
    huge.push(7);
    let (r, stats) = testkit_alloc::measure(|| DeltaMsg::<GSet<u64>>::from_bytes(&huge).is_err());
    assert!(r);
    assert_bounded("delta/hostile-count", &huge, stats);
    let mut sb = vec![1u8]; // SbMsg::Reply discriminant
    crdt_lattice::codec::put_uvarint(&mut sb, 1 << 40);
    let (r, stats) = testkit_alloc::measure(|| SbMsg::<GSet<u64>>::from_bytes(&sb).is_err());
    assert!(r);
    assert_bounded("scuttlebutt/hostile-count", &sb, stats);

    // Merkle repair-descent frames: a populated frontier + leaf-repair
    // exchange, varint-stamped at every position (entry counts, leaf
    // prefixes, hashes) and truncated at every point. These frames feed
    // the multi-round socket descent, so a length-trusting decoder here
    // would let one hostile peer OOM every repair partner.
    let children = crdt_sync::DivergentChildren {
        nodes: (0..8)
            .map(|level| crdt_sync::ChildList {
                level,
                prefix: u64::from(level) * 11,
                children: (0..16).map(|i| (i, u64::from(i) * 0x9e37)).collect(),
            })
            .collect(),
    };
    let leaves = crdt_sync::LeafRepair {
        leaves: (0..8u64)
            .map(|p| (p, (0..12u64).map(|k| (p * 100 + k, k * 0x9e37)).collect()))
            .collect(),
    };
    for frame in [children.to_bytes(), leaves.to_bytes()] {
        for pos in 0..frame.len() {
            let bad = stamp_varint(&frame, pos);
            let (result, stats) = testkit_alloc::measure(|| {
                (
                    crdt_sync::DivergentChildren::from_bytes(&bad).map(|c| c.nodes.len()),
                    crdt_sync::LeafRepair::<u64>::from_bytes(&bad).map(|l| l.leaves.len()),
                )
            });
            std::hint::black_box(&result);
            assert_bounded("merkle/stamped", &bad, stats);
        }
        for cut in 0..frame.len() {
            let (result, stats) = testkit_alloc::measure(|| {
                (
                    crdt_sync::DivergentChildren::from_bytes(&frame[..cut]).is_err(),
                    crdt_sync::LeafRepair::<u64>::from_bytes(&frame[..cut]).is_err(),
                )
            });
            assert!(result.0 && result.1, "strict prefix cannot decode");
            assert_bounded("merkle/truncated", &frame[..cut], stats);
        }
    }

    // Tiny Merkle frames claiming 2^40 nodes / leaves / children.
    let mut huge_nodes = Vec::new();
    crdt_lattice::codec::put_uvarint(&mut huge_nodes, 1 << 40);
    huge_nodes.push(0);
    let (r, stats) = testkit_alloc::measure(|| {
        crdt_sync::DivergentChildren::from_bytes(&huge_nodes).is_err()
            && crdt_sync::LeafRepair::<u64>::from_bytes(&huge_nodes).is_err()
    });
    assert!(r);
    assert_bounded("merkle/hostile-count", &huge_nodes, stats);

    // Flat causal state frames: a multi-writer AWSet whose context
    // carries cloud dots (deltas joined out of causal order) and a
    // nested ORSetMap. Stamp a maximal varint over every position — the
    // store count, any dot, the clock, the cloud count — and truncate at
    // every point; the run-length guards must reject hostile claims
    // *before* any proportional preallocation.
    let mut producer = AWSet::<u64>::new();
    let mut aw = AWSet::<u64>::new();
    let aw_deltas: Vec<_> = (0..48)
        .map(|i| producer.add(crdt_lattice::ReplicaId((i % 3) as u32), i))
        .collect();
    for i in [40usize, 20, 4, 0, 44, 8] {
        aw.join_assign(aw_deltas[i].clone());
    }
    let mut map = ORSetMap::<u8, u16>::new();
    for k in 0..8u8 {
        for e in 0..4u16 {
            let _ = map.add(crdt_lattice::ReplicaId(u32::from(k) % 3), k, e);
        }
    }
    let _ = map.remove_elem(&3, &1);
    let aw_frame = aw.to_bytes();
    for pos in 0..aw_frame.len() {
        let bad = stamp_varint(&aw_frame, pos);
        let (result, stats) = testkit_alloc::measure(|| {
            (
                AWSet::<u64>::from_bytes(&bad).map(|s| s.to_bytes().len()),
                CausalContext::from_bytes(&bad).is_err(),
            )
        });
        std::hint::black_box(&result);
        assert_bounded("causal-set/stamped", &bad, stats);
    }
    for cut in 0..aw_frame.len() {
        let (result, stats) =
            testkit_alloc::measure(|| AWSet::<u64>::from_bytes(&aw_frame[..cut]).is_err());
        assert!(result, "strict prefix cannot decode");
        assert_bounded("causal-set/truncated", &aw_frame[..cut], stats);
    }
    let map_frame = map.to_bytes();
    for pos in 0..map_frame.len() {
        let bad = stamp_varint(&map_frame, pos);
        let (result, stats) = testkit_alloc::measure(|| {
            ORSetMap::<u8, u16>::from_bytes(&bad).map(|m| m.to_bytes().len())
        });
        std::hint::black_box(&result);
        assert_bounded("causal-map/stamped", &bad, stats);
    }
    for cut in 0..map_frame.len() {
        let (result, stats) =
            testkit_alloc::measure(|| ORSetMap::<u8, u16>::from_bytes(&map_frame[..cut]).is_err());
        assert!(result, "strict prefix cannot decode");
        assert_bounded("causal-map/truncated", &map_frame[..cut], stats);
    }

    // Tiny causal frames claiming 2^40 store entries / cloud dots.
    let mut huge_causal = Vec::new();
    crdt_lattice::codec::put_uvarint(&mut huge_causal, 1 << 40);
    huge_causal.push(3);
    let (r, stats) = testkit_alloc::measure(|| {
        AWSet::<u64>::from_bytes(&huge_causal).is_err()
            && ORSetMap::<u8, u16>::from_bytes(&huge_causal).is_err()
    });
    assert!(r);
    assert_bounded("causal/hostile-store-count", &huge_causal, stats);
    let mut huge_cloud = vec![0u8, 0u8]; // empty store, empty clock
    crdt_lattice::codec::put_uvarint(&mut huge_cloud, 1 << 40);
    let (r, stats) = testkit_alloc::measure(|| {
        AWSet::<u64>::from_bytes(&huge_cloud).is_err()
            && CausalContext::from_bytes(&huge_cloud[1..]).is_err()
    });
    assert!(r);
    assert_bounded("causal/hostile-cloud-count", &huge_cloud, stats);

    // And against the envelope layer: a payload length claiming ~2^62.
    let env = WireEnvelope {
        from: crdt_lattice::ReplicaId(0),
        to: crdt_lattice::ReplicaId(1),
        kind: ProtocolKind::BpRr,
        payload: Bytes::from(vec![1u8, 2, 3]),
        accounting: WireAccounting::default(),
    };
    let env_frame = env.to_bytes();
    for pos in 0..env_frame.len() {
        let bad = stamp_varint(&env_frame, pos);
        let (result, stats) = testkit_alloc::measure(|| WireEnvelope::from_bytes(&bad).is_err());
        std::hint::black_box(result);
        assert_bounded("envelope/from_bytes", &bad, stats);
    }
}
