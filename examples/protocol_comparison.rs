//! Compare synchronization protocols on the paper's GSet micro-benchmark
//! over both Fig. 6 topologies — with the protocol set chosen **at
//! runtime** through the type-erased engine layer.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! cargo run --release --example protocol_comparison -- \
//!     --protocol bp_rr --protocol scuttlebutt-gc
//! cargo run --release --example protocol_comparison -- --protocol all
//! ```
//!
//! Prints the Fig. 7 style transmission table — watch how BP alone
//! matches BP+RR on the (acyclic) tree, while the mesh needs RR. Every
//! run goes through `Box<dyn SyncEngine>` over encoded wire envelopes:
//! the deployment path, selected per run like a `--protocol` flag in a
//! real cluster — no per-protocol monomorphization in this binary.

use crdt_bench::{
    print_table, protocols_from_args, run_dyn_suite, transmission_rows_vs_best,
    TRANSMISSION_HEADERS,
};
use crdt_lattice::SizeModel;
use crdt_sim::Topology;
use crdt_sync::ProtocolKind;
use crdt_types::GSet;
use crdt_workloads::GSetWorkload;

fn main() {
    let kinds = protocols_from_args(&ProtocolKind::ALL);
    let events = 30;
    for topo in [Topology::binary_tree(15), Topology::partial_mesh(15, 4)] {
        let n = topo.len();
        let runs =
            run_dyn_suite::<GSet<u64>, _>(&kinds, &topo, 7, SizeModel::compact(), events, || {
                GSetWorkload::with_events(n, events)
            });
        print_table(
            &format!(
                "GSet transmission on {} (cycles: {}) — dyn engines",
                topo.name(),
                topo.has_cycle()
            ),
            TRANSMISSION_HEADERS,
            &transmission_rows_vs_best(&runs),
        );
    }
    println!(
        "\nreading guide: on the tree, delta+BP ≈ delta+BP+RR (no cycles, nothing to\n\
         extract); on the mesh, only RR reins in the redundant δ-groups and classic\n\
         delta degenerates towards state-based — §V-B of the paper."
    );
}
