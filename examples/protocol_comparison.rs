//! Compare all eight synchronization protocols on the paper's GSet
//! micro-benchmark over both Fig. 6 topologies.
//!
//! ```text
//! cargo run --release -p crdt-bench --example protocol_comparison
//! ```
//!
//! Prints the Fig. 7 style transmission table — watch how BP alone
//! matches BP+RR on the (acyclic) tree, while the mesh needs RR.

use crdt_bench::{print_table, run_suite, transmission_ratio_rows, Suite, TRANSMISSION_HEADERS};
use crdt_lattice::SizeModel;
use crdt_sim::Topology;
use crdt_types::GSet;
use crdt_workloads::GSetWorkload;

fn main() {
    let events = 30;
    for topo in [Topology::binary_tree(15), Topology::partial_mesh(15, 4)] {
        let n = topo.len();
        let runs = run_suite::<GSet<u64>, _>(
            Suite::Full,
            &topo,
            7,
            SizeModel::compact(),
            events,
            || GSetWorkload::with_events(n, events),
        );
        print_table(
            &format!(
                "GSet transmission on {} (cycles: {})",
                topo.name(),
                topo.has_cycle()
            ),
            TRANSMISSION_HEADERS,
            &transmission_ratio_rows(&runs),
        );
    }
    println!(
        "\nreading guide: on the tree, delta+BP ≈ delta+BP+RR (no cycles, nothing to\n\
         extract); on the mesh, only RR reins in the redundant δ-groups and classic\n\
         delta degenerates towards state-based — §V-B of the paper."
    );
}
