//! The observability plane on a live TCP cluster: partition it, crash a
//! node, converge again — then pull the metrics exposition and the
//! flight-recorder trace straight off a socket.
//!
//! Every number printed here comes from the same `crdt-obs` registry
//! cells the engines, the store, and the reactor bump on their hot
//! paths; the trace lines are the structured events the reactor and the
//! fault harness recorded along the way.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::time::Duration;

use crdt_lattice::ReplicaId;
use crdt_net::{LoopbackCluster, NodeConfig};
use crdt_types::{AWSet, AWSetOp};
use delta_store::StoreConfig;

fn main() {
    let store = StoreConfig::new("bp_rr".parse().unwrap());
    let cfg = NodeConfig::new(store, 3).with_scheduler(Duration::from_millis(5));
    let mut cluster: LoopbackCluster<String, AWSet<String>> =
        LoopbackCluster::full_mesh(3, cfg).expect("spawn cluster");

    // Some traffic so every subsystem has something to count.
    for round in 0..4u32 {
        for node in 0..3usize {
            cluster.update(
                node,
                format!("key:{node}"),
                &AWSetOp::Add(ReplicaId(node as u32), format!("v{round}")),
            );
        }
    }
    assert!(
        cluster.await_convergence(Duration::from_secs(10)).converged,
        "pre-fault convergence"
    );

    // A partition and a durable crash/restart: the fault events land in
    // each node's flight recorder as they happen.
    cluster.partition(&[0]);
    cluster.update(
        0,
        "key:0".into(),
        &AWSetOp::Add(ReplicaId(0), "minority".into()),
    );
    cluster.update(
        1,
        "key:1".into(),
        &AWSetOp::Add(ReplicaId(1), "majority".into()),
    );
    cluster.heal_and_repair();

    cluster.crash(2, true);
    cluster.restart(2, Some(0)).expect("restart node 2");
    let report = cluster.await_convergence(Duration::from_secs(10));
    assert!(report.converged, "post-fault convergence: {report}");

    // Live pull over the socket: node 1's full exposition plus the
    // newest 12 trace events — the same bytes `NetClient::stats` gives
    // any external monitor.
    let stats = cluster.client(1).stats(12).expect("stats over socket");
    println!("=== node 1 metrics (pulled over TCP) ===");
    print!("{}", stats.exposition);
    println!("\n=== node 1 flight-recorder tail ===");
    for ev in &stats.trace {
        println!("{}", ev.render());
    }

    // The restarted node's in-process view: its fresh recorder starts
    // at the Restart event the harness traced on the way up.
    println!("\n=== node 2 flight-recorder (post-restart, in-process) ===");
    print!("{}", cluster.node(2).obs().recorder.dump_string());
}
