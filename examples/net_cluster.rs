//! A real TCP cluster on loopback: three nodes, anti-entropy scheduler
//! threads, a client workload over sockets, and the convergence report.
//!
//! Everything the simulators *count*, this example *ships*: every
//! synchronization batch is a length-prefixed frame over an actual
//! `127.0.0.1` connection, decoded zero-copy off the socket buffer.
//!
//! ```text
//! cargo run --release --example net_cluster
//! ```

use std::time::Duration;

use crdt_lattice::ReplicaId;
use crdt_net::{LoopbackCluster, NodeConfig};
use crdt_types::Crdt;
use crdt_types::{AWSet, AWSetOp};
use delta_store::StoreConfig;

fn main() {
    // The protocol is a runtime value, exactly like the in-process
    // store — BP+RR here, but any `ProtocolKind` id parses.
    let store = StoreConfig::new("bp_rr".parse().unwrap());
    let cfg = NodeConfig::new(store, 3).with_scheduler(Duration::from_millis(5));
    let mut cluster: LoopbackCluster<String, AWSet<String>> =
        LoopbackCluster::full_mesh(3, cfg).expect("spawn cluster");
    for i in 0..3 {
        println!("node {i} listening on {}", cluster.addr(i));
    }

    // A client workload over the sockets: two sites build carts.
    cluster.update(
        0,
        "cart:alice".into(),
        &AWSetOp::Add(ReplicaId(0), "oat milk".into()),
    );
    cluster.update(
        2,
        "cart:bob".into(),
        &AWSetOp::Add(ReplicaId(2), "espresso".into()),
    );
    cluster.update(
        1,
        "cart:alice".into(),
        &AWSetOp::Add(ReplicaId(1), "rye bread".into()),
    );

    // The scheduler threads gossip on their own; wait for convergence
    // and print the diagnostic report — the same `ConvergenceReport`
    // type the in-process cluster and the CI scenarios use.
    let report = cluster.await_convergence(Duration::from_secs(10));
    println!("\nconvergence: {report}");
    assert!(report.converged, "loopback cluster failed to converge");

    let alice = cluster.get(2, "cart:alice".into()).unwrap();
    println!("node 2 sees cart:alice = {:?}", alice.value());

    let t = cluster.stats();
    let w = cluster.wire_totals();
    println!(
        "\nmodel view: {} batches, {} elements, {} B (payload {} + metadata {})",
        t.messages,
        t.payload_elements,
        t.total_bytes(),
        t.payload_bytes,
        t.metadata_bytes
    );
    println!(
        "socket view: {} frames, {} wire bytes actually crossed TCP",
        w.frames, w.bytes
    );
}
