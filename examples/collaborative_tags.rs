//! Collaborative tagging with the dot-store framework types: an
//! observed-remove map of tag sets ([`ORSetMap`]), a remove-wins
//! moderation set ([`RWSet`]), and a disable-wins kill switch
//! ([`DWFlag`]) — three different conflict-resolution policies, all
//! synchronized by the same optimal deltas.
//!
//! ```text
//! cargo run --release -p crdt-bench --example collaborative_tags
//! ```

use crdt_lattice::{Lattice, ReplicaId};
use crdt_types::{Crdt, DWFlag, ORSetMap, RWSet};

fn main() {
    let alice = ReplicaId(0);
    let bob = ReplicaId(1);

    // -- tags: add-wins at both levels ---------------------------------------
    // Editors tag documents; removing a tag (or a whole document's entry)
    // only covers what the remover had seen, so concurrent tags survive.
    let mut tags_a: ORSetMap<&str, &str> = ORSetMap::new();
    let mut tags_b: ORSetMap<&str, &str> = ORSetMap::new();

    let d = tags_a.add(alice, "doc-7", "draft");
    tags_b.join_assign(d);

    // Concurrently: Alice clears doc-7's entry; Bob tags it "urgent".
    let d_clear = tags_a.remove_key(&"doc-7");
    let d_tag = tags_b.add(bob, "doc-7", "urgent");
    tags_a.join_assign(d_tag);
    tags_b.join_assign(d_clear);
    assert_eq!(tags_a, tags_b);
    println!(
        "doc-7 tags after clear ∥ tag race: {:?}",
        tags_a.get(&"doc-7")
    );
    assert!(
        tags_a.get(&"doc-7").contains(&&"urgent"),
        "concurrent tag survives"
    );
    assert!(
        !tags_a.get(&"doc-7").contains(&&"draft"),
        "observed tag removed"
    );

    // -- moderation: remove-wins ----------------------------------------------
    // A banned-words list where un-banning must never race-win against a
    // moderator's concurrent ban: remove-wins is the wrong tool (a ban IS
    // an add here), so bans go in an RWSet of *allowed* exceptions — an
    // exception added concurrently with its revocation stays revoked.
    let mut allow_a: RWSet<&str> = RWSet::new();
    let mut allow_b: RWSet<&str> = RWSet::new();

    let d = allow_a.add(alice, "slang-42");
    allow_b.join_assign(d);

    let d_revoke = allow_a.remove(alice, "slang-42");
    let d_re_add = allow_b.add(bob, "slang-42");
    allow_a.join_assign(d_re_add);
    allow_b.join_assign(d_revoke);
    assert_eq!(allow_a, allow_b);
    println!(
        "allow-list after revoke ∥ re-add race: {:?}",
        allow_a.value()
    );
    assert!(!allow_a.contains(&"slang-42"), "revocation wins");

    // -- kill switch: disable-wins ----------------------------------------------
    // The feature gate for the tagging UI: if any operator disables it
    // concurrently with an enable, disabled wins.
    let mut gate_a = DWFlag::new();
    let mut gate_b = DWFlag::new();

    let d = gate_a.enable(alice);
    gate_b.join_assign(d);

    let d_off = gate_a.disable(alice);
    let d_on = gate_b.enable(bob);
    gate_a.join_assign(d_on);
    gate_b.join_assign(d_off);
    assert_eq!(gate_a, gate_b);
    println!(
        "kill switch after disable ∥ enable race: enabled = {}",
        gate_a.is_enabled()
    );
    assert!(!gate_a.is_enabled(), "disable wins");

    // A later (causally sequenced) enable turns it back on.
    let d = gate_a.enable(alice);
    gate_b.join_assign(d);
    assert!(gate_b.is_enabled());
    println!(
        "after a sequenced re-enable:                  enabled = {}",
        gate_b.is_enabled()
    );
}
