//! Quickstart: replicate a set across two nodes with optimal deltas.
//!
//! ```text
//! cargo run --release -p crdt-bench --example quickstart
//! ```
//!
//! Walks through the paper's core ideas on a two-replica GSet:
//! δ-mutators, join decompositions, the optimal delta `Δ(a, b)`, and the
//! BP+RR synchronization protocol.

use crdt_lattice::{Decompose, Lattice, ReplicaId, SizeModel, StateSize};
use crdt_sync::{BpRrDelta, Measured, Params, Protocol};
use crdt_types::{Crdt, GSet, GSetOp};

fn main() {
    let a = ReplicaId(0);
    let b = ReplicaId(1);

    // --- 1. δ-mutators return the smallest delta -------------------------
    let mut x: GSet<&str> = GSet::new();
    let d1 = x.add("apple");
    let d2 = x.add("banana");
    let d3 = x.add("apple"); // already present: δ = ⊥
    println!("add(apple)  -> delta {:?}", d1.value());
    println!("add(banana) -> delta {:?}", d2.value());
    println!(
        "add(apple)  -> delta {:?} (redundant, optimal δ-mutator returns ⊥)",
        d3.value()
    );

    // --- 2. join decompositions and optimal deltas -----------------------
    let y: GSet<&str> = GSet::from_iter(["banana", "cherry"]);
    println!(
        "\n⇓x = {:?}",
        x.decompose().iter().map(GSet::value).collect::<Vec<_>>()
    );
    let delta = x.delta(&y);
    println!("Δ(x, y) = {:?} (only what y is missing)", delta.value());
    assert_eq!(delta.join(y.clone()), x.clone().join(y));

    // --- 3. the BP+RR protocol over a 2-node "network" -------------------
    let params = Params::new(2);
    let mut node_a: BpRrDelta<GSet<&str>> = Protocol::new(a, &params);
    let mut node_b: BpRrDelta<GSet<&str>> = Protocol::new(b, &params);

    node_a.on_op(&GSetOp::Add("from-a"));
    node_b.on_op(&GSetOp::Add("from-b"));

    // One synchronization round each way.
    let model = SizeModel::compact();
    let mut wire = Vec::new();
    node_a.on_sync(&[b], &mut wire);
    node_b.on_sync(&[a], &mut wire);
    println!("\nround 1: {} messages", wire.len());
    for (to, msg) in wire.drain(..) {
        println!(
            "  -> {to}: {} elements, {} bytes",
            msg.payload_elements(),
            msg.total_bytes(&model)
        );
        if to == a {
            node_a.on_msg(b, msg, &mut Vec::new());
        } else {
            node_b.on_msg(a, msg, &mut Vec::new());
        }
    }

    // Second round ships the buffered novelty onward (nothing here, since
    // each node already has everything — BP prevents echo).
    node_a.on_sync(&[b], &mut wire);
    node_b.on_sync(&[a], &mut wire);
    println!("round 2: {} messages (BP suppressed the echo)", wire.len());

    assert_eq!(node_a.state(), node_b.state());
    println!(
        "\nconverged: both replicas hold {:?} ({} elements)",
        node_a.state().value(),
        node_a.state().count_elements()
    );
}
