//! Replicas on OS threads, synchronizing over byte channels — the whole
//! production path: optimal δ-mutators → BP+RR δ-buffers → `WireEncode`
//! frames → `mpsc` transport → decode → join.
//!
//! Three worker threads each own one replica of a shared `GSet` ledger
//! and a `GCounter` of processed events. There is no shared state
//! between threads except the channels; every message is a `Vec<u8>`.
//!
//! ```text
//! cargo run --release -p crdt-bench --example threaded_replicas
//! ```

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::thread;

use crdt_lattice::{ReplicaId, WireEncode};
use crdt_sync::{BpRrDelta, DeltaMsg, Params, Protocol};
use crdt_types::{Crdt, GCounter, GCounterOp, GSet, GSetOp};

/// One frame on the wire: (sender, which object, encoded δ-group).
type Frame = (ReplicaId, u8, Vec<u8>);

const LEDGER: u8 = 0;
const COUNTER: u8 = 1;
const ROUNDS: usize = 20;

struct Worker {
    id: ReplicaId,
    ledger: BpRrDelta<GSet<String>>,
    counter: BpRrDelta<GCounter>,
    neighbor_ids: Vec<ReplicaId>,
    peers: Vec<(ReplicaId, Sender<Frame>)>,
}

impl Worker {
    /// Run one synchronization step for both objects, framing every
    /// δ-group to bytes.
    fn sync(&mut self) {
        let mut out = Vec::new();
        self.ledger.on_sync(&self.neighbor_ids, &mut out);
        for (to, msg) in out.drain(..) {
            self.send(to, LEDGER, msg.to_bytes());
        }
        let mut out = Vec::new();
        self.counter.on_sync(&self.neighbor_ids, &mut out);
        for (to, msg) in out.drain(..) {
            self.send(to, COUNTER, msg.to_bytes());
        }
    }

    fn send(&self, to: ReplicaId, tag: u8, frame: Vec<u8>) {
        let (_, tx) = self.peers.iter().find(|(p, _)| *p == to).expect("peer");
        // A peer that already finished its drain rounds has hung up; for
        // this bounded demo that is fine — it has provably converged.
        let _ = tx.send((self.id, tag, frame));
    }

    /// Absorb every frame currently waiting in the inbox.
    fn drain(&mut self, inbox: &Receiver<Frame>) {
        while let Ok((from, tag, frame)) = inbox.try_recv() {
            match tag {
                LEDGER => {
                    let msg = DeltaMsg::<GSet<String>>::from_bytes(&frame).expect("decode");
                    self.ledger.on_msg(from, msg, &mut Vec::new());
                }
                _ => {
                    let msg = DeltaMsg::<GCounter>::from_bytes(&frame).expect("decode");
                    self.counter.on_msg(from, msg, &mut Vec::new());
                }
            }
        }
    }
}

fn worker(
    id: ReplicaId,
    n: usize,
    inbox: Receiver<Frame>,
    peers: Vec<(ReplicaId, Sender<Frame>)>,
    barrier: Arc<Barrier>,
) -> (GSet<String>, GCounter) {
    let params = Params::new(n);
    let mut w = Worker {
        id,
        ledger: Protocol::new(id, &params),
        counter: Protocol::new(id, &params),
        neighbor_ids: peers.iter().map(|(p, _)| *p).collect(),
        peers,
    };

    for round in 0..ROUNDS {
        // Local work: append a ledger entry, count it.
        w.ledger
            .on_op(&GSetOp::Add(format!("r{}-tx{round}", id.index())));
        w.counter.on_op(&GCounterOp::Inc(id));
        w.sync();
        // Threads run at their own pace; CRDT joins make any
        // interleaving safe.
        w.drain(&inbox);
    }

    // Quiescent shutdown. Barriers bound what can still be in flight:
    // after the first, no thread produces new ops, so draining + one
    // flush sync delivers every original delta (full mesh: one hop);
    // after the second, a final drain absorbs the flush wave. Anything
    // a peer forwards beyond that is redundant by construction (BP+RR
    // on a full mesh) and is dropped with the channels.
    barrier.wait();
    w.drain(&inbox);
    w.sync();
    barrier.wait();
    w.drain(&inbox);

    (w.ledger.state().clone(), w.counter.state().clone())
}

fn main() {
    let n = 3;
    // Build a full mesh of channels.
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..n {
        let (tx, rx) = channel::<Frame>();
        senders.push(tx);
        receivers.push(rx);
    }

    let barrier = Arc::new(Barrier::new(n));
    let mut handles = Vec::new();
    for (i, inbox) in receivers.into_iter().enumerate() {
        let id = ReplicaId::from(i);
        let peers: Vec<(ReplicaId, Sender<Frame>)> = senders
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, tx)| (ReplicaId::from(j), tx.clone()))
            .collect();
        let b = Arc::clone(&barrier);
        handles.push(thread::spawn(move || worker(id, n, inbox, peers, b)));
    }
    drop(senders);

    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("worker"))
        .collect();

    let (ledger0, counter0) = &results[0];
    for (i, (ledger, counter)) in results.iter().enumerate() {
        assert_eq!(ledger, ledger0, "ledger replica {i} diverged");
        assert_eq!(counter, counter0, "counter replica {i} diverged");
    }
    println!(
        "{} threads converged over byte frames: {} ledger entries, counter = {}",
        n,
        ledger0.len(),
        counter0.value()
    );
    assert_eq!(ledger0.len(), n * ROUNDS);
    assert_eq!(counter0.value(), (n * ROUNDS) as u64);
}
