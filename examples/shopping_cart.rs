//! A replicated shopping cart on causal CRDTs — removals without
//! tombstone payloads, add-wins conflict resolution, and a resettable
//! quantity counter, all synchronized with BP+RR deltas.
//!
//! ```text
//! cargo run --release -p crdt-bench --example shopping_cart
//! ```

use crdt_lattice::{Decompose, Lattice, ReplicaId, SizeModel, StateSize};
use crdt_sync::{BpRrDelta, Params, Protocol};
use crdt_types::{AWSet, AWSetOp, CCounter, Crdt};

fn main() {
    let phone = ReplicaId(0);
    let laptop = ReplicaId(1);
    let params = Params::new(2);
    let model = SizeModel::compact();

    // --- the cart item set: add-wins, removable ---------------------------
    let mut cart_phone: BpRrDelta<AWSet<&str>> = Protocol::new(phone, &params);
    let mut cart_laptop: BpRrDelta<AWSet<&str>> = Protocol::new(laptop, &params);

    cart_phone.on_op(&AWSetOp::Add(phone, "espresso beans"));
    cart_phone.on_op(&AWSetOp::Add(phone, "grinder"));
    cart_laptop.on_op(&AWSetOp::Add(laptop, "kettle"));

    // Sync both ways.
    exchange(&mut cart_phone, &mut cart_laptop, phone, laptop);
    println!(
        "after first sync, both devices see: {:?}",
        cart_phone.state().value()
    );

    // Concurrent conflict: the phone removes the grinder while the laptop
    // re-adds it (having seen it). Add wins.
    cart_phone.on_op(&AWSetOp::Remove("grinder"));
    cart_laptop.on_op(&AWSetOp::Add(laptop, "grinder"));
    exchange(&mut cart_phone, &mut cart_laptop, phone, laptop);
    assert_eq!(cart_phone.state(), cart_laptop.state());
    println!(
        "concurrent remove vs re-add -> add wins: {:?}",
        cart_phone.state().value()
    );

    // A removal delta carries dots only — no element payload travels.
    let mut probe = cart_phone.state().clone();
    let removal = {
        let mut tmp = probe.clone();
        let d = tmp.remove(&"kettle");
        probe = tmp;
        d
    };
    println!(
        "removal delta: {} live entries, {} bytes (pure causal context)",
        removal.decompose().iter().filter(|p| !p.is_empty()).count(),
        removal.size_bytes(&model),
    );
    let _ = probe;

    // --- quantity of espresso beans: a resettable counter ------------------
    let mut qty_phone = CCounter::new();
    let mut qty_laptop = CCounter::new();
    let d1 = qty_phone.add(phone, 2);
    qty_laptop.join_assign(d1);
    // Laptop empties the cart line while the phone bumps it once more.
    let d_reset = qty_laptop.reset();
    let d_bump = qty_phone.add(phone, 1);
    qty_phone.join_assign(d_reset);
    qty_laptop.join_assign(d_bump);
    assert_eq!(qty_phone, qty_laptop);
    println!(
        "reset ∥ +1 -> quantity {} (the concurrent increment survives the reset)",
        qty_phone.total()
    );
}

fn exchange<C: Crdt>(a: &mut BpRrDelta<C>, b: &mut BpRrDelta<C>, ida: ReplicaId, idb: ReplicaId) {
    // Two rounds so novelty buffered from the first delivery drains.
    for _ in 0..2 {
        let mut wire = Vec::new();
        a.on_sync(&[idb], &mut wire);
        b.on_sync(&[ida], &mut wire);
        for (to, msg) in wire {
            if to == ida {
                a.on_msg(idb, msg, &mut Vec::new());
            } else {
                b.on_msg(ida, msg, &mut Vec::new());
            }
        }
    }
}
