//! Retwis in action: a small social network replicated over a 10-node
//! mesh with per-object delta synchronization.
//!
//! ```text
//! cargo run --release -p crdt-bench --example retwis_demo
//! ```

use crdt_lattice::ReplicaId;
use crdt_lattice::SizeModel;
use crdt_sim::{ShardedDeltaRunner, Topology};
use crdt_sync::DeltaConfig;
use crdt_types::GSet;
use crdt_workloads::{RetwisConfig, RetwisStore, RetwisTrace, Timeline, UserId, Wall};

fn main() {
    let topo = Topology::partial_mesh(10, 4);
    let model = SizeModel::compact();
    let cfg = RetwisConfig {
        n_users: 200,
        zipf: 1.0,
        ops_per_node_per_round: 3,
        max_fanout: 10,
        seed: 2024,
    };
    let rounds = 12;
    let trace = RetwisTrace::generate(cfg, topo.len(), rounds);
    println!(
        "generated {} rounds: {} follows, {} posts, {} timeline reads ({} CRDT updates)",
        rounds,
        trace.stats.follows,
        trace.stats.posts,
        trace.stats.timeline_reads,
        trace.total_updates(),
    );

    // One sharded runner per object family, all BP+RR.
    let mut followers: ShardedDeltaRunner<UserId, GSet<UserId>> =
        ShardedDeltaRunner::new(topo.clone(), DeltaConfig::BP_RR, model);
    let mut walls: ShardedDeltaRunner<UserId, Wall> =
        ShardedDeltaRunner::new(topo.clone(), DeltaConfig::BP_RR, model);
    let mut timelines: ShardedDeltaRunner<UserId, Timeline> =
        ShardedDeltaRunner::new(topo.clone(), DeltaConfig::BP_RR, model);

    for round in &trace.rounds {
        followers.step(
            &round
                .iter()
                .map(|n| n.followers.clone())
                .collect::<Vec<_>>(),
        );
        walls.step(&round.iter().map(|n| n.walls.clone()).collect::<Vec<_>>());
        timelines.step(
            &round
                .iter()
                .map(|n| n.timelines.clone())
                .collect::<Vec<_>>(),
        );
    }
    let f = followers
        .run_to_convergence(64)
        .expect("followers converge");
    let w = walls.run_to_convergence(64).expect("walls converge");
    let t = timelines
        .run_to_convergence(64)
        .expect("timelines converge");
    println!("converged after {} extra rounds", f.max(w).max(t));

    // Read the hot user's world from an arbitrary replica.
    let observer = ReplicaId(7);
    let hot: UserId = 0;
    if let Some(set) = followers.object_state(observer, &hot) {
        println!(
            "\nuser {hot} has {} followers (read at node {observer})",
            set.len()
        );
    }
    if let Some(wall) = walls.object_state(observer, &hot) {
        println!("user {hot} posted {} tweets", wall.len());
    }
    if let Some(tl) = timelines.object_state(observer, &hot) {
        let mut entries: Vec<_> = tl.iter().map(|(ts, id)| (*ts, id.get().clone())).collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.0));
        println!(
            "user {hot}'s timeline, newest first (top {}):",
            entries.len().min(5)
        );
        for (ts, id) in entries.iter().take(5) {
            println!("  ts={ts:<6} {id}");
        }
    }

    // The same data also works as one composed store lattice, if you'd
    // rather hold it in a single value:
    let mut composed = RetwisStore::new();
    use crdt_types::Crdt;
    let _ = composed.apply(&crdt_workloads::RetwisOp::Follow {
        follower: 1,
        followee: 0,
    });
    println!(
        "\n(composed-store view also available: {:?})",
        composed.value()
    );

    let m = followers
        .metrics()
        .merged(walls.metrics())
        .merged(timelines.metrics());
    println!(
        "totals: {} messages, {} elements, {} payload bytes",
        m.total_messages(),
        m.total_elements(),
        m.total_payload_bytes()
    );
}
