//! Repairing two replicas after a network partition with state-driven and
//! digest-driven synchronization (paper §VI, reference [30] — the same
//! join decompositions at work).
//!
//! ```text
//! cargo run --release -p crdt-bench --example partition_repair
//! ```

use crdt_lattice::{Lattice, ReplicaId, SizeModel};
use crdt_sync::digest::{digest_driven_sync, state_driven_sync, Digest};
use crdt_types::{Crdt, GCounter, GCounterOp, GSet};

fn main() {
    let model = SizeModel::compact();

    // Two replicas of a large, mostly shared set diverge during a
    // partition: each side learns a handful of private elements.
    let shared: Vec<u64> = (0..10_000).collect();
    let mut left: GSet<u64> = shared.iter().copied().collect();
    let mut right: GSet<u64> = shared.iter().copied().collect();
    for i in 0..25 {
        let _ = left.add(1_000_000 + i);
        let _ = right.add(2_000_000 + i);
    }

    println!(
        "after the partition: left {} elements, right {}",
        left.len(),
        right.len()
    );
    println!(
        "digest of left: {} hashes ({} B)",
        Digest::of(&left).len(),
        Digest::of(&left).size_bytes()
    );

    // Naive repair: both sides ship their full state (what plain
    // state-based synchronization would do).
    let naive_elements = left.len() + right.len();

    // State-driven repair: 2 messages, one full state + one delta.
    let (mut l1, mut r1) = (left.clone(), right.clone());
    let sd = state_driven_sync(&mut l1, &mut r1, &model);
    assert_eq!(l1, r1);

    // Digest-driven repair: 3 messages, no full state at all.
    let (mut l2, mut r2) = (left.clone(), right.clone());
    let dd = digest_driven_sync(&mut l2, &mut r2, &model);
    assert_eq!(l2, r2);
    assert_eq!(l1, l2);

    println!("\nrepair cost (payload elements):");
    println!("  bidirectional full state : {naive_elements}");
    println!(
        "  state-driven  (2 msgs)   : {} (+ {} B metadata)",
        sd.payload_elements, sd.metadata_bytes
    );
    println!(
        "  digest-driven (3 msgs)   : {} (+ {} B metadata)",
        dd.payload_elements, dd.metadata_bytes
    );
    println!(
        "  digest-driven shipped {}x less payload than full-state repair",
        naive_elements as u64 / dd.payload_elements.max(1)
    );

    // Works for any decomposable lattice — counters too.
    let a = ReplicaId(0);
    let b = ReplicaId(1);
    let mut ca = GCounter::new();
    let mut cb = GCounter::new();
    let _ = ca.apply(&GCounterOp::IncBy(a, 100));
    let _ = cb.apply(&GCounterOp::IncBy(b, 50));
    let expect = ca.clone().join(cb.clone());
    let stats = digest_driven_sync(&mut ca, &mut cb, &model);
    assert_eq!(ca, cb);
    assert_eq!(ca, expect);
    println!(
        "\ncounters repaired too: value = {} ({} elements exchanged)",
        ca.value(),
        stats.payload_elements
    );
}
