//! A geo-replicated session store on `delta-store` — the multi-object
//! library layer over delta-based BP+RR synchronization.
//!
//! Three "datacenters" replicate a keyspace of user carts (add-wins
//! sets). The run demonstrates: lazy object creation, one-round gossip,
//! a network partition with divergent writes on both sides, and
//! digest-driven repair that ships only the missing join-irreducibles.
//!
//! ```text
//! cargo run --release -p crdt-bench --example replicated_store
//! ```

use crdt_lattice::ReplicaId;
use crdt_types::{AWSet, AWSetOp, Crdt};
use delta_store::{Cluster, StoreConfig};

fn main() {
    // Datacenters: 0 = us-east, 1 = eu-west, 2 = ap-south, fully meshed.
    let mut cluster: Cluster<String, AWSet<String>> = Cluster::full_mesh(3, StoreConfig::default());
    let dc = ["us-east", "eu-west", "ap-south"];

    // -- normal operation ----------------------------------------------------
    cluster.update(
        0,
        "cart:alice".into(),
        &AWSetOp::Add(ReplicaId(0), "oat milk".to_string()),
    );
    cluster.update(
        0,
        "cart:alice".into(),
        &AWSetOp::Add(ReplicaId(0), "rye bread".to_string()),
    );
    cluster.update(
        1,
        "cart:bob".into(),
        &AWSetOp::Add(ReplicaId(1), "espresso".to_string()),
    );
    cluster.sync_round();

    println!("after one sync round:");
    for (i, name) in dc.iter().enumerate() {
        let keys: Vec<_> = cluster.replica(i).keys().cloned().collect();
        println!("  {name:8} sees objects {keys:?}");
    }
    assert!(cluster.converged());

    // -- partition: ap-south is cut off ---------------------------------------
    cluster.partition(&[2]);
    println!(
        "\n-- partition: {{{}}} | {{{}, {}}} --",
        dc[2], dc[0], dc[1]
    );

    // Both sides keep accepting writes (availability under partition).
    cluster.update(
        0,
        "cart:alice".into(),
        &AWSetOp::Remove("oat milk".to_string()),
    );
    cluster.update(
        2,
        "cart:alice".into(),
        &AWSetOp::Add(ReplicaId(2), "matcha".to_string()),
    );
    cluster.update(
        2,
        "cart:carol".into(),
        &AWSetOp::Add(ReplicaId(2), "noodles".to_string()),
    );
    for _ in 0..3 {
        cluster.sync_round(); // cross-cut messages are silently dropped
    }
    let east = cluster.replica(0).get("cart:alice".into()).unwrap();
    let south = cluster.replica(2).get("cart:alice".into()).unwrap();
    println!("  {:8} cart:alice = {:?}", dc[0], east.value());
    println!("  {:8} cart:alice = {:?}", dc[2], south.value());
    assert!(!cluster.converged());

    // -- heal + digest repair -------------------------------------------------
    // The δ-buffers drained into the void during the partition, so gossip
    // alone cannot recover. Digest-driven repair (§VI of the paper, [30])
    // exchanges digests and ships only the missing irreducibles.
    cluster.heal();
    let stats = cluster.digest_repair(0, 2);
    println!(
        "\ndigest repair: {} messages, {} elements, {} payload B + {} digest B",
        stats.messages, stats.payload_elements, stats.payload_bytes, stats.metadata_bytes
    );
    // `run_until_converged` returns a diagnostic `ConvergenceReport` —
    // print it instead of only asserting, so the run's shape (rounds,
    // in-flight batches, divergent replicas on failure) is visible.
    let report = cluster.run_until_converged(8);
    println!("\nconvergence: {report}");
    report.expect_converged("converged after repair");

    let merged = cluster.replica(1).get("cart:alice".into()).unwrap();
    println!("\nconverged cart:alice = {:?}", merged.value());
    // The remove at us-east happened after "oat milk" was known there;
    // the concurrent "matcha" add survives — add-wins semantics.
    assert!(!merged.contains(&"oat milk".to_string()));
    assert!(merged.contains(&"matcha".to_string()) && merged.contains(&"rye bread".to_string()));
    assert!(cluster.replica(0).get("cart:carol".into()).is_some());

    let t = cluster.stats();
    println!(
        "total gossip traffic: {} batches, {} elements, {} B",
        t.messages,
        t.payload_elements,
        t.total_bytes()
    );
}
