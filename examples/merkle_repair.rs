//! Merkle-tree keyspace anti-entropy: localize divergence before
//! repairing it, then let causal-stability compaction drop the metadata
//! the repair made stable.
//!
//! A 5 000-object store diverges in exactly 3 objects during a
//! partition. The §VI per-object sweep exchanges a digest for every
//! object either side holds; the Merkle descent walks the keyspace tree
//! (fanout 16), prunes every subtree whose hashes agree, and scopes the
//! same handshake to the 3 diverged keys.
//!
//! ```text
//! cargo run --release --example merkle_repair
//! ```

use crdt_sync::{diff_keys, ProtocolKind};
use crdt_types::{GSet, GSetOp};
use delta_store::{Cluster, StoreConfig};

const KEYSPACE: u64 = 5_000;

/// A converged 2-replica pair that diverges in 3 objects while the
/// link between them is down.
fn diverged_pair() -> Cluster<u64, GSet<u32>> {
    let mut c: Cluster<u64, GSet<u32>> =
        Cluster::full_mesh(2, StoreConfig::new(ProtocolKind::BpRr));
    for k in 0..KEYSPACE {
        c.update(0, k, &GSetOp::Add(k as u32));
    }
    c.run_until_converged(4).expect_converged("seed keyspace");
    c.partition(&[0]);
    c.update(0, 17, &GSetOp::Add(1_000_001));
    c.update(1, 2_048, &GSetOp::Add(1_000_002));
    c.update(0, 4_999, &GSetOp::Add(1_000_003));
    c.sync_round(); // δ-buffers drain into the severed link
    c.heal();
    c
}

fn main() {
    // Path 1: the paper's §VI handshake over every object.
    let mut sweep = diverged_pair();
    let sweep_stats = sweep.digest_repair(0, 1);
    assert!(sweep.converged());

    // Path 2: descend the keyspace trees first. The descent is
    // read-only, so we can watch it standalone before repairing.
    let mut merkle = diverged_pair();
    let tree0 = merkle.replica_mut(0).merkle().clone();
    let (diverged, descent) = diff_keys(&tree0, merkle.replica_mut(1).merkle());
    println!(
        "descent: {} rounds, {} frames, {} control B + {} leaf B",
        descent.rounds, descent.frames, descent.control_bytes, descent.leaf_bytes
    );
    println!("localized {:?} out of {KEYSPACE} objects\n", diverged);
    assert_eq!(diverged.len(), 3);

    let merkle_stats = merkle.merkle_repair(0, 1);
    assert!(merkle.converged());

    println!("repair cost over a {KEYSPACE}-object keyspace, 3 diverged:");
    println!(
        "  per-object sweep : {:>5} msgs, {:>8} metadata B, {} payload elements",
        sweep_stats.messages, sweep_stats.metadata_bytes, sweep_stats.payload_elements
    );
    println!(
        "  merkle descent   : {:>5} msgs, {:>8} metadata B, {} payload elements",
        merkle_stats.messages, merkle_stats.metadata_bytes, merkle_stats.payload_elements
    );
    println!(
        "  -> {:.0}x less repair metadata, identical payload\n",
        sweep_stats.metadata_bytes as f64 / merkle_stats.metadata_bytes.max(1) as f64
    );
    assert_eq!(merkle_stats.payload_elements, sweep_stats.payload_elements);

    // The dual: metadata kept *for* recovery is pruned once causally
    // stable. The acked kind retains δ-buffer entries until every peer
    // acks them; after convergence the stability frontier covers all of
    // them and `compact()` lets them go.
    let mut acked: Cluster<u64, GSet<u32>> =
        Cluster::full_mesh(3, StoreConfig::new(ProtocolKind::Acked));
    for k in 0..100u64 {
        acked.update((k % 3) as usize, k, &GSetOp::Add(k as u32));
    }
    acked.run_until_converged(8).expect_converged("acked");
    let pruned: u64 = (0..3).map(|i| acked.replica_mut(i).compact()).sum();
    println!("causal-stability compaction: pruned {pruned} stable δ-buffer entries");
    acked.update(1, 7, &GSetOp::Add(9_999));
    acked
        .run_until_converged(8)
        .expect_converged("post-compaction");
    println!("post-compaction update still converges — lattice state untouched");
}
