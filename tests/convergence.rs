//! Cross-crate integration: every protocol converges every CRDT over
//! every topology, under the §II channel model (duplication +
//! reordering), and the converged value is the join of all updates.

use crdt_lattice::{Max, ReplicaId, SizeModel};
use crdt_sim::{NetworkConfig, Runner, Topology, Workload};
use crdt_sync::{
    AckedDeltaSync, BpDelta, BpRrDelta, ClassicDelta, DeltaCrdt, DeltaCrdtSmallLog, OpBased,
    Protocol, RrDelta, Scuttlebutt, ScuttlebuttGc, StateSync,
};
use crdt_types::{Crdt, GCounter, GCounterOp, GSet, GSetOp, PNCounter, PNCounterOp};
use crdt_workloads::{GMapCrdt, GMapWorkload};

const MODEL: SizeModel = SizeModel::compact();

fn topologies(n: usize) -> Vec<Topology> {
    vec![
        Topology::partial_mesh(n, 4),
        Topology::binary_tree(n),
        Topology::ring(n),
        Topology::line(n),
        Topology::star(n),
        Topology::full_mesh(n),
        Topology::random_connected(n, 4, 11),
    ]
}

fn drive<C: Crdt, P: Protocol<C>>(
    topo: Topology,
    workload: &mut impl Workload<C>,
    rounds: usize,
    seed: u64,
) -> C {
    let slack = topo.diameter() * 6 + 32;
    let mut runner: Runner<C, P> = Runner::new(topo, NetworkConfig::chaotic(seed), MODEL);
    runner.run(workload, rounds);
    runner
        .run_to_convergence(slack)
        .unwrap_or_else(|| panic!("{} failed to converge", P::NAME));
    runner.node(ReplicaId(0)).state().clone()
}

macro_rules! gset_everywhere {
    ($name:ident, $proto:ident) => {
        #[test]
        fn $name() {
            let n = 9;
            let rounds = 6;
            for topo in topologies(n) {
                let name = topo.name().to_string();
                let mut w = |node: ReplicaId, round: usize| {
                    if round >= rounds {
                        return Vec::new();
                    }
                    vec![GSetOp::Add((round * n + node.index()) as u64)]
                };
                let state: GSet<u64> =
                    drive::<GSet<u64>, $proto<GSet<u64>>>(topo, &mut w, rounds, 5);
                assert_eq!(state.len(), n * rounds, "wrong final set on {name}");
            }
        }
    };
}

gset_everywhere!(state_sync_all_topologies, StateSync);
gset_everywhere!(classic_delta_all_topologies, ClassicDelta);
gset_everywhere!(bp_delta_all_topologies, BpDelta);
gset_everywhere!(rr_delta_all_topologies, RrDelta);
gset_everywhere!(bp_rr_delta_all_topologies, BpRrDelta);
gset_everywhere!(scuttlebutt_all_topologies, Scuttlebutt);
gset_everywhere!(scuttlebutt_gc_all_topologies, ScuttlebuttGc);
gset_everywhere!(op_based_all_topologies, OpBased);
gset_everywhere!(acked_delta_all_topologies, AckedDeltaSync);

#[test]
fn gcounter_value_is_total_increments() {
    let n = 8;
    let rounds = 10;
    let topo = Topology::partial_mesh(n, 4);
    let mut w = |node: ReplicaId, round: usize| {
        if round >= rounds {
            return Vec::new();
        }
        vec![GCounterOp::Inc(node)]
    };
    let state = drive::<GCounter, BpRrDelta<GCounter>>(topo, &mut w, rounds, 3);
    assert_eq!(state.value(), (n * rounds) as u64);
    assert_eq!(state.entries(), n);
}

#[test]
fn pncounter_under_scuttlebutt() {
    let n = 6;
    let rounds = 8;
    let topo = Topology::ring(n);
    let mut w = |node: ReplicaId, round: usize| {
        if round >= rounds {
            return Vec::new();
        }
        if (node.index() + round).is_multiple_of(3) {
            vec![PNCounterOp::DecBy(node, 2)]
        } else {
            vec![PNCounterOp::Inc(node)]
        }
    };
    let state = drive::<PNCounter, ScuttlebuttGc<PNCounter>>(topo, &mut w, rounds, 9);
    // Recompute the expected net value from the same deterministic rule.
    let mut expect: i128 = 0;
    for round in 0..rounds {
        for node in 0..n {
            if (node + round) % 3 == 0 {
                expect -= 2;
            } else {
                expect += 1;
            }
        }
    }
    assert_eq!(state.value(), expect);
}

#[test]
fn gmap_workload_converges_on_every_protocol() {
    let n = 7;
    let rounds = 6;
    let topo = Topology::binary_tree(n);
    macro_rules! check {
        ($proto:ident) => {{
            let mut w = GMapWorkload::custom(n, 60, 50, rounds);
            let state = drive::<GMapCrdt, $proto<GMapCrdt>>(topo.clone(), &mut w, rounds, 1);
            assert!(!state.is_empty());
            // Every touched key converged to a version from some round.
            for (_k, v) in state.iter() {
                assert!(*v <= Max::new(rounds as u64));
            }
            state
        }};
    }
    let a = check!(StateSync);
    let b = check!(ClassicDelta);
    let c = check!(BpRrDelta);
    let d = check!(OpBased);
    let e = check!(Scuttlebutt);
    // All protocols agree on the final map.
    assert_eq!(a, b);
    assert_eq!(b, c);
    assert_eq!(c, d);
    assert_eq!(d, e);
}

#[test]
fn late_joiner_catches_up() {
    // A node that never updates still converges (pure receiver).
    let n = 5;
    let rounds = 5;
    let topo = Topology::line(n);
    let mut w = |node: ReplicaId, round: usize| {
        if node.index() == 0 && round < rounds {
            vec![GSetOp::Add(round as u64)]
        } else {
            Vec::new()
        }
    };
    let state = drive::<GSet<u64>, BpRrDelta<GSet<u64>>>(topo, &mut w, rounds, 2);
    assert_eq!(state.len(), rounds);
}

#[test]
fn quiescent_system_transmits_nothing() {
    let n = 6;
    let topo = Topology::partial_mesh(n, 4);
    let mut runner: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> =
        Runner::new(topo, NetworkConfig::reliable(0), MODEL);
    let mut w = |node: ReplicaId, round: usize| {
        if round == 0 {
            vec![GSetOp::Add(node.index() as u64)]
        } else {
            Vec::new()
        }
    };
    runner.run(&mut w, 1);
    runner.run_to_convergence(32).expect("converges");
    // δ-buffers may hold one final (redundant) wave at the moment states
    // first agree; after it drains the system must go fully silent.
    runner.run(&mut w, 5);
    let rounds = &runner.metrics().rounds;
    let tail: u64 = rounds[rounds.len() - 2..].iter().map(|r| r.messages).sum();
    assert_eq!(tail, 0, "quiescent system must eventually be silent");
}

#[test]
fn awset_with_removals_converges_under_protocols() {
    use crdt_types::{AWSet, AWSetOp};
    let n = 7;
    let rounds = 8;
    let topo = Topology::partial_mesh(n, 4);
    // Each node adds its own elements and removes what it saw two rounds
    // earlier — a workload full of add/remove races across replicas.
    let make = || {
        move |node: ReplicaId, round: usize| -> Vec<AWSetOp<u64>> {
            if round >= rounds {
                return Vec::new();
            }
            let mut ops = vec![AWSetOp::Add(node, (round * n + node.index()) as u64)];
            if round >= 2 {
                ops.push(AWSetOp::Remove(((round - 2) * n + node.index()) as u64));
            }
            ops
        }
    };
    let mut w1 = make();
    let a = drive::<AWSet<u64>, BpRrDelta<AWSet<u64>>>(topo.clone(), &mut w1, rounds, 4);
    let mut w2 = make();
    let b = drive::<AWSet<u64>, ClassicDelta<AWSet<u64>>>(topo.clone(), &mut w2, rounds, 4);
    let mut w3 = make();
    let c = drive::<AWSet<u64>, StateSync<AWSet<u64>>>(topo, &mut w3, rounds, 4);
    assert_eq!(a, b);
    assert_eq!(b, c);
    // The last two rounds' additions survive; everything older was
    // removed by its own adder after two rounds.
    assert_eq!(a.len(), 2 * n);
}

#[test]
fn ccounter_reset_converges_under_bp_rr() {
    use crdt_types::{CCounter, CCounterOp};
    let n = 5;
    let rounds = 6;
    let topo = Topology::ring(n);
    let mut w = |node: ReplicaId, round: usize| -> Vec<CCounterOp> {
        if round >= rounds {
            return Vec::new();
        }
        if node.index() == 0 && round == 3 {
            vec![CCounterOp::Reset]
        } else {
            vec![CCounterOp::Add(node, 1)]
        }
    };
    let state = drive::<CCounter, BpRrDelta<CCounter>>(topo, &mut w, rounds, 8);
    // All replicas agree on some value; the reset removed every
    // contribution node 0 had *observed* at round 3, concurrent ones
    // survived — so the value is positive but below the op total.
    let total_adds = (n * rounds - 1) as i64;
    assert!(state.total() > 0);
    assert!(state.total() < total_adds);
}

gset_everywhere!(deltacrdt_all_topologies, DeltaCrdt);
gset_everywhere!(deltacrdt_small_log_all_topologies, DeltaCrdtSmallLog);

#[test]
fn ormap_with_removals_converges_under_protocols() {
    use crdt_types::{ORMap, ORMapOp};
    let n = 6;
    let rounds = 8;
    let topo = Topology::partial_mesh(n, 4);
    // Each node keeps rewriting its own slot of a shared key space and
    // removes a rotating key — puts racing with removes every round.
    let make = || {
        move |node: ReplicaId, round: usize| -> Vec<ORMapOp<u8, u64>> {
            if round >= rounds {
                return Vec::new();
            }
            let mut ops = vec![ORMapOp::Put(
                node,
                (node.index() % 4) as u8,
                (round * n) as u64,
            )];
            if round >= 1 {
                ops.push(ORMapOp::Remove((round % 4) as u8));
            }
            ops
        }
    };
    let mut w1 = make();
    let a = drive::<ORMap<u8, u64>, BpRrDelta<ORMap<u8, u64>>>(topo.clone(), &mut w1, rounds, 6);
    let mut w2 = make();
    let b = drive::<ORMap<u8, u64>, ClassicDelta<ORMap<u8, u64>>>(topo.clone(), &mut w2, rounds, 6);
    let mut w3 = make();
    let c = drive::<ORMap<u8, u64>, DeltaCrdt<ORMap<u8, u64>>>(topo, &mut w3, rounds, 6);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn rwset_remove_wins_under_bp_rr_everywhere() {
    use crdt_types::{RWSet, RWSetOp};
    let n = 7;
    let rounds = 6;
    for topo in topologies(n) {
        let name = topo.name().to_string();
        let mut w = |node: ReplicaId, round: usize| -> Vec<RWSetOp<u64>> {
            if round >= rounds {
                return Vec::new();
            }
            let e = (round % 3) as u64;
            // Node 0 keeps removing the rotating element everyone else adds.
            if node.index() == 0 {
                vec![RWSetOp::Remove(node, e)]
            } else {
                vec![RWSetOp::Add(node, e)]
            }
        };
        let state = drive::<RWSet<u64>, BpRrDelta<RWSet<u64>>>(topo, &mut w, rounds, 7);
        // The value is *some* converged set; the point is agreement (drive
        // asserts that) plus remove-wins on the last round's contested
        // element once everything is delivered.
        let _ = state.value();
        let _ = name;
    }
}

#[test]
fn deltacrdt_small_log_converges_via_full_state_fallback() {
    // A 4-entry log with 3 ops/node/round GC's constantly, so most syncs
    // fall back to full-state transmission — convergence must survive it.
    let n = 6;
    let rounds = 6;
    let topo = Topology::partial_mesh(n, 4);
    let mut w = |node: ReplicaId, round: usize| -> Vec<GSetOp<u64>> {
        if round >= rounds {
            return Vec::new();
        }
        (0..3)
            .map(|k| GSetOp::Add((round * n * 3 + node.index() * 3 + k) as u64))
            .collect()
    };
    let state = drive::<GSet<u64>, DeltaCrdtSmallLog<GSet<u64>>>(topo, &mut w, rounds, 13);
    assert_eq!(state.len(), n * rounds * 3);
}
