//! Shape assertions for every figure of the paper, at smoke scale:
//! who wins, roughly by how much, and where the crossovers fall. These are
//! the claims EXPERIMENTS.md records at full scale; here they gate CI.

use crdt_bench::{find, run_suite, Suite};
use crdt_lattice::SizeModel;
use crdt_sim::{run_experiment, NetworkConfig, ShardedDeltaRunner, Topology};
use crdt_sync::{AckedDeltaSync, DeltaConfig, OpBased, Scuttlebutt, ScuttlebuttGc};
use crdt_types::{GCounter, GSet};
use crdt_workloads::{
    GCounterWorkload, GMapCrdt, GMapWorkload, GSetWorkload, RetwisConfig, RetwisTrace, Timeline,
    UserId, Wall,
};

const MODEL: SizeModel = SizeModel::compact();
const N: usize = 15;
const EVENTS: usize = 20;

fn mesh() -> Topology {
    Topology::partial_mesh(N, 4)
}

fn tree() -> Topology {
    Topology::binary_tree(N)
}

fn gset_runs(topo: &Topology) -> Vec<crdt_bench::Run> {
    run_suite::<GSet<u64>, _>(Suite::Full, topo, 1, MODEL, EVENTS, || {
        GSetWorkload::with_events(N, EVENTS)
    })
}

/// Fig. 1: classic delta ≈ state-based on a cyclic mesh with updates
/// every round.
#[test]
fn fig1_classic_delta_no_better_than_state() {
    let runs = gset_runs(&mesh());
    let classic = find(&runs, "delta").metrics.total_elements() as f64;
    let state = find(&runs, "state").metrics.total_elements() as f64;
    let ratio = classic / state;
    assert!(
        ratio > 0.6,
        "classic delta should be in the state-based ballpark (got {ratio:.2})"
    );
}

/// Fig. 7 (tree): an acyclic topology makes BP alone match BP+RR.
#[test]
fn fig7_tree_bp_suffices() {
    let runs = gset_runs(&tree());
    let bp = find(&runs, "delta+BP").metrics.total_elements();
    let bprr = find(&runs, "delta+BP+RR").metrics.total_elements();
    assert_eq!(bp, bprr, "no cycles ⇒ nothing for RR to remove");
    // And both crush classic.
    let classic = find(&runs, "delta").metrics.total_elements();
    assert!(classic > bprr * 2);
}

/// Fig. 7 (mesh): with cycles, BP alone has little effect; RR is what
/// closes the gap.
#[test]
fn fig7_mesh_rr_is_crucial() {
    let runs = gset_runs(&mesh());
    let classic = find(&runs, "delta").metrics.total_elements();
    let bp = find(&runs, "delta+BP").metrics.total_elements();
    let rr = find(&runs, "delta+RR").metrics.total_elements();
    let bprr = find(&runs, "delta+BP+RR").metrics.total_elements();
    assert!(bprr <= rr && rr <= classic, "BP+RR ≤ RR ≤ classic");
    assert!(bprr <= bp && bp <= classic, "BP+RR ≤ BP ≤ classic");
    // BP alone keeps most of the redundancy; RR removes the bulk of it.
    let bp_gain = classic - bp;
    let rr_gain = classic - rr;
    assert!(
        rr_gain > bp_gain,
        "on a mesh RR must contribute more than BP (rr_gain {rr_gain}, bp_gain {bp_gain})"
    );
    assert!(classic > bprr * 2, "BP+RR must be a large win on the mesh");
}

/// Fig. 7 (GSet): in total transmitted bytes (payload + metadata, as the
/// paper compares), Scuttlebutt variants and op-based beat classic delta
/// once the state has grown, but lose to BP+RR.
#[test]
fn fig7_gset_vector_protocols_beat_classic() {
    // Longer run than the other smoke tests: classic/state grow
    // quadratically while the vector protocols stay linear, and the paper
    // observes the crossover on a 100-event run.
    let events = 60;
    let runs = run_suite::<GSet<u64>, _>(Suite::Full, &mesh(), 1, MODEL, events, || {
        GSetWorkload::with_events(N, events)
    });
    let classic = find(&runs, "delta").metrics.total_bytes();
    let bprr = find(&runs, "delta+BP+RR").metrics.total_bytes();
    for name in ["scuttlebutt", "op-based"] {
        let v = find(&runs, name).metrics.total_bytes();
        assert!(
            v < classic,
            "{name} must beat classic delta on GSet ({v} vs {classic})"
        );
        assert!(
            v > bprr,
            "{name} must not beat BP+RR on GSet ({v} vs {bprr})"
        );
    }
}

/// Fig. 7 (GCounter): Scuttlebutt/op-based cannot compress counter
/// updates and behave *worse* than state-based.
#[test]
fn fig7_gcounter_vector_protocols_degenerate() {
    let runs = run_suite::<GCounter, _>(Suite::Full, &mesh(), 1, MODEL, EVENTS, || {
        GCounterWorkload::with_events(EVENTS)
    });
    let state = find(&runs, "state").metrics.total_bytes();
    for name in ["scuttlebutt", "scuttlebutt-gc", "op-based"] {
        let v = find(&runs, name).metrics.total_bytes();
        assert!(
            v > state,
            "{name} ships opaque increments plus vector metadata and must exceed \
             state-based in bytes ({v} vs {state})"
        );
    }
    // BP+RR still wins overall.
    let bprr = find(&runs, "delta+BP+RR").metrics.total_bytes();
    assert!(bprr <= state);
}

/// Fig. 8: the GMap K% sweep keeps the same ordering, and at K = 100%
/// (every key updated between syncs) delta-based gains shrink.
#[test]
fn fig8_gmap_sweep_shapes() {
    let keys = 100;
    for percent in [10, 100] {
        let runs = run_suite::<GMapCrdt, _>(Suite::Full, &mesh(), 1, MODEL, EVENTS, || {
            GMapWorkload::custom(N, percent, keys, EVENTS)
        });
        let classic = find(&runs, "delta").metrics.total_elements();
        let bprr = find(&runs, "delta+BP+RR").metrics.total_elements();
        assert!(bprr < classic, "K={percent}%");
    }
    // Relative gain of BP+RR over state shrinks as K grows.
    let gain = |percent: usize| {
        let runs = run_suite::<GMapCrdt, _>(Suite::Full, &mesh(), 1, MODEL, EVENTS, || {
            GMapWorkload::custom(N, percent, keys, EVENTS)
        });
        let state = find(&runs, "state").metrics.total_elements() as f64;
        let bprr = find(&runs, "delta+BP+RR").metrics.total_elements() as f64;
        state / bprr
    };
    let gain10 = gain(10);
    let gain100 = gain(100);
    assert!(
        gain10 > gain100,
        "delta advantage must shrink at GMap 100% (gain10 {gain10:.2}, gain100 {gain100:.2})"
    );
}

/// Fig. 9: metadata ordering — delta ≪ scuttlebutt < op-based <
/// scuttlebutt-GC, and metadata dominates the vector-based protocols.
#[test]
fn fig9_metadata_ordering() {
    let model = SizeModel::paper_metadata();
    let n = 16;
    let rounds = 10;
    let topo = Topology::partial_mesh(n, 4);
    let net = NetworkConfig::reliable(1);
    macro_rules! run {
        ($p:ty) => {{
            let mut w = GSetWorkload::with_events(n, rounds);
            run_experiment::<GSet<u64>, $p>(topo.clone(), net, model, &mut w, rounds)
        }};
    }
    let sb = run!(Scuttlebutt<GSet<u64>>);
    let sbgc = run!(ScuttlebuttGc<GSet<u64>>);
    let ob = run!(OpBased<GSet<u64>>);
    let delta = run!(AckedDeltaSync<GSet<u64>>);

    assert!(delta.total_metadata_bytes() * 10 < sb.total_metadata_bytes());
    assert!(sb.total_metadata_bytes() < sbgc.total_metadata_bytes());
    assert!(
        sb.metadata_fraction() > 0.5,
        "scuttlebutt metadata dominates"
    );
    assert!(sbgc.metadata_fraction() > 0.9);
    assert!(ob.metadata_fraction() > 0.5);
    assert!(
        delta.metadata_fraction() < 0.25,
        "delta metadata stays small"
    );
}

/// Fig. 10: memory — state-based optimal; classic ≥ BP+RR; original
/// Scuttlebutt keeps growing while GC prunes.
#[test]
fn fig10_memory_ordering() {
    let runs = gset_runs(&mesh());
    let mem = |name: &str| find(&runs, name).metrics.avg_memory_elements_per_node();
    assert!(
        mem("state") <= mem("delta+BP+RR") + 1e-9,
        "state-based is the floor"
    );
    assert!(
        mem("delta") > mem("delta+BP+RR"),
        "classic buffers redundant groups"
    );
    assert!(mem("scuttlebutt") > mem("scuttlebutt-gc"), "GC must help");
}

/// Figs. 11–12: Retwis per-object sync — classic ≈ BP+RR at low Zipf,
/// blows up at high Zipf.
#[test]
fn fig11_retwis_contention_crossover() {
    let topo = Topology::partial_mesh(10, 4);
    let rounds = 8;
    let run = |zipf: f64, cfg: DeltaConfig| {
        let trace = RetwisTrace::generate(
            RetwisConfig {
                n_users: 200,
                zipf,
                ops_per_node_per_round: 2,
                max_fanout: 10,
                seed: 42,
            },
            topo.len(),
            rounds,
        );
        let mut followers: ShardedDeltaRunner<UserId, GSet<UserId>> =
            ShardedDeltaRunner::new(topo.clone(), cfg, MODEL);
        let mut walls: ShardedDeltaRunner<UserId, Wall> =
            ShardedDeltaRunner::new(topo.clone(), cfg, MODEL);
        let mut timelines: ShardedDeltaRunner<UserId, Timeline> =
            ShardedDeltaRunner::new(topo.clone(), cfg, MODEL);
        for round in &trace.rounds {
            followers.step(
                &round
                    .iter()
                    .map(|n| n.followers.clone())
                    .collect::<Vec<_>>(),
            );
            walls.step(&round.iter().map(|n| n.walls.clone()).collect::<Vec<_>>());
            timelines.step(
                &round
                    .iter()
                    .map(|n| n.timelines.clone())
                    .collect::<Vec<_>>(),
            );
        }
        followers.run_to_convergence(40).unwrap();
        walls.run_to_convergence(40).unwrap();
        timelines.run_to_convergence(40).unwrap();
        followers
            .into_metrics()
            .merged(&walls.into_metrics())
            .merged(&timelines.into_metrics())
            .total_bytes()
    };
    let low = run(0.5, DeltaConfig::CLASSIC) as f64 / run(0.5, DeltaConfig::BP_RR) as f64;
    let high = run(1.5, DeltaConfig::CLASSIC) as f64 / run(1.5, DeltaConfig::BP_RR) as f64;
    assert!(
        low < 2.5,
        "low contention: classic must be near BP+RR (got {low:.2}x)"
    );
    assert!(
        high > low * 1.3,
        "high contention must widen the gap (low {low:.2}x, high {high:.2}x)"
    );
}

/// EXP-X2 (extension): the ∆-CRDT baseline of §VI [31]. A roomy log is
/// delta-quality; an under-provisioned log degrades toward state-based on
/// cyclic topologies via its full-state fallback.
#[test]
fn ext_deltacrdt_log_capacity_shapes() {
    use crdt_types::GSet;
    use crdt_workloads::GSetWorkload;
    let topo = mesh();
    let n = topo.len();
    let rounds = 12;
    let runs = crdt_bench::run_suite::<GSet<u64>, _>(
        crdt_bench::Suite::DeltaCrdtStudy,
        &topo,
        1,
        MODEL,
        rounds,
        || GSetWorkload::with_events(n, rounds),
    );
    let bytes = |name: &str| crdt_bench::find(&runs, name).metrics.total_bytes();
    let state = bytes("state");
    let bprr = bytes("delta+BP+RR");
    let roomy = bytes("deltacrdt");
    let small = bytes("deltacrdt-small");
    eprintln!("state={state} bprr={bprr} roomy={roomy} small={small}");
    // Roomy log: within a small factor of BP+RR, far below state-based.
    assert!(
        roomy < 3 * bprr,
        "roomy ∆-CRDT ({roomy}) should be ≲2x BP+RR ({bprr})"
    );
    assert!(
        roomy * 4 < state,
        "roomy ∆-CRDT must beat state-based clearly"
    );
    // Tiny log: the full-state fallback kicks in once per-neighbor lag
    // exceeds 4 entries, costing a clear multiple of the roomy log (the
    // gap widens with run length — 42x at the full scale of EXP-X2).
    assert!(
        small > 2 * roomy,
        "capacity is the decisive parameter ({small} vs {roomy})"
    );
    assert!(
        small * 3 > state,
        "tiny-log ∆-CRDT ({small}) trends toward state ({state})"
    );
}
