//! End-to-end Retwis integration: the application semantics survive
//! replication — every replica eventually serves the same timelines,
//! walls and follower sets, whichever delta variant synchronized them.

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sim::{ShardedDeltaRunner, Topology};
use crdt_sync::DeltaConfig;
use crdt_types::GSet;
use crdt_workloads::{
    NodeTraceOps, RetwisConfig, RetwisStore, RetwisTrace, RetwisWorkload, Timeline, UserId, Wall,
};

const MODEL: SizeModel = SizeModel::compact();

struct RetwisRun {
    followers: ShardedDeltaRunner<UserId, GSet<UserId>>,
    walls: ShardedDeltaRunner<UserId, Wall>,
    timelines: ShardedDeltaRunner<UserId, Timeline>,
}

fn run_trace(trace: &RetwisTrace, topo: &Topology, cfg: DeltaConfig) -> RetwisRun {
    let mut run = RetwisRun {
        followers: ShardedDeltaRunner::new(topo.clone(), cfg, MODEL),
        walls: ShardedDeltaRunner::new(topo.clone(), cfg, MODEL),
        timelines: ShardedDeltaRunner::new(topo.clone(), cfg, MODEL),
    };
    for round in &trace.rounds {
        run.followers.step(
            &round
                .iter()
                .map(|n| n.followers.clone())
                .collect::<Vec<_>>(),
        );
        run.walls
            .step(&round.iter().map(|n| n.walls.clone()).collect::<Vec<_>>());
        run.timelines.step(
            &round
                .iter()
                .map(|n| n.timelines.clone())
                .collect::<Vec<_>>(),
        );
    }
    run.followers
        .run_to_convergence(64)
        .expect("followers converge");
    run.walls.run_to_convergence(64).expect("walls converge");
    run.timelines
        .run_to_convergence(64)
        .expect("timelines converge");
    run
}

fn small_trace(zipf: f64, topo: &Topology) -> RetwisTrace {
    RetwisTrace::generate(
        RetwisConfig {
            n_users: 150,
            zipf,
            ops_per_node_per_round: 3,
            max_fanout: 8,
            seed: 77,
        },
        topo.len(),
        6,
    )
}

#[test]
fn all_delta_variants_agree_on_application_state() {
    let topo = Topology::partial_mesh(8, 4);
    let trace = small_trace(1.0, &topo);

    let classic = run_trace(&trace, &topo, DeltaConfig::CLASSIC);
    let bprr = run_trace(&trace, &topo, DeltaConfig::BP_RR);
    let bp = run_trace(&trace, &topo, DeltaConfig::BP);
    let rr = run_trace(&trace, &topo, DeltaConfig::RR);

    // Spot-check the hottest users' objects across configurations and
    // replicas.
    let observer_a = ReplicaId(0);
    let observer_b = ReplicaId(5);
    for user in 0..10u32 {
        let f = classic.followers.object_state(observer_a, &user);
        assert_eq!(
            f,
            bprr.followers.object_state(observer_b, &user),
            "user {user} followers"
        );
        assert_eq!(f, bp.followers.object_state(observer_a, &user));
        assert_eq!(f, rr.followers.object_state(observer_b, &user));

        let w = classic.walls.object_state(observer_a, &user);
        assert_eq!(
            w,
            bprr.walls.object_state(observer_b, &user),
            "user {user} wall"
        );

        let t = classic.timelines.object_state(observer_a, &user);
        assert_eq!(
            t,
            bprr.timelines.object_state(observer_b, &user),
            "user {user} timeline"
        );
    }
}

#[test]
fn replicated_data_matches_a_sequential_oracle() {
    // Apply the same trace to one local RetwisStore (no replication) and
    // compare object contents with the replicated deployment.
    let topo = Topology::binary_tree(7);
    let trace = small_trace(0.8, &topo);
    let replicated = run_trace(&trace, &topo, DeltaConfig::BP_RR);

    use crdt_types::{Crdt, GMapOp, GSetOp};
    let mut oracle = RetwisStore::new();
    for round in &trace.rounds {
        for NodeTraceOps {
            followers,
            walls,
            timelines,
        } in round
        {
            for (owner, GSetOp::Add(follower)) in followers {
                let _ = oracle.apply(&crdt_workloads::RetwisOp::Follow {
                    follower: *follower,
                    followee: *owner,
                });
            }
            for (author, GMapOp::Apply { key, value }) in walls {
                // Re-wrap as a Post touching only the wall.
                let _ = oracle.apply(&crdt_workloads::RetwisOp::Post {
                    author: *author,
                    tweet_id: key.clone(),
                    content: value.get().clone(),
                    ts: 0,
                    recipients: vec![],
                });
            }
            let _ = timelines;
        }
    }

    let observer = ReplicaId(3);
    for user in 0..20u32 {
        let replicated_followers = replicated
            .followers
            .object_state(observer, &user)
            .map(|s| s.value().clone())
            .unwrap_or_default();
        let oracle_followers = oracle
            .followers_of(user)
            .map(|s| s.value().clone())
            .unwrap_or_default();
        assert_eq!(replicated_followers, oracle_followers, "user {user}");
    }
}

#[test]
fn timeline_reads_are_consistent_across_replicas() {
    let topo = Topology::ring(6);
    let trace = small_trace(1.2, &topo);
    let run = run_trace(&trace, &topo, DeltaConfig::BP_RR);
    for user in 0..30u32 {
        let views: Vec<_> = (0..6)
            .map(|n| run.timelines.object_state(ReplicaId(n), &user).cloned())
            .collect();
        for v in &views[1..] {
            assert_eq!(&views[0], v, "user {user} timeline view");
        }
    }
}

#[test]
fn composed_store_and_sharded_runners_agree() {
    // The same workload through the single composed lattice (one
    // RetwisStore CRDT) must produce the same follower sets as the
    // per-object deployment.
    use crdt_sim::Workload;
    use crdt_types::Crdt;

    let cfg = RetwisConfig {
        n_users: 100,
        zipf: 1.0,
        ops_per_node_per_round: 4,
        max_fanout: 5,
        seed: 123,
    };
    let n_nodes = 5;
    let rounds = 4;

    // Composed: apply everything at one replica (order irrelevant — all
    // ops commute through joins).
    let mut w = RetwisWorkload::new(cfg);
    let mut composed = RetwisStore::new();
    for round in 0..rounds {
        for node in 0..n_nodes {
            for op in Workload::<RetwisStore>::ops(&mut w, ReplicaId::from(node), round) {
                let _ = composed.apply(&op);
            }
        }
    }

    // Sharded: same trace, replicated, then read back from a replica.
    let topo = Topology::full_mesh(n_nodes);
    let trace = RetwisTrace::generate(cfg, n_nodes, rounds);
    let run = run_trace(&trace, &topo, DeltaConfig::BP_RR);

    for user in 0..100u32 {
        let sharded = run
            .followers
            .object_state(ReplicaId(0), &user)
            .map(|s| s.value().clone())
            .unwrap_or_default();
        let composed_set = composed
            .followers_of(user)
            .map(|s| s.value().clone())
            .unwrap_or_default();
        assert_eq!(sharded, composed_set, "user {user}");
    }
}
