//! Channel-fault integration tests: the §II channel model (duplication,
//! reordering) for all protocols, plus message *loss* for the acked delta
//! variant — the one algorithm designed to survive it.

use crdt_lattice::{ReplicaId, SizeModel};
use crdt_sim::{NetworkConfig, Runner, Topology};
use crdt_sync::{AckedDeltaSync, BpRrDelta, ClassicDelta, Protocol, Scuttlebutt, StateSync};
use crdt_types::{GSet, GSetOp};

const MODEL: SizeModel = SizeModel::compact();

fn unique_adds(n: usize, events: usize) -> impl FnMut(ReplicaId, usize) -> Vec<GSetOp<u64>> {
    move |node: ReplicaId, round: usize| {
        if round >= events {
            return Vec::new();
        }
        vec![GSetOp::Add((round * n + node.index()) as u64)]
    }
}

/// Heavy duplication + reordering must not change any final state.
#[test]
fn duplication_and_reordering_are_harmless() {
    let n = 8;
    let events = 6;
    let topo = Topology::partial_mesh(n, 4);

    macro_rules! final_state {
        ($p:ty, $cfg:expr) => {{
            let mut runner: Runner<GSet<u64>, $p> = Runner::new(topo.clone(), $cfg, MODEL);
            runner.run(&mut unique_adds(n, events), events);
            runner.run_to_convergence(64).expect("converges");
            runner.node(ReplicaId(0)).state().clone()
        }};
    }

    let nasty = NetworkConfig {
        duplicate_prob: 0.5,
        reorder: true,
        drop_prob: 0.0,
        seed: 3,
    };
    let clean = NetworkConfig::reliable(3);

    assert_eq!(
        final_state!(StateSync<GSet<u64>>, nasty),
        final_state!(StateSync<GSet<u64>>, clean)
    );
    assert_eq!(
        final_state!(ClassicDelta<GSet<u64>>, nasty),
        final_state!(ClassicDelta<GSet<u64>>, clean)
    );
    assert_eq!(
        final_state!(BpRrDelta<GSet<u64>>, nasty),
        final_state!(BpRrDelta<GSet<u64>>, clean)
    );
    assert_eq!(
        final_state!(Scuttlebutt<GSet<u64>>, nasty),
        final_state!(Scuttlebutt<GSet<u64>>, clean)
    );
}

/// The acked variant converges under heavy message loss.
#[test]
fn acked_delta_survives_message_loss() {
    let n = 6;
    let events = 5;
    let topo = Topology::partial_mesh(n, 4);
    for drop_prob in [0.1, 0.3, 0.5] {
        let mut runner: Runner<GSet<u64>, AckedDeltaSync<GSet<u64>>> =
            Runner::new(topo.clone(), NetworkConfig::lossy(7, drop_prob), MODEL);
        runner.run(&mut unique_adds(n, events), events);
        // Loss slows convergence: allow generous retry rounds.
        runner
            .run_to_convergence(400)
            .unwrap_or_else(|| panic!("no convergence at drop={drop_prob}"));
        assert_eq!(
            runner.node(ReplicaId(0)).state().len(),
            n * events,
            "state complete despite {drop_prob} loss"
        );
    }
}

/// Plain delta protocols (which clear their buffer) would lose data under
/// drops; the acked buffer retains entries until acked by every neighbor.
#[test]
fn acked_buffer_retains_until_acked() {
    let n = 4;
    let topo = Topology::ring(n);
    // Drop everything: buffers may never empty.
    let all_lost = NetworkConfig {
        duplicate_prob: 0.0,
        reorder: false,
        drop_prob: 1.0,
        seed: 1,
    };
    let mut runner: Runner<GSet<u64>, AckedDeltaSync<GSet<u64>>> =
        Runner::new(topo, all_lost, MODEL);
    let mut w = |node: ReplicaId, round: usize| {
        if round == 0 {
            vec![GSetOp::Add(node.index() as u64)]
        } else {
            Vec::new()
        }
    };
    runner.run(&mut w, 5);
    for id in 0..n {
        assert_eq!(
            runner.node(ReplicaId::from(id)).buffered(),
            1,
            "unacked entry must survive at node {id}"
        );
    }
    assert!(!runner.converged());
}

/// Loss makes the *reliable-channel* assumption of Algorithm 1 visible:
/// classic delta with a cleared buffer genuinely diverges.
#[test]
fn unacked_delta_diverges_under_loss_as_expected() {
    let n = 4;
    let topo = Topology::line(n);
    let all_lost = NetworkConfig {
        duplicate_prob: 0.0,
        reorder: false,
        drop_prob: 1.0,
        seed: 1,
    };
    let mut runner: Runner<GSet<u64>, BpRrDelta<GSet<u64>>> = Runner::new(topo, all_lost, MODEL);
    let mut w = |node: ReplicaId, round: usize| {
        if round == 0 && node.index() == 0 {
            vec![GSetOp::Add(7u64)]
        } else {
            Vec::new()
        }
    };
    runner.run(&mut w, 3);
    // The δ-buffer was cleared after the (lost) send: the update can never
    // reach the other nodes again.
    assert!(
        !runner.converged(),
        "documented limitation: Algorithm 1 assumes no loss"
    );
    assert_eq!(runner.node(ReplicaId(1)).state().len(), 0);
}

/// Determinism: identical seeds produce bit-identical metrics even under
/// faults (the property that makes experiments reproducible).
#[test]
fn faulty_runs_are_reproducible() {
    let n = 6;
    let events = 5;
    let run = |seed: u64| {
        let topo = Topology::partial_mesh(n, 4);
        let mut runner: Runner<GSet<u64>, AckedDeltaSync<GSet<u64>>> =
            Runner::new(topo, NetworkConfig::lossy(seed, 0.2), MODEL);
        runner.run(&mut unique_adds(n, events), events);
        runner.run_to_convergence(200).expect("converges");
        let m = runner.metrics();
        (m.total_messages(), m.total_elements(), m.total_bytes())
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

/// The ∆-CRDT baseline also survives loss: unacked log suffixes are
/// retransmitted at every sync step until the neighbor acknowledges, and
/// the full-state fallback covers anything the GC'd log can no longer
/// replay.
#[test]
fn deltacrdt_survives_message_loss() {
    use crdt_sync::{DeltaCrdt, DeltaCrdtSmallLog};
    let n = 6;
    let events = 5;
    let topo = Topology::partial_mesh(n, 4);
    for drop_prob in [0.1, 0.3, 0.5] {
        let mut runner: Runner<GSet<u64>, DeltaCrdt<GSet<u64>>> =
            Runner::new(topo.clone(), NetworkConfig::lossy(7, drop_prob), MODEL);
        runner.run(&mut unique_adds(n, events), events);
        runner
            .run_to_convergence(400)
            .unwrap_or_else(|| panic!("deltacrdt: no convergence at drop={drop_prob}"));
        assert_eq!(runner.node(ReplicaId(0)).state().len(), n * events);
    }
    // The tiny log survives loss too — the fallback path is itself
    // retransmitted until acked.
    let mut runner: Runner<GSet<u64>, DeltaCrdtSmallLog<GSet<u64>>> =
        Runner::new(topo, NetworkConfig::lossy(5, 0.4), MODEL);
    runner.run(&mut unique_adds(n, events), events);
    runner
        .run_to_convergence(400)
        .expect("deltacrdt-small converges under loss via full-state fallback");
    assert_eq!(runner.node(ReplicaId(0)).state().len(), n * events);
}

/// Dropped *acks* only cost retransmissions, never correctness: the
/// receiver's Δ-extraction makes duplicate deliveries idempotent.
#[test]
fn deltacrdt_tolerates_lost_acks() {
    use crdt_sync::{DeltaCrdtMsg, DeltaCrdtSync};
    let a = ReplicaId(0);
    let b = ReplicaId(1);
    let mut na: DeltaCrdtSync<GSet<u64>> = DeltaCrdtSync::with_capacity(a, 16);
    let mut nb: DeltaCrdtSync<GSet<u64>> = DeltaCrdtSync::with_capacity(b, 16);
    na.local_op(&GSetOp::Add(1));

    // First delivery: B absorbs, but its ack is "lost" (discarded).
    let mut out = Vec::new();
    na.sync_step(&[b], &mut out);
    let (_, msg) = out.pop().unwrap();
    let mut acks = Vec::new();
    nb.receive(a, msg, &mut acks);
    acks.clear(); // drop the ack on the floor

    // A retransmits; B re-absorbs (no effect) and re-acks; A stops.
    na.sync_step(&[b], &mut out);
    assert_eq!(out.len(), 1, "unacked suffix is retransmitted");
    let (_, msg) = out.pop().unwrap();
    nb.receive(a, msg, &mut acks);
    for (_, ack) in acks.drain(..) {
        na.receive(b, ack, &mut Vec::new());
    }
    na.sync_step(&[b], &mut out);
    assert!(out.is_empty(), "acked: nothing further to send");
    assert_eq!(nb.state_ref().len(), 1);
    assert!(matches!(
        DeltaCrdtMsg::<GSet<u64>>::Ack { upto: 1 },
        DeltaCrdtMsg::Ack { .. }
    ));
}
